//! Demand-driven evaluation: a magic-set-style rewrite for lattice
//! programs and the query-directed solver entry point
//! [`Solver::solve_query`].
//!
//! The paper's strategies (§3.2, §3.7) always compute the *entire*
//! minimal model, but clients of an analysis engine usually ask point
//! queries — "what is the constant-propagation value of `x` at line
//! 40?", "what is the shortest distance from A to B?" — for which
//! whole-model solving wastes most of the work. This module adapts the
//! classic magic-set transformation to FLIX's lattice semantics: from a
//! set of [`Query`] patterns with bound/free argument positions it
//! derives seed `demand$P` predicates and guarded copies of each rule,
//! so the unchanged fixed-point engine only derives tuples and lattice
//! cells transitively relevant to the queries.
//!
//! # The rewrite, in brief
//!
//! For every intensional predicate `P` the rewrite maintains one
//! *adornment*: the set of argument positions that every demand for `P`
//! binds (the meet over all query patterns and rule-body occurrences —
//! a single-adornment simplification of the per-call-pattern magic-set
//! construction; demanding *more* than necessary is always sound, it
//! merely derives more than strictly needed). Given final adornments:
//!
//! * each rule `P(t̄) :- B` whose head is demanded becomes the guarded
//!   copy `P(t̄) :- demand$P(t̄|α), B'`, where `t̄|α` projects the head
//!   terms to the adorned positions and `B'` is a
//!   sideways-information-passing (SIP) reordering of the body that
//!   propagates the guard's bindings left to right;
//! * for every demanded intensional atom `Q(s̄)` in `B'`, a demand rule
//!   `demand$Q(s̄|β) :- demand$P(t̄|α), prefix` is added, where `prefix`
//!   holds the positive atoms preceding `Q` in the SIP order — the
//!   bindings available by the time `Q` would be matched;
//! * the query patterns themselves become `demand$P` seed facts.
//!
//! # Lattice-cell demand granularity
//!
//! Lattice predicates are demanded *by key*: the value column is never
//! part of an adornment, so a demand names a whole cell and the engine
//! computes that cell's full least fixed point. Because FLIX programs
//! are monotone, every contribution to a demanded cell flows through
//! ground atoms whose keys the demand rules also demand — so a demanded
//! cell's final value is *identical* to its value in the full minimal
//! model (the lub-per-cell compaction of §3.6 is preserved; the demand
//! parity suite pins this cell-for-cell across all strategies).
//!
//! # Conservative fallbacks
//!
//! Demand through negation is the classic unsound corner of magic sets
//! (the rewritten program can lose stratified semantics). Mirroring the
//! incremental engine's negation fallback, this module never guards
//! negated dependencies: a predicate appearing under negation in a
//! demanded rule is evaluated *in full*, along with its entire upstream
//! cone, so the negation tests exactly the model a from-scratch solve
//! would have produced. The same full-evaluation fallback applies when
//! an adornment collapses to the empty set (an all-free demand) and to
//! every predicate reachable from a fully-evaluated one. As a final
//! safety net, [`Solver::solve_query`] re-stratifies the rewritten
//! program and falls back to a plain full [`Solver::solve`] if the
//! rewrite produced anything the engine cannot order.
//!
//! # Example
//!
//! ```
//! use flix_core::demand::Query;
//! use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Solver, Term, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let edge = b.relation("Edge", 2);
//! let path = b.relation("Path", 2);
//! for (x, y) in [(1, 2), (2, 3), (10, 11)] {
//!     b.fact(edge, vec![x.into(), y.into()]);
//! }
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
//!     [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
//! );
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
//!     [
//!         BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
//!         BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
//!     ],
//! );
//! let program = b.build()?;
//!
//! // Only paths from node 1 are demanded; the 10 → 11 component is
//! // never explored.
//! let query = Query::new("Path", vec![Some(Value::from(1)), None]);
//! let result = Solver::new().solve_query(&program, &[query])?;
//! let answers: Vec<_> = result.answers(0).collect();
//! assert_eq!(answers.len(), 2); // Path(1, 2), Path(1, 3)
//! assert!(!result.solution().contains("Path", &[10.into(), 11.into()]));
//! # Ok(())
//! # }
//! ```

// Like `solver.rs`, internal plumbing passes `SolveError` by value; it
// is boxed inside `SolveFailure` at the API boundary.
#![allow(clippy::result_large_err)]

use crate::ast::{
    BodyItem, FuncId, Head, HeadTerm, PredDecl, PredKind, ProgramError, RawRule, Term,
};
use crate::database::Database;
use crate::guard::Guard;
use crate::observe::{Observer, RuleEvaluated, RuleStats};
use crate::program::CTerm;
use crate::program::{CHead, CItem, CRule, Program};
use crate::provenance::{Event, Source};
use crate::solver::{make_solution, rule_heads, Fact};
use crate::stratify::check_stratifiable;
use crate::trace::{AscentWarning, SpanKind, Tracer};
use crate::{PredId, Solution, SolveError, SolveFailure, SolveStats, Solver, Value};
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A point query: a predicate name plus a pattern with one entry per
/// argument position — `Some(value)` for a bound position, `None` for a
/// free one.
///
/// For lattice predicates the last position is the cell value; binding
/// it never *restricts demand* (cells are demanded whole, by key) but
/// still filters which answers [`QueryResult::answers`] reports, by
/// equality with the cell's final value.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    predicate: String,
    pattern: Vec<Option<Value>>,
}

impl Query {
    /// Creates a query on `predicate` with the given bound/free pattern.
    pub fn new(predicate: impl Into<String>, pattern: Vec<Option<Value>>) -> Query {
        Query {
            predicate: predicate.into(),
            pattern,
        }
    }

    /// The queried predicate's name.
    pub fn predicate(&self) -> &str {
        &self.predicate
    }

    /// The bound/free pattern, one entry per argument position.
    pub fn pattern(&self) -> &[Option<Value>] {
        &self.pattern
    }

    /// Whether a fact matches the pattern: every bound position must
    /// equal the fact's column (for lattice cells, a bound value column
    /// compares against the cell's element).
    pub fn matches(&self, fact: &Fact<'_>) -> bool {
        match fact {
            Fact::Row(row) => {
                row.len() == self.pattern.len()
                    && self
                        .pattern
                        .iter()
                        .zip(row.iter())
                        .all(|(p, v)| p.as_ref().is_none_or(|b| b == v))
            }
            Fact::Cell(key, value) => {
                self.pattern.len() == key.len() + 1
                    && self
                        .pattern
                        .iter()
                        .zip(key.iter())
                        .all(|(p, v)| p.as_ref().is_none_or(|b| b == v))
                    && self
                        .pattern
                        .last()
                        .and_then(|p| p.as_ref())
                        .is_none_or(|b| b == *value)
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, p) in self.pattern.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "_")?,
            }
        }
        write!(f, ")")
    }
}

/// A malformed [`Query`] handed to [`Solver::solve_query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DemandError {
    /// The query names a predicate the program does not declare.
    UnknownPredicate {
        /// The unresolvable name.
        predicate: String,
    },
    /// The query pattern's width does not match the predicate's declared
    /// arity (for lattice predicates, key columns plus the value).
    ArityMismatch {
        /// The predicate name.
        predicate: String,
        /// The declared arity.
        declared: usize,
        /// The pattern's width.
        found: usize,
    },
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::UnknownPredicate { predicate } => {
                write!(f, "query names unknown predicate {predicate}")
            }
            DemandError::ArityMismatch {
                predicate,
                declared,
                found,
            } => write!(
                f,
                "query pattern for {predicate} has {found} positions, declared arity is {declared}"
            ),
        }
    }
}

impl std::error::Error for DemandError {}

impl From<DemandError> for SolveError {
    fn from(e: DemandError) -> SolveError {
        SolveError::Demand(e)
    }
}

/// The answers to a query-directed solve, as returned by
/// [`Solver::solve_query`].
///
/// Wraps a [`Solution`] over the *original* program's predicates (the
/// rewrite's internal `demand$` machinery is stripped before the result
/// is assembled): statistics, profiles, provenance, and [`Observer`]
/// callbacks all speak in user-facing rule indices and predicate names.
/// The solution is *demand-restricted*: demanded facts and cells carry
/// exactly their full-model values, while undemanded predicates are
/// simply absent (empty), not falsified.
#[derive(Debug)]
pub struct QueryResult {
    solution: Solution,
    queries: Vec<Query>,
    demanded: Vec<String>,
    full: Vec<String>,
    fallback: bool,
}

impl QueryResult {
    /// The answers to the `idx`-th query (in the order queries were
    /// passed to [`Solver::solve_query`]): every fact of the queried
    /// predicate matching the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn answers(&self, idx: usize) -> impl Iterator<Item = Fact<'_>> {
        let query = &self.queries[idx];
        self.solution
            .facts(query.predicate())
            .into_iter()
            .flatten()
            .filter(move |fact| query.matches(fact))
    }

    /// The queries this result answers, in input order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The demand-restricted solution: demanded facts at full-model
    /// values, undemanded predicates empty.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Consumes the result, returning the underlying solution.
    pub fn into_solution(self) -> Solution {
        self.solution
    }

    /// The run statistics (shorthand for `solution().stats()`).
    pub fn stats(&self) -> &SolveStats {
        self.solution.stats()
    }

    /// Names of the intensional predicates that were evaluated under a
    /// demand guard.
    pub fn demanded_predicates(&self) -> impl Iterator<Item = &str> {
        self.demanded.iter().map(|s| s.as_str())
    }

    /// Names of the intensional predicates that fell back to full
    /// evaluation (negated dependencies and their upstream cones, or
    /// all-free demands).
    pub fn full_predicates(&self) -> impl Iterator<Item = &str> {
        self.full.iter().map(|s| s.as_str())
    }

    /// Whether the whole solve fell back to an unrestricted
    /// [`Solver::solve`] (the rewrite produced nothing the engine could
    /// stratify — a safety net that should not trigger for stratifiable
    /// programs).
    pub fn used_fallback(&self) -> bool {
        self.fallback
    }
}

// ---------------------------------------------------------------------
// Adornment computation (phase A).
// ---------------------------------------------------------------------

/// Demand state of one predicate, descending a three-level lattice:
/// untouched (irrelevant to the queries) → bound on a set of positions →
/// full (evaluated without a guard).
#[derive(Clone, Debug, PartialEq)]
enum DemandState {
    Untouched,
    Bound(BTreeSet<usize>),
    Full,
}

impl DemandState {
    fn is_touched(&self) -> bool {
        !matches!(self, DemandState::Untouched)
    }
}

/// Narrows `state[pred]` by a new demand binding `cols`; returns whether
/// anything changed. An empty binding means an all-free demand, which
/// falls back to full evaluation.
fn demand(state: &mut [DemandState], pred: PredId, cols: BTreeSet<usize>) -> bool {
    if cols.is_empty() {
        return make_full(state, pred);
    }
    let slot = &mut state[pred.0 as usize];
    match slot {
        DemandState::Untouched => {
            *slot = DemandState::Bound(cols);
            true
        }
        DemandState::Bound(prev) => {
            let met: BTreeSet<usize> = prev.intersection(&cols).copied().collect();
            if met.is_empty() {
                *slot = DemandState::Full;
                true
            } else if met.len() != prev.len() {
                *slot = DemandState::Bound(met);
                true
            } else {
                false
            }
        }
        DemandState::Full => false,
    }
}

/// Drops `state[pred]` to full evaluation; returns whether it changed.
fn make_full(state: &mut [DemandState], pred: PredId) -> bool {
    let slot = &mut state[pred.0 as usize];
    if *slot == DemandState::Full {
        return false;
    }
    *slot = DemandState::Full;
    true
}

/// The number of demandable (key) columns of a predicate: all columns
/// for relations, all but the value column for lattices.
fn key_width(decl: &PredDecl) -> usize {
    if decl.is_lattice() {
        decl.arity - 1
    } else {
        decl.arity
    }
}

/// Computes the sideways-information-passing order of a rule body given
/// an initial set of bound variable slots (the guard's bindings): ready
/// tests first, then the atom with the most bound columns, then ready
/// choice bindings — the same greedy heuristic the semi-naïve delta
/// planner uses, seeded from the demand guard instead of a delta atom.
/// Returns body item indices; deterministic, so the adornment fixed
/// point (phase A) and rule emission (phase B) see identical orders.
fn sip_order(body: &[CItem], seed_bound: &HashSet<usize>) -> Vec<usize> {
    fn item_vars(item: &CItem, out: &mut Vec<usize>) {
        let terms = match item {
            CItem::Atom { terms, .. } | CItem::NegAtom { terms, .. } => terms,
            CItem::Filter { args, .. } | CItem::Choose { args, .. } => args,
        };
        for t in terms {
            if let CTerm::Var(slot) = t {
                out.push(*slot);
            }
        }
    }

    let mut bound = seed_bound.clone();
    let mut out: Vec<usize> = Vec::with_capacity(body.len());
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let take = |k: usize, remaining: &mut Vec<usize>, bound: &mut HashSet<usize>| {
        let i = remaining.remove(k);
        match &body[i] {
            CItem::Atom { terms, .. } => {
                for t in terms {
                    if let CTerm::Var(slot) = t {
                        bound.insert(*slot);
                    }
                }
            }
            CItem::Choose { binds, .. } => bound.extend(binds.iter().copied()),
            CItem::NegAtom { .. } | CItem::Filter { .. } => {}
        }
        i
    };
    while !remaining.is_empty() {
        // 1. Pure tests whose variables are all bound.
        if let Some(k) = remaining.iter().position(|&i| {
            matches!(body[i], CItem::NegAtom { .. } | CItem::Filter { .. }) && {
                let mut vars = Vec::new();
                item_vars(&body[i], &mut vars);
                vars.iter().all(|v| bound.contains(v))
            }
        }) {
            let i = take(k, &mut remaining, &mut bound);
            out.push(i);
            continue;
        }
        // 2. The atom with the most bound columns (literals count).
        let best = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &i)| matches!(body[i], CItem::Atom { .. }))
            .map(|(k, &i)| {
                let CItem::Atom { terms, .. } = &body[i] else {
                    unreachable!("filtered to atoms")
                };
                let score = terms
                    .iter()
                    .filter(|t| match t {
                        CTerm::Lit(_) => true,
                        CTerm::Var(slot) => bound.contains(slot),
                        CTerm::Wild => false,
                    })
                    .count();
                (k, score)
            })
            .max_by_key(|&(k, score)| (score, std::cmp::Reverse(k)));
        if let Some((k, score)) = best {
            if score > 0 {
                let i = take(k, &mut remaining, &mut bound);
                out.push(i);
                continue;
            }
        }
        // 3. A choice binding whose arguments are bound.
        if let Some(k) = remaining.iter().position(|&i| {
            matches!(body[i], CItem::Choose { .. }) && {
                let mut vars = Vec::new();
                item_vars(&body[i], &mut vars);
                vars.iter().all(|v| bound.contains(v))
            }
        }) {
            let i = take(k, &mut remaining, &mut bound);
            out.push(i);
            continue;
        }
        // 4. An unconnected atom: unavoidable cross product.
        if let Some(k) = remaining
            .iter()
            .position(|&i| matches!(body[i], CItem::Atom { .. }))
        {
            let i = take(k, &mut remaining, &mut bound);
            out.push(i);
            continue;
        }
        // 5. Nothing is ready: append the rest in original (compiled)
        // order, which is a valid schedule by construction.
        out.append(&mut remaining);
    }
    out
}

/// Walks one rule under a bound head adornment, reporting the demand
/// each positive intensional atom receives: `visit(body_idx, pred,
/// bound_cols)` fires for every positive atom, in SIP order, with the
/// columns that are literals or bound by the guard / *earlier positive
/// atoms* (choice bindings are excluded: demand rules do not replay
/// choice functions, so their bindings cannot be part of an adornment).
fn walk_demands(
    program: &Program,
    rule: &CRule,
    head_adornment: &BTreeSet<usize>,
    mut visit: impl FnMut(usize, PredId, BTreeSet<usize>),
) {
    let mut bound: HashSet<usize> = HashSet::new();
    for &col in head_adornment {
        if let CHead::Var(slot) = &rule.head[col] {
            bound.insert(*slot);
        }
    }
    let order = sip_order(&rule.body, &bound);
    for idx in order {
        if let CItem::Atom { pred, terms, .. } = &rule.body[idx] {
            let kw = key_width(program.decl(*pred));
            let cols: BTreeSet<usize> = terms
                .iter()
                .take(kw)
                .enumerate()
                .filter(|(_, t)| match t {
                    CTerm::Lit(_) => true,
                    CTerm::Var(slot) => bound.contains(slot),
                    CTerm::Wild => false,
                })
                .map(|(c, _)| c)
                .collect();
            visit(idx, *pred, cols);
            for t in terms {
                if let CTerm::Var(slot) = t {
                    bound.insert(*slot);
                }
            }
        }
    }
}

/// Phase A: the adornment fixed point. Starts from the query patterns
/// and repeatedly narrows per-predicate demand states until stable:
/// demanded heads propagate bindings into their bodies (SIP), negated
/// intensional dependencies and all-free demands drop to full, and full
/// predicates drag their entire upstream cone to full.
fn compute_states(
    program: &Program,
    queries: &[(PredId, Vec<Option<Value>>)],
    idb: &[bool],
) -> Vec<DemandState> {
    let mut state = vec![DemandState::Untouched; program.preds.len()];
    for (pred, pattern) in queries {
        let cols: BTreeSet<usize> = pattern
            .iter()
            .take(key_width(program.decl(*pred)))
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(c, _)| c)
            .collect();
        demand(&mut state, *pred, cols);
    }
    loop {
        let mut changed = false;
        for rule in &program.rules {
            match state[rule.head_pred.0 as usize].clone() {
                DemandState::Untouched => {}
                DemandState::Full => {
                    // A full head needs its full body: every intensional
                    // dependency (positive or negative) is full too.
                    for item in &rule.body {
                        match item {
                            CItem::Atom { pred, .. } | CItem::NegAtom { pred, .. } => {
                                if idb[pred.0 as usize] {
                                    changed |= make_full(&mut state, *pred);
                                }
                            }
                            CItem::Filter { .. } | CItem::Choose { .. } => {}
                        }
                    }
                }
                DemandState::Bound(adornment) => {
                    for item in &rule.body {
                        if let CItem::NegAtom { pred, .. } = item {
                            if idb[pred.0 as usize] {
                                changed |= make_full(&mut state, *pred);
                            }
                        }
                    }
                    let mut demands: Vec<(PredId, BTreeSet<usize>)> = Vec::new();
                    walk_demands(program, rule, &adornment, |_, pred, cols| {
                        if idb[pred.0 as usize] {
                            demands.push((pred, cols));
                        }
                    });
                    for (pred, cols) in demands {
                        changed |= demand(&mut state, pred, cols);
                    }
                }
            }
        }
        if !changed {
            return state;
        }
    }
}

// ---------------------------------------------------------------------
// Rule emission (phase B).
// ---------------------------------------------------------------------

/// Decompiles a compiled body/head term back to its surface form, using
/// the rule's variable-name table.
fn dec_term(t: &CTerm, names: &[Arc<str>]) -> Term {
    match t {
        CTerm::Var(slot) => Term::Var(names[*slot].clone()),
        CTerm::Lit(v) => Term::Lit(v.clone()),
        CTerm::Wild => Term::Wildcard,
    }
}

/// Decompiles a compiled body item back to a surface [`BodyItem`].
fn dec_item(item: &CItem, names: &[Arc<str>]) -> BodyItem {
    match item {
        CItem::Atom { pred, terms, .. } => BodyItem::Atom {
            pred: *pred,
            terms: terms.iter().map(|t| dec_term(t, names)).collect(),
        },
        CItem::NegAtom { pred, terms } => BodyItem::NegAtom {
            pred: *pred,
            terms: terms.iter().map(|t| dec_term(t, names)).collect(),
        },
        CItem::Filter { func, args } => BodyItem::Filter {
            func: FuncId(*func as u32),
            args: args.iter().map(|t| dec_term(t, names)).collect(),
        },
        CItem::Choose { func, args, binds } => BodyItem::Choose {
            func: FuncId(*func as u32),
            args: args.iter().map(|t| dec_term(t, names)).collect(),
            binds: binds.iter().map(|slot| names[*slot].clone()).collect(),
        },
    }
}

/// Decompiles a compiled rule head back to a surface [`Head`].
fn dec_head(rule: &CRule, names: &[Arc<str>]) -> Head {
    Head {
        pred: rule.head_pred,
        terms: rule
            .head
            .iter()
            .map(|h| match h {
                CHead::Var(slot) => HeadTerm::Var(names[*slot].clone()),
                CHead::Lit(v) => HeadTerm::Lit(v.clone()),
                CHead::App(func, args) => HeadTerm::App(
                    FuncId(*func as u32),
                    args.iter().map(|t| dec_term(t, names)).collect(),
                ),
            })
            .collect(),
    }
}

/// Decompiles a full rule (head and body, compiled order) back to a
/// [`RawRule`]; the compiled order is a valid schedule, so recompiling
/// reproduces an equivalent rule.
fn dec_rule(rule: &CRule) -> RawRule {
    let names = &rule.var_names;
    RawRule {
        head: dec_head(rule, names),
        body: rule.body.iter().map(|item| dec_item(item, names)).collect(),
    }
}

/// Whether a demand rule head is the guard atom verbatim (the
/// tautological `demand$P(x̄) :- demand$P(x̄)` self-loop produced by
/// direct recursion); such rules derive nothing and are skipped.
fn same_pattern(head_terms: &[HeadTerm], guard_terms: &[Term]) -> bool {
    head_terms.len() == guard_terms.len()
        && head_terms
            .iter()
            .zip(guard_terms)
            .all(|(h, g)| match (h, g) {
                (HeadTerm::Var(a), Term::Var(b)) => a == b,
                (HeadTerm::Lit(a), Term::Lit(b)) => a == b,
                _ => false,
            })
}

/// The demand rewrite of one program for one query set (already
/// resolved and validated).
pub(crate) struct Rewritten {
    /// The rewritten program: original predicates (ids preserved) plus
    /// appended `demand$` relations; guarded/full rule copies plus
    /// demand rules; facts restricted to relevant predicates plus the
    /// query seeds.
    pub(crate) program: Program,
    /// For every rewritten rule, the original rule it derives from
    /// (guarded and full copies map to themselves, demand rules to the
    /// rule whose body they propagate through).
    pub(crate) rule_origin: Vec<usize>,
    /// The original program's predicate count; everything at or past
    /// this id is rewrite machinery to strip from results.
    pub(crate) num_original_preds: usize,
    /// Names of intensional predicates evaluated under a demand guard.
    pub(crate) demanded: Vec<String>,
    /// Names of intensional predicates evaluated in full (fallbacks).
    pub(crate) full: Vec<String>,
}

/// Builds the demand rewrite. `queries` must be resolved against
/// `program` (ids valid, patterns arity-checked).
pub(crate) fn rewrite(
    program: &Program,
    queries: &[(PredId, Vec<Option<Value>>)],
) -> Result<Rewritten, ProgramError> {
    let npreds = program.preds.len();
    let mut idb = vec![false; npreds];
    for rule in &program.rules {
        idb[rule.head_pred.0 as usize] = true;
    }
    let state = compute_states(program, queries, &idb);

    // Declare one demand relation per guarded predicate, with a name no
    // surface program can collide with (`$` is not an identifier
    // character; the loop handles hostile programmatic names).
    let mut preds: Vec<PredDecl> = program.preds.clone();
    let mut taken: HashSet<Arc<str>> = preds.iter().map(|d| d.name.clone()).collect();
    let mut demand_pred: Vec<Option<(PredId, Vec<usize>)>> = vec![None; npreds];
    for p in 0..npreds {
        if !idb[p] {
            continue;
        }
        if let DemandState::Bound(cols) = &state[p] {
            let mut name = format!("demand${}", preds[p].name);
            while taken.contains(name.as_str()) {
                name.push('$');
            }
            let name: Arc<str> = name.into();
            taken.insert(name.clone());
            let id = PredId(preds.len() as u32);
            preds.push(PredDecl {
                name,
                arity: cols.len(),
                kind: PredKind::Relation,
            });
            demand_pred[p] = Some((id, cols.iter().copied().collect()));
        }
    }

    // Emit the rewritten rules.
    let mut raw_rules: Vec<RawRule> = Vec::new();
    let mut rule_origin: Vec<usize> = Vec::new();
    let mut body_preds = vec![false; npreds];
    for (i, rule) in program.rules.iter().enumerate() {
        let head = rule.head_pred.0 as usize;
        match &state[head] {
            DemandState::Untouched => continue,
            DemandState::Full => {
                raw_rules.push(dec_rule(rule));
                rule_origin.push(i);
            }
            DemandState::Bound(adornment) => {
                let names = &rule.var_names;
                let (guard_id, guard_cols) = demand_pred[head]
                    .as_ref()
                    .expect("bound intensional predicates have a demand relation");
                let guard_terms: Vec<Term> = guard_cols
                    .iter()
                    .map(|&c| match &rule.head[c] {
                        CHead::Var(slot) => Term::Var(names[*slot].clone()),
                        CHead::Lit(v) => Term::Lit(v.clone()),
                        // A transfer-function output cannot be matched
                        // against the demand; the guard leaves it open.
                        CHead::App(..) => Term::Wildcard,
                    })
                    .collect();
                let guard = BodyItem::Atom {
                    pred: *guard_id,
                    terms: guard_terms.clone(),
                };

                // The guarded copy: guard first, body in SIP order.
                let mut seed_bound: HashSet<usize> = HashSet::new();
                for &col in adornment {
                    if let CHead::Var(slot) = &rule.head[col] {
                        seed_bound.insert(*slot);
                    }
                }
                let order = sip_order(&rule.body, &seed_bound);
                let mut body: Vec<BodyItem> = Vec::with_capacity(rule.body.len() + 1);
                body.push(guard.clone());
                body.extend(order.iter().map(|&idx| dec_item(&rule.body[idx], names)));
                raw_rules.push(RawRule {
                    head: dec_head(rule, names),
                    body,
                });
                rule_origin.push(i);

                // Demand rules: for every demanded intensional atom, the
                // bindings available before matching it.
                let mut prefix: Vec<BodyItem> = vec![guard];
                walk_demands(program, rule, adornment, |idx, pred, _| {
                    let CItem::Atom { terms, .. } = &rule.body[idx] else {
                        unreachable!("walk_demands visits positive atoms")
                    };
                    if let Some((qid, qcols)) = &demand_pred[pred.0 as usize] {
                        let head_terms: Vec<HeadTerm> = qcols
                            .iter()
                            .map(|&c| match &terms[c] {
                                CTerm::Var(slot) => HeadTerm::Var(names[*slot].clone()),
                                CTerm::Lit(v) => HeadTerm::Lit(v.clone()),
                                CTerm::Wild => {
                                    unreachable!("adorned columns are bound or literal")
                                }
                            })
                            .collect();
                        let tautology = prefix.len() == 1
                            && *qid == *guard_id
                            && same_pattern(&head_terms, &guard_terms);
                        if !tautology {
                            raw_rules.push(RawRule {
                                head: Head {
                                    pred: *qid,
                                    terms: head_terms,
                                },
                                body: prefix.clone(),
                            });
                            rule_origin.push(i);
                        }
                    }
                    prefix.push(dec_item(&rule.body[idx], names));
                });
            }
        }
        for item in &rule.body {
            match item {
                CItem::Atom { pred, .. } | CItem::NegAtom { pred, .. } => {
                    body_preds[pred.0 as usize] = true;
                }
                CItem::Filter { .. } | CItem::Choose { .. } => {}
            }
        }
    }

    // Facts: keep extensional input for every relevant predicate —
    // queried/demanded/full ones plus anything a kept rule body reads.
    // Everything else is dropped, which is both the saving and the
    // "undemanded predicates are never materialized" guarantee.
    let mut facts: Vec<(PredId, Vec<Value>)> = program
        .facts
        .iter()
        .filter(|(p, _)| {
            let p = p.0 as usize;
            state[p].is_touched() || body_preds[p]
        })
        .cloned()
        .collect();

    // Seeds: every query pattern projected to its predicate's adornment.
    for (pred, pattern) in queries {
        if let Some((did, cols)) = &demand_pred[pred.0 as usize] {
            let seed: Vec<Value> = cols
                .iter()
                .map(|&c| {
                    pattern[c]
                        .clone()
                        .expect("adorned columns are bound in every query")
                })
                .collect();
            facts.push((*did, seed));
        }
    }

    let mut demanded = Vec::new();
    let mut full = Vec::new();
    for p in 0..npreds {
        if !idb[p] {
            continue;
        }
        match &state[p] {
            DemandState::Bound(_) => demanded.push(preds[p].name.to_string()),
            DemandState::Full => full.push(preds[p].name.to_string()),
            DemandState::Untouched => {}
        }
    }

    let program = Program::from_parts(preds, program.funcs.clone(), raw_rules, facts)?;
    Ok(Rewritten {
        program,
        rule_origin,
        num_original_preds: npreds,
        demanded,
        full,
    })
}

// ---------------------------------------------------------------------
// The query-directed solver entry point and result remapping.
// ---------------------------------------------------------------------

/// A query resolved against a program: the predicate id and the pattern.
pub(crate) type ResolvedQuery = (PredId, Vec<Option<Value>>);

/// Resolves query names against the program and checks pattern widths.
pub(crate) fn resolve_queries(
    program: &Program,
    queries: &[Query],
) -> Result<Vec<ResolvedQuery>, DemandError> {
    let mut resolved = Vec::with_capacity(queries.len());
    for q in queries {
        let Some(pred) = program.predicate(&q.predicate) else {
            return Err(DemandError::UnknownPredicate {
                predicate: q.predicate.clone(),
            });
        };
        let declared = program.decl(pred).arity();
        if q.pattern.len() != declared {
            return Err(DemandError::ArityMismatch {
                predicate: q.predicate.clone(),
                declared,
                found: q.pattern.len(),
            });
        }
        resolved.push((pred, q.pattern.clone()));
    }
    Ok(resolved)
}

/// Rewrite-invisibility shim for [`Observer`]: rule-evaluated events
/// fired while solving the rewritten program are translated back to the
/// original rule indices before reaching the user's observer (demand
/// rules report as the rule whose body they propagate through).
struct RemapObserver {
    inner: Arc<dyn Observer>,
    origin: Vec<usize>,
}

impl Observer for RemapObserver {
    fn round_started(&self, stratum: usize, round: u64, facts: u64) {
        self.inner.round_started(stratum, round, facts);
    }

    fn rule_evaluated(&self, event: &RuleEvaluated) {
        let mut mapped = event.clone();
        mapped.rule = self.origin[event.rule];
        self.inner.rule_evaluated(&mapped);
    }

    fn stratum_converged(&self, stratum: usize, rounds: u64) {
        self.inner.stratum_converged(stratum, rounds);
    }

    fn budget_checked(&self, stratum: usize, exceeded: Option<&crate::BudgetKind>) {
        self.inner.budget_checked(stratum, exceeded);
    }

    fn resume_started(&self, delta_entries: usize) {
        self.inner.resume_started(delta_entries);
    }

    fn ascent_warning(&self, warning: &AscentWarning) {
        // Lattice predicates keep their names through the rewrite, so
        // the warning is already in the original program's terms.
        self.inner.ascent_warning(warning);
    }
}

/// Seeds a per-rule stats table for `program`'s rules (all counters
/// zero, heads filled in), exactly as `Solver::solve` does.
fn seed_per_rule(program: &Program) -> Vec<RuleStats> {
    program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| RuleStats {
            rule: i,
            head: program.decl(r.head_pred).name().to_string(),
            ..RuleStats::default()
        })
        .collect()
}

/// Folds the rewritten run's per-rule profile onto the original rules
/// via the origin map: a guarded copy's and its demand rules' work all
/// accrue to the one user-facing rule (so `render_profile_table` groups
/// rewritten variants under the original rule automatically).
fn remap_stats(
    original: &Program,
    rw: &Rewritten,
    run: SolveStats,
    final_db: &Database,
) -> SolveStats {
    let mut per_rule = seed_per_rule(original);
    for (i, rs) in run.per_rule.iter().enumerate() {
        let target = &mut per_rule[rw.rule_origin[i]];
        target.evaluations += rs.evaluations;
        target.derived += rs.derived;
        target.inserted += rs.inserted;
        target.probes += rs.probes;
        target.scans += rs.scans;
        target.eval_ns += rs.eval_ns;
    }
    SolveStats {
        per_rule,
        // The user-facing fact count describes the demand-restricted
        // model, not the internal demand relations.
        total_facts: final_db.total_facts() as u64,
        ..run
    }
}

/// Strips and remaps a provenance log recorded over the rewritten
/// program: events on demand relations are dropped, rule indices are
/// translated to original rules, and guard premises are removed — so
/// [`Solution::explain`] renders derivations exactly as a full solve
/// would have.
fn remap_events(rw: &Rewritten, events: Vec<Event>) -> Vec<Event> {
    let n = rw.num_original_preds as u32;
    events
        .into_iter()
        .filter(|e| e.pred.0 < n)
        .map(|mut e| {
            if let Source::Rule { rule, premises } = &mut e.source {
                *rule = rw.rule_origin[*rule];
                premises.retain(|p| p.pred.0 < n);
            }
            e
        })
        .collect()
}

/// Rewrites failure details recorded against the rewritten program back
/// into the original program's terms.
fn remap_error(original: &Program, rw: &Rewritten, mut error: SolveError) -> SolveError {
    match &mut error {
        SolveError::FunctionPanicked {
            predicate, rule, ..
        }
        | SolveError::SafetyViolation {
            predicate, rule, ..
        } => {
            if let Some(r) = rule {
                let origin = rw.rule_origin[*r];
                *r = origin;
                if original.predicate(predicate).is_none() {
                    // The failing rule was demand machinery; attribute it
                    // to the originating rule's head.
                    *predicate = original
                        .decl(original.rules[origin].head_pred)
                        .name()
                        .to_string();
                }
            }
        }
        _ => {}
    }
    error
}

impl Solver {
    /// Solves `program` only as far as the given queries demand: the
    /// magic-set-style rewrite of this module restricts evaluation to
    /// the tuples and lattice cells transitively relevant to the query
    /// patterns, and the answers are read off the restricted model.
    ///
    /// Demanded facts and cells are *cell-for-cell identical* to the
    /// full minimal model (pinned by the demand parity suite across all
    /// strategies and thread counts); undemanded predicates are left
    /// empty. An empty query set demands nothing and yields an empty
    /// model. Statistics, profiles, provenance, and [`Observer`]
    /// callbacks are reported in the *original* program's rule indices
    /// and predicate names — the rewrite is invisible outside this
    /// method. The configured [`crate::Budget`], round limit, strategy,
    /// and thread count all apply as in [`Solver::solve`].
    ///
    /// # Errors
    ///
    /// All [`Solver::solve`] failure modes, plus [`SolveError::Demand`]
    /// when a query is malformed (unknown predicate, wrong pattern
    /// width) — in that case the partial solution is empty. On budget
    /// or round-limit exhaustion the partial solution is a sound
    /// under-approximation: every reported fact is in the full model,
    /// and demanded lattice cells sit at or below their full-model
    /// values.
    pub fn solve_query(
        &self,
        program: &Program,
        queries: &[Query],
    ) -> Result<QueryResult, Box<SolveFailure>> {
        let wall_start = Instant::now();
        let resolved = match resolve_queries(program, queries) {
            Ok(resolved) => resolved,
            Err(e) => {
                let db = Database::for_program(program, self.config.use_indexes);
                let mut stats = SolveStats {
                    per_rule: seed_per_rule(program),
                    ..SolveStats::default()
                };
                stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
                if let Some(obs) = &self.config.observer {
                    obs.solve_finished(&stats);
                }
                let partial = make_solution(program, db, stats.clone(), None, None);
                return Err(Box::new(SolveFailure {
                    error: SolveError::Demand(e),
                    partial,
                    stats,
                }));
            }
        };

        // The rewrite of a stratifiable program is stratifiable (full
        // predicates keep their original sub-program; demand edges are
        // purely positive), but a failed rewrite or stratification is
        // never fatal: fall back to an unrestricted solve and filter.
        let tracer = Tracer::new(self.config.trace.as_ref());
        let rewrite_start = tracer.now_ns();
        let rewritten = rewrite(program, &resolved)
            .ok()
            .filter(|rw| check_stratifiable(&rw.program).is_ok());
        tracer.record(0, SpanKind::DemandRewrite, rewrite_start);
        let Some(rw) = rewritten else {
            let mut idb_names: Vec<String> = Vec::new();
            let mut seen = vec![false; program.preds.len()];
            for rule in &program.rules {
                let p = rule.head_pred.0 as usize;
                if !seen[p] {
                    seen[p] = true;
                    idb_names.push(program.decl(rule.head_pred).name().to_string());
                }
            }
            let solution = self.solve(program)?;
            return Ok(QueryResult {
                solution,
                queries: queries.to_vec(),
                demanded: Vec::new(),
                full: idb_names,
                fallback: true,
            });
        };

        // Solve the rewritten program with an observer shim translating
        // rule indices back to the original program.
        let mut sub = self.clone();
        if let Some(obs) = &self.config.observer {
            sub.config.observer = Some(Arc::new(RemapObserver {
                inner: obs.clone(),
                origin: rw.rule_origin.clone(),
            }));
        }
        let guard = Guard::new(&sub.config.budget);
        let mut db = Database::for_program(&rw.program, sub.config.use_indexes);
        if sub.config.ascent.is_some() {
            db.enable_ascent();
        }
        let mut run_stats = SolveStats {
            per_rule: seed_per_rule(&rw.program),
            ..SolveStats::default()
        };
        let mut events: Option<Vec<Event>> = sub.config.record_provenance.then(Vec::new);
        let outcome = sub.solve_inner(
            &rw.program,
            &guard,
            &mut db,
            crate::solver::FactSource::ProgramPlus(&[]),
            &mut run_stats,
            &mut events,
            &tracer,
        );

        // Strip the demand machinery: truncate the database back to the
        // original predicates, fold rewritten-rule work onto original
        // rules, translate provenance. The trace is remapped the same
        // way: demand-internal rule spans collapse onto the user-facing
        // rules they propagate for.
        tracer.record(0, SpanKind::Solve, 0);
        let trace = tracer.finish(rule_heads(&rw.program)).map(|mut t| {
            t.remap_rules(&rw.rule_origin, rule_heads(program));
            t
        });
        let db = db.truncated(rw.num_original_preds);
        run_stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
        let stats = remap_stats(program, &rw, run_stats, &db);
        if let Some(obs) = &self.config.observer {
            obs.solve_finished(&stats);
        }
        let events = events.map(|ev| remap_events(&rw, ev));
        let solution = make_solution(program, db, stats.clone(), events, trace);
        match outcome {
            Ok(()) => Ok(QueryResult {
                solution,
                queries: queries.to_vec(),
                demanded: rw.demanded,
                full: rw.full,
                fallback: false,
            }),
            Err(mut error) => {
                if let SolveError::RoundLimitExceeded { stats: s, .. }
                | SolveError::BudgetExceeded { stats: s, .. } = &mut error
                {
                    *s = stats.clone();
                }
                let error = remap_error(program, &rw, error);
                Err(Box::new(SolveFailure {
                    error,
                    partial: solution,
                    stats,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BodyItem, Head, HeadTerm, LatticeOps, ProgramBuilder, Strategy, Term, ValueLattice,
    };
    use flix_lattice::MinCost;

    fn path_program() -> Program {
        let mut b = ProgramBuilder::new();
        let edge = b.relation("Edge", 2);
        let path = b.relation("Path", 2);
        for (x, y) in [(1, 2), (2, 3), (3, 4), (10, 11), (11, 12)] {
            b.fact(edge, vec![x.into(), y.into()]);
        }
        b.rule(
            Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
            [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
        );
        b.rule(
            Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
            [
                BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
                BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
            ],
        );
        b.build().expect("valid program")
    }

    #[test]
    fn bound_first_column_restricts_derivation() {
        let program = path_program();
        let query = Query::new("Path", vec![Some(Value::from(1)), None]);
        let result = Solver::new()
            .solve_query(&program, &[query])
            .expect("query solves");
        assert!(!result.used_fallback());
        let answers: Vec<String> = result.answers(0).map(|f| f.to_string()).collect();
        assert_eq!(answers.len(), 3, "{answers:?}");
        // The 10 → 12 component is never derived.
        assert!(!result.solution().contains("Path", &[10.into(), 11.into()]));
        // Work is strictly less than the full model's 8 Path tuples.
        let full = Solver::new().solve(&program).expect("full solve");
        assert!(result.solution().len("Path") < full.len("Path"));
    }

    #[test]
    fn demanded_answers_equal_full_model() {
        let program = path_program();
        let full = Solver::new().solve(&program).expect("full solve");
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let query = Query::new("Path", vec![Some(Value::from(2)), None]);
            let result = Solver::new()
                .strategy(strategy)
                .solve_query(&program, std::slice::from_ref(&query))
                .expect("query solves");
            let mut demanded: Vec<String> = result.answers(0).map(|f| f.to_string()).collect();
            let mut reference: Vec<String> = full
                .facts("Path")
                .expect("Path exists")
                .filter(|f| query.matches(f))
                .map(|f| f.to_string())
                .collect();
            demanded.sort();
            reference.sort();
            assert_eq!(demanded, reference, "{strategy:?}");
        }
    }

    #[test]
    fn lattice_cells_are_demanded_by_key() {
        // §4.4 shortest paths; query one target cell and check it equals
        // the full model's.
        let mut b = ProgramBuilder::new();
        let edge = b.relation("Edge", 3);
        let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
        let extend = b.function("extend", |args| {
            let d = MinCost::expect_from(&args[0]);
            let c = args[1].as_int().expect("weight") as u64;
            d.add_weight(c).to_value()
        });
        b.fact(dist, vec!["a".into(), MinCost::finite(0).to_value()]);
        for (x, y, c) in [("a", "b", 4), ("b", "c", 3), ("a", "c", 9), ("z", "c", 1)] {
            b.fact(edge, vec![x.into(), y.into(), c.into()]);
        }
        b.rule(
            Head::new(
                dist,
                [
                    HeadTerm::var("y"),
                    HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
                ],
            ),
            [
                BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
                BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
            ],
        );
        let program = b.build().expect("valid");
        let query = Query::new("Dist", vec![Some(Value::from("c")), None]);
        let result = Solver::new()
            .solve_query(&program, &[query])
            .expect("query solves");
        assert_eq!(
            result.solution().lattice_value("Dist", &["c".into()]),
            Some(MinCost::finite(7).to_value()),
        );
    }

    #[test]
    fn stats_and_profiles_speak_original_names() {
        let program = path_program();
        let query = Query::new("Path", vec![Some(Value::from(1)), None]);
        let result = Solver::new()
            .solve_query(&program, &[query])
            .expect("query solves");
        let stats = result.stats();
        assert_eq!(stats.per_rule.len(), program.num_rules());
        for rs in &stats.per_rule {
            assert!(
                !rs.head.contains('$'),
                "demand machinery leaked into stats: {}",
                rs.head
            );
        }
        // The recursive rule did real (guarded) work.
        assert!(stats.per_rule[1].evaluations > 0);
    }

    #[test]
    fn malformed_queries_are_rejected() {
        let program = path_program();
        let err = Solver::new()
            .solve_query(&program, &[Query::new("Nope", vec![None])])
            .expect_err("unknown predicate");
        assert!(matches!(
            err.error,
            SolveError::Demand(DemandError::UnknownPredicate { .. })
        ));
        let err = Solver::new()
            .solve_query(&program, &[Query::new("Path", vec![None])])
            .expect_err("arity mismatch");
        assert!(matches!(
            err.error,
            SolveError::Demand(DemandError::ArityMismatch {
                declared: 2,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn empty_query_set_demands_nothing() {
        let program = path_program();
        let result = Solver::new()
            .solve_query(&program, &[])
            .expect("empty query set");
        assert_eq!(result.solution().total_facts(), 0);
    }

    #[test]
    fn all_free_query_falls_back_to_full_evaluation() {
        let program = path_program();
        let query = Query::new("Path", vec![None, None]);
        let result = Solver::new()
            .solve_query(&program, &[query])
            .expect("query solves");
        let full = Solver::new().solve(&program).expect("full solve");
        assert_eq!(result.solution().len("Path"), full.len("Path"));
        assert!(result.full_predicates().any(|p| p == "Path"));
    }
}
