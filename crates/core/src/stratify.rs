//! Stratification of programs with negation (§3.5 and §7 of the paper).
//!
//! The paper's FLIX "currently does not support any form of negation, but
//! it is something we plan to add", and §7 judges the stratified extension
//! straightforward. This module is that extension: it builds the predicate
//! dependency graph, finds its strongly connected components, rejects
//! programs with a negated edge inside a component (a negative cycle), and
//! otherwise orders the rules into strata that the solver completes one at
//! a time.

use crate::ast::ProgramError;
use crate::program::{CItem, Program};

/// The stratification of a program's rules.
#[derive(Debug)]
pub(crate) struct Strata {
    /// Rule indices grouped by stratum, in evaluation order.
    pub(crate) rule_groups: Vec<Vec<usize>>,
}

/// Checks that `program` stratifies without keeping the strata; used by
/// the demand rewrite as a safety net before handing a rewritten program
/// to the engine.
pub(crate) fn check_stratifiable(program: &Program) -> Result<(), ProgramError> {
    stratify(program).map(|_| ())
}

/// Computes the strata of `program`'s rules.
///
/// # Errors
///
/// Returns [`ProgramError::NotStratifiable`] if some predicate depends
/// negatively on itself through a cycle.
pub(crate) fn stratify(program: &Program) -> Result<Strata, ProgramError> {
    let n = program.preds.len();
    // Positive and negative dependency edges: body pred -> head pred.
    let mut pos_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut neg_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for rule in &program.rules {
        let head = rule.head_pred.0 as usize;
        for item in &rule.body {
            match item {
                CItem::Atom { pred, .. } => pos_edges[pred.0 as usize].push(head),
                CItem::NegAtom { pred, .. } => neg_edges[pred.0 as usize].push(head),
                CItem::Filter { .. } | CItem::Choose { .. } => {}
            }
        }
    }

    let scc_of = tarjan_scc(n, |v| {
        pos_edges[v].iter().chain(neg_edges[v].iter()).copied()
    });
    let num_sccs = scc_of.iter().map(|&c| c + 1).max().unwrap_or(0);

    // A negative edge inside one SCC is a negative cycle.
    for (src, heads) in neg_edges.iter().enumerate() {
        for &dst in heads {
            if scc_of[src] == scc_of[dst] {
                return Err(ProgramError::NotStratifiable {
                    predicate: program.preds[src].name.to_string(),
                });
            }
        }
    }

    // Stratum of each SCC: longest path counting negative edges, computed
    // by relaxation over the condensation (acyclic in negative edges, and
    // positive edges inside an SCC do not change its stratum).
    let mut stratum = vec![0usize; num_sccs];
    let mut changed = true;
    let mut guard = 0usize;
    while changed {
        changed = false;
        guard += 1;
        assert!(
            guard <= num_sccs + 1,
            "stratum relaxation failed to converge; negative cycle missed"
        );
        for (src, heads) in pos_edges.iter().enumerate() {
            for &dst in heads {
                if stratum[scc_of[dst]] < stratum[scc_of[src]] {
                    stratum[scc_of[dst]] = stratum[scc_of[src]];
                    changed = true;
                }
            }
        }
        for (src, heads) in neg_edges.iter().enumerate() {
            for &dst in heads {
                if stratum[scc_of[dst]] < stratum[scc_of[src]] + 1 {
                    stratum[scc_of[dst]] = stratum[scc_of[src]] + 1;
                    changed = true;
                }
            }
        }
    }

    let max_stratum = stratum.iter().copied().max().unwrap_or(0);
    let mut rule_groups: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (i, rule) in program.rules.iter().enumerate() {
        rule_groups[stratum[scc_of[rule.head_pred.0 as usize]]].push(i);
    }
    // Drop empty leading/trailing groups but keep order.
    rule_groups.retain(|g| !g.is_empty());
    if rule_groups.is_empty() {
        rule_groups.push(Vec::new());
    }
    Ok(Strata { rule_groups })
}

/// Iterative Tarjan SCC; returns the component id of each vertex.
/// Component ids are assigned in reverse topological order of the
/// condensation (standard Tarjan property), but we only use them as labels.
fn tarjan_scc<I>(n: usize, successors: impl Fn(usize) -> I) -> Vec<usize>
where
    I: Iterator<Item = usize>,
{
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack of (vertex, successor iterator state).
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs: Vec<usize> = successors(start).collect();
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        call_stack.push((start, succs, 0));

        while let Some((v, succs, mut i)) = call_stack.pop() {
            let mut descended = false;
            while i < succs.len() {
                let w = succs[i];
                i += 1;
                if index[w] == UNVISITED {
                    // Descend into w.
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((v, succs, i));
                    let w_succs: Vec<usize> = successors(w).collect();
                    call_stack.push((w, w_succs, 0));
                    descended = true;
                    break;
                } else if on_stack[w] && index[w] < lowlink[v] {
                    lowlink[v] = index[w];
                }
            }
            if descended {
                continue;
            }
            // v is finished: maybe pop an SCC, then propagate lowlink.
            if lowlink[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack invariant");
                    on_stack[w] = false;
                    comp[w] = next_comp;
                    if w == v {
                        break;
                    }
                }
                next_comp += 1;
            }
            if let Some((parent, _, _)) = call_stack.last() {
                if lowlink[v] < lowlink[*parent] {
                    let p = *parent;
                    lowlink[p] = lowlink[v];
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BodyItem, Head, HeadTerm, ProgramBuilder, Term};

    #[test]
    fn positive_recursion_is_one_stratum() {
        let mut b = ProgramBuilder::new();
        let e = b.relation("E", 2);
        let p = b.relation("P", 2);
        b.rule(
            Head::new(p, [HeadTerm::var("x"), HeadTerm::var("y")]),
            [BodyItem::atom(e, [Term::var("x"), Term::var("y")])],
        );
        b.rule(
            Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
            [
                BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
                BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
            ],
        );
        let prog = b.build().expect("valid");
        let strata = stratify(&prog).expect("stratifiable");
        assert_eq!(strata.rule_groups.len(), 1);
        assert_eq!(strata.rule_groups[0].len(), 2);
    }

    #[test]
    fn negation_pushes_rules_to_later_stratum() {
        let mut b = ProgramBuilder::new();
        let node = b.relation("Node", 1);
        let e = b.relation("E", 2);
        let reach = b.relation("Reach", 1);
        let unreach = b.relation("Unreach", 1);
        b.rule(
            Head::new(reach, [HeadTerm::var("y")]),
            [
                BodyItem::atom(reach, [Term::var("x")]),
                BodyItem::atom(e, [Term::var("x"), Term::var("y")]),
            ],
        );
        b.rule(
            Head::new(unreach, [HeadTerm::var("x")]),
            [
                BodyItem::atom(node, [Term::var("x")]),
                BodyItem::not(reach, [Term::var("x")]),
            ],
        );
        let prog = b.build().expect("valid");
        let strata = stratify(&prog).expect("stratifiable");
        assert_eq!(strata.rule_groups.len(), 2);
        assert_eq!(strata.rule_groups[0], vec![0]);
        assert_eq!(strata.rule_groups[1], vec![1]);
    }

    #[test]
    fn negative_cycle_is_rejected() {
        // A(x) :- N(x), !B(x).  B(x) :- N(x), !A(x).   (§3.5)
        let mut b = ProgramBuilder::new();
        let n = b.relation("N", 1);
        let a = b.relation("A", 1);
        let bb = b.relation("B", 1);
        b.rule(
            Head::new(a, [HeadTerm::var("x")]),
            [
                BodyItem::atom(n, [Term::var("x")]),
                BodyItem::not(bb, [Term::var("x")]),
            ],
        );
        b.rule(
            Head::new(bb, [HeadTerm::var("x")]),
            [
                BodyItem::atom(n, [Term::var("x")]),
                BodyItem::not(a, [Term::var("x")]),
            ],
        );
        let prog = b.build().expect("builds fine; stratification rejects");
        let err = stratify(&prog).expect_err("negative cycle");
        assert!(matches!(err, ProgramError::NotStratifiable { .. }));
    }

    #[test]
    fn double_negation_chain_gets_three_strata() {
        let mut b = ProgramBuilder::new();
        let n = b.relation("N", 1);
        let a = b.relation("A", 1);
        let c = b.relation("C", 1);
        let d = b.relation("D", 1);
        b.rule(
            Head::new(a, [HeadTerm::var("x")]),
            [BodyItem::atom(n, [Term::var("x")])],
        );
        b.rule(
            Head::new(c, [HeadTerm::var("x")]),
            [
                BodyItem::atom(n, [Term::var("x")]),
                BodyItem::not(a, [Term::var("x")]),
            ],
        );
        b.rule(
            Head::new(d, [HeadTerm::var("x")]),
            [
                BodyItem::atom(n, [Term::var("x")]),
                BodyItem::not(c, [Term::var("x")]),
            ],
        );
        let prog = b.build().expect("valid");
        let strata = stratify(&prog).expect("stratifiable");
        assert_eq!(strata.rule_groups.len(), 3);
    }
}
