//! Execution budgets and cooperative cancellation for the solver.
//!
//! §7 of the paper ("Safety") observes that a FLIX programmer "may
//! inadvertently violate one or more of the required properties" of a
//! lattice or function — and a lattice of unbounded height or a
//! non-monotone function turns the fixed-point iteration into an infinite
//! loop. A [`Budget`] bounds a solve by wall-clock time, database size,
//! gross derivations, or an external [`CancelToken`], so a production
//! caller can always get control back together with the partial solution
//! computed so far (see `SolveFailure` in the solver).

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for one [`crate::Solver::solve`] call.
///
/// All limits are off by default; compose them with the builder methods.
///
/// # Example
///
/// ```
/// use flix_core::{Budget, CancelToken};
/// use std::time::Duration;
///
/// let cancel = CancelToken::new();
/// let budget = Budget::new()
///     .deadline(Duration::from_millis(250))
///     .max_facts(1_000_000)
///     .max_derivations(10_000_000)
///     .cancel_token(cancel.clone());
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    pub(crate) deadline: Option<Duration>,
    pub(crate) max_facts: Option<u64>,
    pub(crate) max_derivations: Option<u64>,
    pub(crate) cancel: Option<CancelToken>,
}

impl Budget {
    /// An unlimited budget.
    pub fn new() -> Budget {
        Budget::default()
    }

    /// Bounds the wall-clock time of the solve. The deadline is checked
    /// at rule-evaluation granularity and periodically *within* long rule
    /// evaluations, so the solver returns shortly after the deadline even
    /// when a single rule produces a huge cross product.
    pub fn deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the total number of stored facts (tuples plus non-bottom
    /// lattice cells), checked once per fixed-point round.
    pub fn max_facts(mut self, limit: u64) -> Budget {
        self.max_facts = Some(limit);
        self
    }

    /// Bounds the gross number of derived head tuples (before
    /// deduplication), checked once per fixed-point round.
    pub fn max_derivations(mut self, limit: u64) -> Budget {
        self.max_derivations = Some(limit);
        self
    }

    /// Attaches a cooperative cancellation token; flipping the token from
    /// another thread stops the solve at the next budget check.
    pub fn cancel_token(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Returns `true` when no limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_facts.is_none()
            && self.max_derivations.is_none()
            && self.cancel.is_none()
    }
}

/// A shared flag for cooperatively cancelling a running solve.
///
/// Clone the token, hand one clone to [`Budget::cancel_token`], keep the
/// other, and call [`CancelToken::cancel`] from any thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Which budget limit stopped a solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline.
        configured: Duration,
    },
    /// The database grew past the fact limit.
    MaxFacts {
        /// The configured limit.
        limit: u64,
    },
    /// Rule evaluation produced more head tuples than allowed.
    MaxDerivations {
        /// The configured limit.
        limit: u64,
    },
    /// The [`CancelToken`] was flipped.
    Cancelled,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Deadline { configured } => {
                write!(f, "wall-clock budget of {configured:?} exceeded")
            }
            BudgetKind::MaxFacts { limit } => {
                write!(f, "fact budget of {limit} stored facts exceeded")
            }
            BudgetKind::MaxDerivations { limit } => {
                write!(f, "derivation budget of {limit} derived tuples exceeded")
            }
            BudgetKind::Cancelled => write!(f, "solve cancelled via CancelToken"),
        }
    }
}

/// Per-solve budget state: the budget plus the solve's start instant.
pub(crate) struct Guard<'a> {
    budget: &'a Budget,
    start: Instant,
}

impl<'a> Guard<'a> {
    pub(crate) fn new(budget: &'a Budget) -> Guard<'a> {
        Guard {
            budget,
            start: Instant::now(),
        }
    }

    /// Round-granularity check: every configured limit.
    pub(crate) fn exceeded(&self, facts_derived: u64, total_facts: u64) -> Option<BudgetKind> {
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                return Some(BudgetKind::Cancelled);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() > deadline {
                return Some(BudgetKind::Deadline {
                    configured: deadline,
                });
            }
        }
        if let Some(limit) = self.budget.max_facts {
            if total_facts > limit {
                return Some(BudgetKind::MaxFacts { limit });
            }
        }
        if let Some(limit) = self.budget.max_derivations {
            if facts_derived > limit {
                return Some(BudgetKind::MaxDerivations { limit });
            }
        }
        None
    }

    /// A per-thread guard for checks *inside* rule evaluation.
    pub(crate) fn eval_guard(&self) -> EvalGuard<'_> {
        self.eval_guard_scaled(1)
    }

    /// A per-thread guard whose amortised poll period is divided by the
    /// worker-thread count. Each parallel worker owns its own counter, so
    /// without scaling, `threads` workers would collectively let up to
    /// `PERIOD × threads` evaluation steps elapse between wall-clock
    /// checks — stretching the documented deadline-response bound.
    /// Dividing the period keeps the *aggregate* steps-between-checks
    /// constant regardless of thread count.
    pub(crate) fn eval_guard_scaled(&self, threads: usize) -> EvalGuard<'_> {
        EvalGuard {
            deadline: self.budget.deadline.map(|d| (self.start + d, d)),
            cancel: self.budget.cancel.as_ref().map(|t| &*t.0),
            counter: Cell::new(0),
            period: (EvalGuard::PERIOD / threads.max(1) as u32).max(1),
        }
    }
}

/// Deadline/cancellation checks cheap enough for the evaluation inner
/// loop: a counter amortises the `Instant::now` call.
pub(crate) struct EvalGuard<'a> {
    deadline: Option<(Instant, Duration)>,
    cancel: Option<&'a AtomicBool>,
    counter: Cell<u32>,
    /// How many `poll` calls elapse between real clock checks on *this*
    /// guard (the base [`EvalGuard::PERIOD`] divided by the worker count).
    period: u32,
}

impl EvalGuard<'_> {
    /// How many `poll` calls elapse between real clock checks across all
    /// workers of a solve combined.
    const PERIOD: u32 = 256;

    /// A guard that never trips (for evaluation outside a solve, e.g. the
    /// model checker).
    pub(crate) fn unlimited() -> EvalGuard<'static> {
        EvalGuard {
            deadline: None,
            cancel: None,
            counter: Cell::new(0),
            period: EvalGuard::PERIOD,
        }
    }

    /// Amortised check; call on every evaluation step.
    pub(crate) fn poll(&self) -> Result<(), BudgetKind> {
        if self.deadline.is_none() && self.cancel.is_none() {
            return Ok(());
        }
        let n = self.counter.get().wrapping_add(1);
        self.counter.set(n);
        if !n.is_multiple_of(self.period) {
            return Ok(());
        }
        self.check_now()
    }

    /// Unamortised check; call at task boundaries.
    pub(crate) fn check_now(&self) -> Result<(), BudgetKind> {
        if let Some(cancel) = self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(BudgetKind::Cancelled);
            }
        }
        if let Some((instant, configured)) = self.deadline {
            if Instant::now() > instant {
                return Err(BudgetKind::Deadline { configured });
            }
        }
        Ok(())
    }
}

/// Renders a caught panic payload for diagnostics.
pub(crate) fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::new();
        assert!(budget.is_unlimited());
        let guard = Guard::new(&budget);
        assert_eq!(guard.exceeded(u64::MAX, u64::MAX), None);
        assert!(guard.eval_guard().check_now().is_ok());
    }

    #[test]
    fn limits_trip_in_priority_order() {
        let budget = Budget::new().max_facts(10).max_derivations(20);
        let guard = Guard::new(&budget);
        assert_eq!(guard.exceeded(0, 0), None);
        assert_eq!(
            guard.exceeded(0, 11),
            Some(BudgetKind::MaxFacts { limit: 10 })
        );
        assert_eq!(
            guard.exceeded(21, 0),
            Some(BudgetKind::MaxDerivations { limit: 20 })
        );
    }

    #[test]
    fn deadline_trips_after_elapse() {
        let budget = Budget::new().deadline(Duration::from_millis(0));
        let guard = Guard::new(&budget);
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(
            guard.exceeded(0, 0),
            Some(BudgetKind::Deadline { .. })
        ));
        let eval = guard.eval_guard();
        assert!(eval.check_now().is_err());
        // poll trips within one period.
        let tripped = (0..=EvalGuard::PERIOD).any(|_| eval.poll().is_err());
        assert!(tripped);
    }

    #[test]
    fn scaled_guard_shrinks_the_poll_period() {
        let budget = Budget::new().deadline(Duration::from_millis(0));
        let guard = Guard::new(&budget);
        std::thread::sleep(Duration::from_millis(2));
        // With 8 workers the per-worker period is 256 / 8 = 32 polls, so
        // the deadline is observed within 32 steps instead of 256.
        let eval = guard.eval_guard_scaled(8);
        let tripped = (0..32).any(|_| eval.poll().is_err());
        assert!(tripped);
        // Extreme thread counts clamp to a period of 1, never 0.
        let eval = guard.eval_guard_scaled(100_000);
        assert!(eval.poll().is_err());
    }

    #[test]
    fn payload_rendering() {
        assert_eq!(panic_payload(Box::new("boom")), "boom");
        assert_eq!(panic_payload(Box::new(String::from("ow"))), "ow");
        assert_eq!(panic_payload(Box::new(17u32)), "non-string panic payload");
    }
}
