//! Runtime lattice operations over dynamic [`Value`]s.

use crate::guard::panic_payload;
use crate::Value;
use flix_lattice::{
    Constant, Flat, Interval, Lattice, MinCost, Parity, PowerSet, Sign, SuLattice, Transformer,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A panic caught inside a user-supplied lattice operation or function.
///
/// The solver isolates every invocation of user code with
/// `catch_unwind`, so a buggy `leq`/`lub`/`glb` (or a transfer function
/// that indexes out of bounds) surfaces as a structured solve error with
/// the offending function named, instead of tearing down the process.
#[derive(Clone, Debug)]
pub(crate) struct OpsPanic {
    /// Qualified function name, e.g. `Parity.lub`.
    pub(crate) function: String,
    /// The rendered panic payload.
    pub(crate) payload: String,
}

/// Shared closure type for the components of a [`LatticeOps`].
type BinOp = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;
type BinPred = Arc<dyn Fn(&Value, &Value) -> bool + Send + Sync>;

/// The runtime representation of a lattice over dynamic [`Value`]s.
///
/// This is the engine-level counterpart of the paper's `let Parity<> =
/// (Parity.Bot, Parity.Top, leq, lub, glb)` lattice association (Figure 2,
/// lines 28–29): a bottom element, an optional top element, and the three
/// operations as shared closures. A `lat` predicate declaration carries one
/// of these.
///
/// Construct it either from a statically typed lattice via
/// [`LatticeOps::of`] (using the [`ValueLattice`] embedding) or from raw
/// closures via [`LatticeOps::from_fns`] (used by the surface-language
/// compiler, whose `leq`/`lub`/`glb` are interpreted user code).
///
/// # Example
///
/// ```
/// use flix_core::{LatticeOps, Value, ValueLattice};
/// use flix_lattice::Parity;
///
/// let ops = LatticeOps::of::<Parity>();
/// let even = Parity::Even.to_value();
/// let odd = Parity::Odd.to_value();
/// assert_eq!(ops.lub(&even, &odd), Parity::Top.to_value());
/// ```
#[derive(Clone)]
pub struct LatticeOps {
    name: Arc<str>,
    bot: Value,
    top: Option<Value>,
    leq: BinPred,
    lub: BinOp,
    glb: BinOp,
}

impl LatticeOps {
    /// Builds the runtime operations for a statically typed lattice `L`.
    pub fn of<L: ValueLattice>() -> LatticeOps {
        LatticeOps {
            name: L::lattice_name().into(),
            bot: L::bottom().to_value(),
            top: L::top_value(),
            leq: Arc::new(|a, b| {
                let (a, b) = (L::expect_from(a), L::expect_from(b));
                a.leq(&b)
            }),
            lub: Arc::new(|a, b| {
                let (x, y) = (L::expect_from(a), L::expect_from(b));
                let j = x.lub(&y);
                // When the join equals one operand — always, for
                // chain-shaped lattices like `MinCost` — reuse its boxed
                // form instead of re-boxing through `to_value`. On the
                // solver's hot path this skips an allocation per join.
                if j == y {
                    return b.clone();
                }
                if j == x {
                    return a.clone();
                }
                j.to_value()
            }),
            glb: Arc::new(|a, b| {
                let (x, y) = (L::expect_from(a), L::expect_from(b));
                let m = x.glb(&y);
                if m == y {
                    return b.clone();
                }
                if m == x {
                    return a.clone();
                }
                m.to_value()
            }),
        }
    }

    /// Builds runtime operations from raw closures.
    ///
    /// The closures must implement a complete lattice on the subset of
    /// [`Value`]s they are applied to; otherwise the meaning of any program
    /// using them is undefined (paper §2.2: "the definition assumes that
    /// the supplied functions satisfy the properties of a complete
    /// lattice").
    pub fn from_fns(
        name: impl Into<Arc<str>>,
        bot: Value,
        top: Option<Value>,
        leq: impl Fn(&Value, &Value) -> bool + Send + Sync + 'static,
        lub: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
        glb: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
    ) -> LatticeOps {
        LatticeOps {
            name: name.into(),
            bot,
            top,
            leq: Arc::new(leq),
            lub: Arc::new(lub),
            glb: Arc::new(glb),
        }
    }

    /// The human-readable lattice name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bottom element.
    pub fn bottom(&self) -> &Value {
        &self.bot
    }

    /// The top element, if representable.
    pub fn top(&self) -> Option<&Value> {
        self.top.as_ref()
    }

    /// The partial order.
    pub fn leq(&self, a: &Value, b: &Value) -> bool {
        (self.leq)(a, b)
    }

    /// The least upper bound.
    pub fn lub(&self, a: &Value, b: &Value) -> Value {
        (self.lub)(a, b)
    }

    /// The greatest lower bound.
    pub fn glb(&self, a: &Value, b: &Value) -> Value {
        (self.glb)(a, b)
    }

    /// Returns `true` if `v` is the bottom element.
    pub fn is_bottom(&self, v: &Value) -> bool {
        *v == self.bot
    }

    /// [`LatticeOps::leq`] with panic isolation: a panic in the user
    /// closure is caught and reported as a structured [`OpsPanic`].
    pub(crate) fn try_leq(&self, a: &Value, b: &Value) -> Result<bool, OpsPanic> {
        catch_unwind(AssertUnwindSafe(|| (self.leq)(a, b))).map_err(|p| self.ops_panic("leq", p))
    }

    /// [`LatticeOps::lub`] with panic isolation.
    pub(crate) fn try_lub(&self, a: &Value, b: &Value) -> Result<Value, OpsPanic> {
        catch_unwind(AssertUnwindSafe(|| (self.lub)(a, b))).map_err(|p| self.ops_panic("lub", p))
    }

    /// [`LatticeOps::glb`] with panic isolation.
    pub(crate) fn try_glb(&self, a: &Value, b: &Value) -> Result<Value, OpsPanic> {
        catch_unwind(AssertUnwindSafe(|| (self.glb)(a, b))).map_err(|p| self.ops_panic("glb", p))
    }

    fn ops_panic(&self, op: &str, payload: Box<dyn std::any::Any + Send>) -> OpsPanic {
        OpsPanic {
            function: format!("{}.{op}", self.name),
            payload: panic_payload(payload),
        }
    }
}

impl fmt::Debug for LatticeOps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatticeOps")
            .field("name", &self.name)
            .field("bot", &self.bot)
            .field("top", &self.top)
            .finish_non_exhaustive()
    }
}

/// A lattice whose elements embed into the engine's dynamic [`Value`]s.
///
/// Implemented here for every lattice shipped by
/// [`flix_lattice`]; implement it for your own lattice types to use them
/// in `lat` predicates.
pub trait ValueLattice: Lattice {
    /// A human-readable name for diagnostics.
    fn lattice_name() -> &'static str;

    /// Encodes this element as a [`Value`].
    fn to_value(&self) -> Value;

    /// Decodes an element from a [`Value`], if well-formed.
    fn from_value(v: &Value) -> Option<Self>;

    /// The top element as a value, when the lattice has one.
    fn top_value() -> Option<Value> {
        None
    }

    /// Decodes a value, panicking on malformed input.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid encoding of an element of this
    /// lattice — which indicates a type error in the program, i.e. a bug
    /// in the caller, not recoverable data.
    fn expect_from(v: &Value) -> Self {
        match Self::from_value(v) {
            Some(e) => e,
            None => panic!(
                "value {v} is not an element of the {} lattice",
                Self::lattice_name()
            ),
        }
    }
}

impl ValueLattice for Parity {
    fn lattice_name() -> &'static str {
        "Parity"
    }

    fn to_value(&self) -> Value {
        match self {
            Parity::Bot => Value::tag0("Bot"),
            Parity::Even => Value::tag0("Even"),
            Parity::Odd => Value::tag0("Odd"),
            Parity::Top => Value::tag0("Top"),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "Bot" => Some(Parity::Bot),
            "Even" => Some(Parity::Even),
            "Odd" => Some(Parity::Odd),
            "Top" => Some(Parity::Top),
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        Some(Parity::Top.to_value())
    }
}

impl ValueLattice for Sign {
    fn lattice_name() -> &'static str {
        "Sign"
    }

    fn to_value(&self) -> Value {
        match self {
            Sign::Bot => Value::tag0("Bot"),
            Sign::Neg => Value::tag0("Neg"),
            Sign::Zer => Value::tag0("Zer"),
            Sign::Pos => Value::tag0("Pos"),
            Sign::Top => Value::tag0("Top"),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "Bot" => Some(Sign::Bot),
            "Neg" => Some(Sign::Neg),
            "Zer" => Some(Sign::Zer),
            "Pos" => Some(Sign::Pos),
            "Top" => Some(Sign::Top),
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        Some(Sign::Top.to_value())
    }
}

impl ValueLattice for Constant {
    fn lattice_name() -> &'static str {
        "Constant"
    }

    fn to_value(&self) -> Value {
        match self {
            Flat::Bot => Value::tag0("Bot"),
            Flat::Val(n) => Value::tag("Cst", Value::Int(*n)),
            Flat::Top => Value::tag0("Top"),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "Bot" => Some(Flat::Bot),
            "Top" => Some(Flat::Top),
            "Cst" => Some(Flat::Val(v.tag_payload()?.as_int()?)),
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        Some(Flat::Top.to_value())
    }
}

impl ValueLattice for Interval {
    fn lattice_name() -> &'static str {
        "Interval"
    }

    fn to_value(&self) -> Value {
        match self.bounds() {
            None => Value::tag0("Bot"),
            Some((lo, hi)) => Value::tag("Range", Value::tuple([Value::Int(lo), Value::Int(hi)])),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "Bot" => Some(Interval::Bot),
            "Range" => {
                let items = v.tag_payload()?.as_tuple()?;
                match items {
                    [lo, hi] => Some(Interval::of(lo.as_int()?, hi.as_int()?)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        use flix_lattice::HasTop;
        Some(Interval::top().to_value())
    }
}

impl ValueLattice for MinCost {
    fn lattice_name() -> &'static str {
        "MinCost"
    }

    fn to_value(&self) -> Value {
        match self.value() {
            None => Value::tag0("Inf"),
            Some(c) => Value::tag("Fin", Value::Int(c as i64)),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "Inf" => Some(MinCost::INFINITY),
            "Fin" => Some(MinCost::finite(v.tag_payload()?.as_int()?.try_into().ok()?)),
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        Some(MinCost::finite(0).to_value())
    }
}

impl ValueLattice for SuLattice {
    fn lattice_name() -> &'static str {
        "SULattice"
    }

    fn to_value(&self) -> Value {
        match self {
            SuLattice::Bottom => Value::tag0("Bottom"),
            SuLattice::Single(p) => Value::tag("Single", Value::Str(p.clone())),
            SuLattice::Top => Value::tag0("Top"),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "Bottom" => Some(SuLattice::Bottom),
            "Top" => Some(SuLattice::Top),
            "Single" => match v.tag_payload()? {
                Value::Str(s) => Some(SuLattice::Single(s.clone())),
                _ => None,
            },
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        Some(SuLattice::Top.to_value())
    }
}

impl ValueLattice for Transformer {
    fn lattice_name() -> &'static str {
        "Transformer"
    }

    fn to_value(&self) -> Value {
        match self {
            Transformer::Bot => Value::tag0("BotTransformer"),
            Transformer::NonBot { a, b, c } => Value::tag(
                "NonBotTransformer",
                Value::tuple([Value::Int(*a), Value::Int(*b), c.to_value()]),
            ),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "BotTransformer" => Some(Transformer::Bot),
            "NonBotTransformer" => {
                let items = v.tag_payload()?.as_tuple()?;
                match items {
                    [a, b, c] => Some(Transformer::non_bot(
                        a.as_int()?,
                        b.as_int()?,
                        Constant::from_value(c)?,
                    )),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        Some(Transformer::top_transformer().to_value())
    }
}

impl ValueLattice for PowerSet<Value> {
    fn lattice_name() -> &'static str {
        "PowerSet"
    }

    fn to_value(&self) -> Value {
        match self {
            PowerSet::Empty => Value::tag("Fin", Value::set([])),
            PowerSet::Set(s) => Value::tag("Fin", Value::set(s.iter().cloned())),
            PowerSet::Univ => Value::tag0("Univ"),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.tag_name()? {
            "Univ" => Some(PowerSet::Univ),
            "Fin" => {
                let set = v.tag_payload()?.as_set()?;
                Some(set.iter().cloned().collect())
            }
            _ => None,
        }
    }

    fn top_value() -> Option<Value> {
        Some(PowerSet::Univ.to_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<L: ValueLattice>(elems: impl IntoIterator<Item = L>) {
        for e in elems {
            let v = e.to_value();
            assert_eq!(L::from_value(&v), Some(e), "roundtrip of {v}");
        }
    }

    #[test]
    fn roundtrips() {
        use flix_lattice::FiniteLattice;
        roundtrip(Parity::elements());
        roundtrip(Sign::elements());
        roundtrip([Flat::Bot, Constant::cst(-7), Flat::Top]);
        roundtrip([Interval::Bot, Interval::of(-3, 9)]);
        roundtrip([MinCost::INFINITY, MinCost::finite(42)]);
        roundtrip([SuLattice::Bottom, SuLattice::single("p"), SuLattice::Top]);
        roundtrip([
            Transformer::Bot,
            Transformer::identity(),
            Transformer::top_transformer(),
            Transformer::non_bot(2, 3, Constant::cst(4)),
        ]);
        roundtrip([
            PowerSet::<Value>::Empty,
            PowerSet::singleton(Value::from(1)),
            PowerSet::Univ,
        ]);
    }

    #[test]
    fn ops_agree_with_static_lattice() {
        let ops = LatticeOps::of::<Parity>();
        for a in [Parity::Bot, Parity::Even, Parity::Odd, Parity::Top] {
            for b in [Parity::Bot, Parity::Even, Parity::Odd, Parity::Top] {
                assert_eq!(ops.leq(&a.to_value(), &b.to_value()), a.leq(&b));
                assert_eq!(ops.lub(&a.to_value(), &b.to_value()), a.lub(&b).to_value());
                assert_eq!(ops.glb(&a.to_value(), &b.to_value()), a.glb(&b).to_value());
            }
        }
        assert!(ops.is_bottom(&Parity::Bot.to_value()));
        assert_eq!(ops.top(), Some(&Parity::Top.to_value()));
        assert_eq!(ops.name(), "Parity");
    }

    #[test]
    #[should_panic(expected = "not an element")]
    fn malformed_value_panics() {
        let _ = Parity::expect_from(&Value::Int(3));
    }

    #[test]
    fn from_fns_constructor() {
        // A tiny two-point lattice over raw booleans.
        let ops = LatticeOps::from_fns(
            "Bool",
            Value::Bool(false),
            Some(Value::Bool(true)),
            |a, b| !a.is_true() || b.is_true(),
            |a, b| Value::Bool(a.is_true() || b.is_true()),
            |a, b| Value::Bool(a.is_true() && b.is_true()),
        );
        assert!(ops.leq(&Value::Bool(false), &Value::Bool(true)));
        assert_eq!(
            ops.lub(&Value::Bool(false), &Value::Bool(true)),
            Value::Bool(true)
        );
        assert!(format!("{ops:?}").contains("Bool"));
    }
}
