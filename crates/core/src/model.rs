//! Model-theoretic validation of solver output (§3.1–§3.2 of the paper).
//!
//! The declarative semantics of FLIX defines *what* the solution is — the
//! minimal compact model — independently of any evaluation strategy. This
//! module checks a computed [`Solution`] against that definition:
//!
//! * [`model_violation`] verifies the model property `T_P(I) ⊑ I`: every
//!   rule instance satisfied by the interpretation must have a true head
//!   (for lattice predicates, true means *subsumed*: the derived element is
//!   `⊑` the stored cell value, per §3.2 step 5);
//! * [`is_locally_minimal`] verifies minimality in the paper's model order
//!   `⊑M` (§3.2 step 6) against one-step reductions: removing any derived
//!   tuple, or decreasing any lattice cell to any smaller candidate value,
//!   must break the model property.
//!
//! Together these give the cross-validation used by the test suite: the
//! naïve and semi-naïve solvers must both land on a compact model that is
//! locally minimal. (Compactness itself is enforced structurally: the
//! database stores exactly one value per cell.)

use crate::database::{Database, PredData};
use crate::program::Program;
use crate::solver::{eval_rule, Solution};
use crate::{PredId, Value};
use std::collections::HashSet;

/// Returns the first rule-head fact that the interpretation fails to
/// satisfy, or `None` when the solution is a model of the program.
///
/// The result carries the predicate name and the violating head tuple.
pub fn model_violation(program: &Program, solution: &Solution) -> Option<(String, Vec<Value>)> {
    violation_against(program, solution.database())
}

/// Returns `true` when the solution is a model of the program.
pub fn is_model(program: &Program, solution: &Solution) -> bool {
    model_violation(program, solution).is_none()
}

fn violation_against(program: &Program, db: &Database) -> Option<(String, Vec<Value>)> {
    // The explicit facts must be satisfied (they are rules with empty
    // bodies).
    for (pred, values) in &program.facts {
        if !satisfied(program, db, *pred, values) {
            return Some((program.decl(*pred).name().to_string(), values.clone()));
        }
    }
    // Every rule-derivable head must be satisfied: T_P(I) ⊑ I.
    let mut derived = Vec::new();
    for rule in &program.rules {
        eval_rule(program, db, rule, None, &[], &mut derived);
    }
    for (pred, tuple) in derived {
        if !satisfied(program, db, pred, &tuple) {
            return Some((program.decl(pred).name().to_string(), tuple));
        }
    }
    None
}

/// Is the ground atom `pred(values...)` true in the interpretation?
fn satisfied(program: &Program, db: &Database, pred: PredId, values: &[Value]) -> bool {
    match db.pred(pred) {
        PredData::Rel(rel) => rel.contains(values, db.spill()),
        PredData::Lat(lat) => {
            let (key, value) = values.split_at(values.len() - 1);
            let ops = program.decl(pred).lattice_ops().expect("lattice predicate");
            if ops.is_bottom(&value[0]) {
                return true; // ⊥ is below every cell, stored or not.
            }
            match lat.value(key, db.spill()) {
                Some(cell) => ops.leq(&value[0], cell),
                None => false,
            }
        }
    }
}

/// Checks that the solution is a model and that no single-step reduction
/// of it is still a model — removing any non-fact relational tuple, or
/// lowering any lattice cell to a strictly smaller candidate.
///
/// Candidate replacement values for a cell are the other values stored in
/// the same lattice predicate, their pairwise greatest lower bounds with
/// the cell value, and `⊥` (dropping the cell). This is a *local*
/// minimality check: it cannot rule out a smaller model that differs in
/// many cells at once, but the least fixed point is below every model, so
/// any failure here proves the solver over-approximated.
///
/// Intended for small cross-validation programs; it re-runs the model
/// check once per stored fact and candidate.
pub fn is_locally_minimal(program: &Program, solution: &Solution) -> bool {
    let db = solution.database();
    if violation_against(program, db).is_some() {
        return false;
    }
    let explicit: HashSet<(PredId, Vec<Value>)> =
        program.facts.iter().map(|(p, v)| (*p, v.clone())).collect();

    // Enumerate the current contents through the solution's unified
    // fact view.
    let mut rel_tuples: Vec<(PredId, Vec<Value>)> = Vec::new();
    let mut lat_cells: Vec<(PredId, Vec<Value>, Value)> = Vec::new();
    for (pred, decl) in program.predicates() {
        let facts = solution.facts(decl.name()).expect("declared predicate");
        for fact in facts {
            match fact {
                crate::solver::Fact::Row(row) => rel_tuples.push((pred, row.to_vec())),
                crate::solver::Fact::Cell(key, cell) => {
                    lat_cells.push((pred, key.to_vec(), cell.clone()))
                }
            }
        }
    }

    // Try removing each non-fact relational tuple.
    for (pred, tuple) in &rel_tuples {
        if explicit.contains(&(*pred, tuple.clone())) {
            continue;
        }
        let reduced = rebuild_without(program, db, Some((*pred, tuple)), None);
        if violation_against(program, &reduced).is_none() {
            return false; // a strictly smaller model exists
        }
    }

    // Try lowering each lattice cell.
    for (pred, key, cell) in &lat_cells {
        let ops = program.decl(*pred).lattice_ops().expect("lattice");
        let mut candidates: Vec<Value> = vec![ops.bottom().clone()];
        if let PredData::Lat(lat) = db.pred(*pred) {
            for (_, other) in lat.iter() {
                candidates.push(other.clone());
                candidates.push(ops.glb(other, cell));
            }
        }
        // Values asserted by facts are candidate cell values too: the
        // stored cell may strictly dominate every fact it absorbed.
        for (fact_pred, values) in &program.facts {
            if fact_pred == pred {
                let v = values.last().expect("lattice arity >= 1");
                candidates.push(v.clone());
                candidates.push(ops.glb(v, cell));
            }
        }
        candidates.sort();
        candidates.dedup();
        for cand in candidates {
            let strictly_smaller = ops.leq(&cand, cell) && cand != *cell;
            if !strictly_smaller {
                continue;
            }
            let reduced = rebuild_without(program, db, None, Some((*pred, key.as_slice(), &cand)));
            if violation_against(program, &reduced).is_none() {
                return false;
            }
        }
    }
    true
}

/// Copies `db`, optionally skipping one relational tuple and optionally
/// replacing one lattice cell with a smaller value (`⊥` drops the cell).
fn rebuild_without(
    program: &Program,
    db: &Database,
    skip_rel: Option<(PredId, &Vec<Value>)>,
    replace_lat: Option<(PredId, &[Value], &Value)>,
) -> Database {
    let mut out = Database::for_program(program, false);
    for i in 0..program.num_predicates() {
        let pred = PredId(i as u32);
        match db.pred(pred) {
            PredData::Rel(rel) => {
                for row in rel.rows() {
                    if let Some((p, t)) = skip_rel {
                        if p == pred && t.as_slice() == row {
                            continue;
                        }
                    }
                    let _ = out.insert(pred, row.to_vec());
                }
            }
            PredData::Lat(lat) => {
                for (key, cell) in lat.iter() {
                    let mut tuple = key.to_vec();
                    let value = match replace_lat {
                        Some((p, k, v)) if p == pred && k == key => v.clone(),
                        _ => cell.clone(),
                    };
                    tuple.push(value);
                    // ⊥ replacements are intentionally dropped; the model
                    // checker assumes sound lattice ops, so insertion
                    // faults cannot occur here.
                    let _ = out.insert(pred, tuple);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BodyItem, Head, HeadTerm, LatticeOps, ProgramBuilder, Solver, Term, ValueLattice};
    use flix_lattice::Parity;

    fn parity(p: Parity) -> Value {
        p.to_value()
    }

    /// The worked example of §3.2: facts A(Even), A(Odd), B(Odd); the
    /// minimal compact model is {A(⊤), B(Odd)}.
    fn example_program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
        let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
        b.fact(a, vec![parity(Parity::Even)]);
        b.fact(a, vec![parity(Parity::Odd)]);
        b.fact(bb, vec![parity(Parity::Odd)]);
        b.build().expect("valid")
    }

    #[test]
    fn solver_output_is_model_and_minimal() {
        let prog = example_program();
        let solution = Solver::new().solve(&prog).expect("solves");
        assert_eq!(solution.lattice_value("A", &[]), Some(parity(Parity::Top)));
        assert_eq!(solution.lattice_value("B", &[]), Some(parity(Parity::Odd)));
        assert!(is_model(&prog, &solution));
        assert!(is_locally_minimal(&prog, &solution));
    }

    #[test]
    fn lub_and_glb_examples_from_section_3_2() {
        // R(x) :- A(x). R(x) :- B(x). with A(Odd), B(Even) gives R(⊤).
        let mut b = ProgramBuilder::new();
        let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
        let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
        let r = b.lattice("R", 1, LatticeOps::of::<Parity>());
        b.fact(a, vec![parity(Parity::Odd)]);
        b.fact(bb, vec![parity(Parity::Even)]);
        b.rule(
            Head::new(r, [HeadTerm::var("x")]),
            [BodyItem::atom(a, [Term::var("x")])],
        );
        b.rule(
            Head::new(r, [HeadTerm::var("x")]),
            [BodyItem::atom(bb, [Term::var("x")])],
        );
        let prog = b.build().expect("valid");
        let solution = Solver::new().solve(&prog).expect("solves");
        assert_eq!(solution.lattice_value("R", &[]), Some(parity(Parity::Top)));
        assert!(is_model(&prog, &solution));
        assert!(is_locally_minimal(&prog, &solution));

        // R(x) :- A(x), B(x). gives R(⊥), i.e. no stored cell.
        let mut b = ProgramBuilder::new();
        let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
        let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
        let r = b.lattice("R", 1, LatticeOps::of::<Parity>());
        b.fact(a, vec![parity(Parity::Odd)]);
        b.fact(bb, vec![parity(Parity::Even)]);
        b.rule(
            Head::new(r, [HeadTerm::var("x")]),
            [
                BodyItem::atom(a, [Term::var("x")]),
                BodyItem::atom(bb, [Term::var("x")]),
            ],
        );
        let prog = b.build().expect("valid");
        let solution = Solver::new().solve(&prog).expect("solves");
        assert_eq!(solution.lattice_value("R", &[]), Some(parity(Parity::Bot)));
        assert_eq!(solution.len("R"), Some(0));
        assert!(is_model(&prog, &solution));
    }

    #[test]
    fn non_minimal_interpretation_is_detected() {
        // Inflate the solution of the example program by asserting B(⊤)
        // as an extra fact in a copy of the program used only to build the
        // inflated database, then check minimality against the original.
        let prog = example_program();
        let mut b = ProgramBuilder::new();
        let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
        let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
        b.fact(a, vec![parity(Parity::Even)]);
        b.fact(a, vec![parity(Parity::Odd)]);
        b.fact(bb, vec![parity(Parity::Top)]); // inflated
        let inflated_prog = b.build().expect("valid");
        let inflated = Solver::new().solve(&inflated_prog).expect("solves");
        // Still a model of the original program (B(Odd) ⊑ B(⊤))...
        assert!(is_model(&prog, &inflated));
        // ...but not minimal.
        assert!(!is_locally_minimal(&prog, &inflated));
    }
}
