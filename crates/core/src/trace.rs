//! Execution tracing and lattice-ascent diagnostics.
//!
//! Two instruments live here, both off by default and free on the hot
//! path when disabled:
//!
//! * **Span tracing** ([`TraceConfig`], [`ExecutionTrace`]): the solver
//!   records hierarchical spans — solve → stratum → round → rule-eval,
//!   plus resume-seeding and demand-rewrite phases — into bounded
//!   per-worker ring buffers (drop-oldest, with a [`dropped_events`]
//!   counter) that are merged when the solve ends. The merged trace
//!   exports as Chrome trace-event JSON ([`ExecutionTrace::to_chrome_json`],
//!   loadable in Perfetto or `chrome://tracing`, one track per worker
//!   thread) or as folded-stack flamegraph text
//!   ([`ExecutionTrace::to_folded`], consumable by `flamegraph.pl` or
//!   `inferno`).
//! * **Ascent telemetry** ([`AscentConfig`], [`AscentReport`]): the
//!   database counts, per lattice cell, how many joins it absorbed and
//!   how many times it *strictly* increased — its height in the
//!   ascending chain. §3.2 and §7 of the paper make termination depend
//!   exactly on those chains being finite, so a cell climbing past a
//!   configured threshold is the practical smoke test for an
//!   infinite-ascent lattice (Interval without widening); the solver
//!   reports it as a non-fatal [`AscentWarning`] through the
//!   [`crate::Observer`] and the final heights aggregate into an
//!   [`AscentReport`] (chain-height histogram, top-K hottest cells,
//!   per-lattice-type maxima).
//!
//! [`dropped_events`]: ExecutionTrace::dropped_events

use crate::value::Value;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for the execution tracer, attached with
/// [`crate::Solver::trace`].
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Maximum events retained per worker track. When a track overflows,
    /// the *oldest* events are dropped and counted in
    /// [`ExecutionTrace::dropped_events`].
    pub buffer_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            buffer_capacity: 1 << 16,
        }
    }
}

/// What a traced span covered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole solve (or resume, or query), coordinator track.
    Solve,
    /// Loading the program's ground facts into the database.
    LoadFacts,
    /// `resume`: applying the delta and seeding the warm-start worklist.
    ResumeSeed,
    /// `solve_query`: running the magic-set rewrite and re-stratifying.
    DemandRewrite,
    /// One stratum of the fixed-point computation.
    Stratum {
        /// The stratum index (0-based, evaluation order).
        stratum: usize,
    },
    /// One fixed-point round within a stratum.
    Round {
        /// The enclosing stratum.
        stratum: usize,
        /// The global round number (1-based, counting across strata).
        round: u64,
    },
    /// One rule evaluation (one delta variant, or a full evaluation).
    RuleEval {
        /// The enclosing stratum.
        stratum: usize,
        /// The enclosing global round number.
        round: u64,
        /// The rule index within the program.
        rule: usize,
        /// The semi-naïve delta variant, or `None` for a full evaluation.
        variant: Option<usize>,
        /// Head tuples produced by this evaluation.
        derived: u64,
    },
}

/// One recorded span: a [`SpanKind`] with its track and timing.
///
/// Timestamps are nanoseconds since the solve started (`start_ns`), so
/// every event in one [`ExecutionTrace`] shares a single clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the span covered.
    pub kind: SpanKind,
    /// The track: 0 is the coordinator thread, 1..=N are worker slots.
    pub tid: u32,
    /// Span start, nanoseconds since the solve began.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// A bounded drop-oldest event buffer: one per worker track.
#[derive(Debug)]
pub(crate) struct Ring {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Ring {
        Ring {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends one event, dropping the oldest if the ring is full.
    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Folds another ring (a per-round worker buffer) into this track,
    /// preserving the capacity bound.
    fn absorb(&mut self, other: Ring) {
        self.dropped += other.dropped;
        for event in other.events {
            self.push(event);
        }
    }
}

struct TracerInner {
    epoch: Instant,
    capacity: usize,
    /// One ring per track (`tid`), grown on first use.
    slots: Mutex<Vec<Ring>>,
}

/// The per-solve recording context, threaded by reference through every
/// execution path. All methods are no-ops when tracing is disabled, so
/// the hot path pays one `Option` discriminant test at span boundaries
/// and nothing per fact.
pub(crate) struct Tracer {
    inner: Option<TracerInner>,
}

impl Tracer {
    /// A tracer for one solve; records only if `config` is present.
    pub(crate) fn new(config: Option<&TraceConfig>) -> Tracer {
        Tracer {
            inner: config.map(|c| TracerInner {
                epoch: Instant::now(),
                capacity: c.buffer_capacity,
                slots: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Nanoseconds since the solve began (0 when disabled).
    pub(crate) fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Converts an already-taken [`Instant`] to trace time.
    pub(crate) fn at_ns(&self, at: Instant) -> u64 {
        match &self.inner {
            Some(inner) => at
                .checked_duration_since(inner.epoch)
                .map_or(0, |d| d.as_nanos() as u64),
            None => 0,
        }
    }

    /// A fresh local ring for a worker to record into without
    /// synchronisation; merge it back with [`Tracer::merge`]. `None`
    /// when tracing is disabled, so workers skip recording entirely.
    pub(crate) fn local_ring(&self) -> Option<Ring> {
        self.inner.as_ref().map(|inner| Ring::new(inner.capacity))
    }

    /// Folds a worker's local ring into its track.
    pub(crate) fn merge(&self, tid: u32, ring: Option<Ring>) {
        let (Some(inner), Some(ring)) = (&self.inner, ring) else {
            return;
        };
        let mut slots = inner.slots.lock().expect("tracer slots");
        let idx = tid as usize;
        while slots.len() <= idx {
            let capacity = inner.capacity;
            slots.push(Ring::new(capacity));
        }
        slots[idx].absorb(ring);
    }

    /// Records one span on a track directly (coordinator-side spans).
    pub(crate) fn record(&self, tid: u32, kind: SpanKind, start_ns: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let dur_ns = inner.epoch.elapsed().as_nanos() as u64 - start_ns;
        let mut slots = inner.slots.lock().expect("tracer slots");
        let idx = tid as usize;
        while slots.len() <= idx {
            let capacity = inner.capacity;
            slots.push(Ring::new(capacity));
        }
        slots[idx].push(TraceEvent {
            kind,
            tid,
            start_ns,
            dur_ns,
        });
    }

    /// Merges every track into the final [`ExecutionTrace`].
    /// `rule_heads[r]` names rule `r`'s head predicate for rendering.
    pub(crate) fn finish(&self, rule_heads: Vec<String>) -> Option<ExecutionTrace> {
        let inner = self.inner.as_ref()?;
        let mut slots = inner.slots.lock().expect("tracer slots");
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut workers = 0u32;
        for ring in slots.drain(..) {
            dropped += ring.dropped;
            for event in &ring.events {
                workers = workers.max(event.tid);
            }
            events.extend(ring.events);
        }
        // Parents before children: earlier start first, longer span first
        // on ties.
        events.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.dur_ns.cmp(&a.dur_ns))
                .then(a.tid.cmp(&b.tid))
        });
        Some(ExecutionTrace {
            events,
            dropped_events: dropped,
            workers,
            rule_heads,
        })
    }
}

/// The merged spans of one solve, held by [`crate::Solution::trace`].
#[derive(Clone, Debug)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    dropped_events: u64,
    workers: u32,
    rule_heads: Vec<String>,
}

impl ExecutionTrace {
    /// The recorded spans, sorted by start time (parents before
    /// children).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events lost to ring-buffer overflow across all tracks.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// The highest worker track that recorded an event (0 when only the
    /// coordinator track recorded; worker tracks are 1-based).
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Rewrites rule indices through `origin` (rewritten rule → original
    /// rule) and replaces the head names — how `solve_query` collapses
    /// demand-internal spans onto the user's rules.
    pub(crate) fn remap_rules(&mut self, origin: &[usize], rule_heads: Vec<String>) {
        for event in &mut self.events {
            if let SpanKind::RuleEval { rule, .. } = &mut event.kind {
                if let Some(&orig) = origin.get(*rule) {
                    *rule = orig;
                }
            }
        }
        self.rule_heads = rule_heads;
    }

    fn span_name(&self, kind: &SpanKind) -> String {
        match kind {
            SpanKind::Solve => "solve".to_string(),
            SpanKind::LoadFacts => "load facts".to_string(),
            SpanKind::ResumeSeed => "resume seed".to_string(),
            SpanKind::DemandRewrite => "demand rewrite".to_string(),
            SpanKind::Stratum { stratum } => format!("stratum {stratum}"),
            SpanKind::Round { round, .. } => format!("round {round}"),
            SpanKind::RuleEval { rule, .. } => {
                let head = self
                    .rule_heads
                    .get(*rule)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("#{rule} {head}")
            }
        }
    }

    /// Renders the trace as Chrome trace-event JSON (the "JSON Array
    /// Format" with a `traceEvents` wrapper): one complete (`ph:"X"`)
    /// event per span, timestamps in microseconds, one `tid` per worker
    /// track plus metadata (`ph:"M"`) events naming the tracks. Load the
    /// output in Perfetto or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
        let _ = writeln!(out, "  \"droppedEvents\": {},", self.dropped_events);
        out.push_str("  \"traceEvents\": [");
        let mut first = true;
        let mut emit = |out: &mut String, body: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            out.push_str(body);
        };
        emit(
            &mut out,
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
             \"args\": {\"name\": \"flix solve\"}}",
        );
        for tid in 0..=self.workers {
            let label = if tid == 0 {
                "coordinator".to_string()
            } else {
                format!("worker {tid}")
            };
            emit(
                &mut out,
                &format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"name\": \"{label}\"}}}}"
                ),
            );
        }
        for event in &self.events {
            let mut body = String::new();
            body.push_str("{\"name\": ");
            crate::observe::push_json_string(&mut body, &self.span_name(&event.kind));
            let cat = match &event.kind {
                SpanKind::Solve => "solve",
                SpanKind::LoadFacts | SpanKind::ResumeSeed | SpanKind::DemandRewrite => "phase",
                SpanKind::Stratum { .. } => "stratum",
                SpanKind::Round { .. } => "round",
                SpanKind::RuleEval { .. } => "rule",
            };
            let _ = write!(
                body,
                ", \"cat\": \"{cat}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{",
                event.tid,
                event.start_ns as f64 / 1_000.0,
                event.dur_ns as f64 / 1_000.0,
            );
            match &event.kind {
                SpanKind::Solve
                | SpanKind::LoadFacts
                | SpanKind::ResumeSeed
                | SpanKind::DemandRewrite => {}
                SpanKind::Stratum { stratum } => {
                    let _ = write!(body, "\"stratum\": {stratum}");
                }
                SpanKind::Round { stratum, round } => {
                    let _ = write!(body, "\"stratum\": {stratum}, \"round\": {round}");
                }
                SpanKind::RuleEval {
                    stratum,
                    round,
                    rule,
                    variant,
                    derived,
                } => {
                    let _ = write!(
                        body,
                        "\"stratum\": {stratum}, \"round\": {round}, \"rule\": {rule}, \
                         \"derived\": {derived}"
                    );
                    if let Some(v) = variant {
                        let _ = write!(body, ", \"variant\": {v}");
                    }
                }
            }
            body.push_str("}}");
            emit(&mut out, &body);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the trace as folded-stack flamegraph text: one
    /// `frame;frame;frame value` line per distinct stack, values in
    /// nanoseconds, aggregated over all workers and rounds. Feed the
    /// output to `flamegraph.pl` or `inferno-flamegraph`.
    ///
    /// Only leaf spans (rule evaluations and the load/seed/rewrite
    /// phases) contribute values, so frame totals are not double
    /// counted.
    pub fn to_folded(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for event in &self.events {
            let stack = match &event.kind {
                SpanKind::Solve | SpanKind::Stratum { .. } | SpanKind::Round { .. } => continue,
                SpanKind::LoadFacts | SpanKind::ResumeSeed | SpanKind::DemandRewrite => {
                    format!("solve;{}", self.span_name(&event.kind))
                }
                SpanKind::RuleEval { stratum, round, .. } => format!(
                    "solve;stratum {stratum};round {round};{}",
                    self.span_name(&event.kind)
                ),
            };
            *stacks.entry(stack).or_insert(0) += event.dur_ns;
        }
        let mut out = String::new();
        for (stack, ns) in stacks {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }
}

/// Configuration for lattice-ascent telemetry, attached with
/// [`crate::Solver::ascent`].
#[derive(Clone, Debug)]
pub struct AscentConfig {
    /// Fire a non-fatal [`AscentWarning`] through the observer the first
    /// time a cell's chain height reaches this value. `None` disables
    /// warnings (the report is still collected).
    pub warn_height: Option<u64>,
    /// How many hottest cells (by join count) the report keeps.
    pub top_k: usize,
}

impl Default for AscentConfig {
    fn default() -> AscentConfig {
        AscentConfig {
            warn_height: None,
            top_k: 10,
        }
    }
}

/// A lattice cell crossed the configured chain-height threshold.
///
/// Delivered through [`crate::Observer::ascent_warning`], at most once
/// per cell per solve. Non-fatal: the solve continues; the warning is
/// the early signal that an ascending chain may not be finite (§3.2/§7)
/// and the lattice may need widening.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AscentWarning {
    /// The lattice predicate the cell belongs to.
    pub predicate: String,
    /// The cell's key columns.
    pub key: Vec<Value>,
    /// The chain height at the moment of the warning: the number of
    /// strict increases the cell has absorbed (1 = first non-bottom
    /// value).
    pub height: u64,
    /// The configured threshold that was crossed.
    pub threshold: u64,
}

/// One lattice cell's ascent counters, as aggregated into an
/// [`AscentReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AscentCell {
    /// The lattice predicate the cell belongs to.
    pub predicate: String,
    /// The cell's key columns, rendered for display.
    pub key: String,
    /// Joins absorbed (every [`crate::LatticeOps::lub`] application,
    /// including ones that did not change the cell).
    pub joins: u64,
    /// Strict increases: the cell's height in its ascending chain.
    pub height: u64,
}

/// Aggregated lattice-ascent diagnostics for one solve, from
/// [`crate::Solution::ascent_report`].
#[derive(Clone, Debug, Default)]
pub struct AscentReport {
    /// Total lattice cells observed.
    pub cells: u64,
    /// The tallest chain any cell climbed.
    pub max_height: u64,
    /// `(height, number of cells that ended at that height)`, ascending.
    pub histogram: Vec<(u64, u64)>,
    /// The top-K hottest cells by join count (ties broken by height,
    /// then predicate/key for determinism).
    pub hottest: Vec<AscentCell>,
    /// Per lattice type (e.g. `MinCost`, `Interval`): the maximum
    /// observed chain height, sorted by type name.
    pub per_lattice: Vec<(String, u64)>,
}

/// Renders an [`AscentReport`] as the human-readable block printed by
/// `flixr --ascent-report`.
pub fn render_ascent_report(report: &AscentReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lattice ascent: {} cells, max chain height {}",
        report.cells, report.max_height
    );
    out.push_str("chain-height histogram:\n");
    let max_count = report
        .histogram
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(0)
        .max(1);
    for &(height, count) in &report.histogram {
        let bar = "#".repeat(((count * 40).div_ceil(max_count)) as usize);
        let _ = writeln!(out, "  height {height:>4}: {count:>8} {bar}");
    }
    if !report.hottest.is_empty() {
        let _ = writeln!(out, "hottest cells (by joins):");
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>8}  key",
            "predicate", "joins", "height"
        );
        for cell in &report.hottest {
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>8}  {}",
                cell.predicate, cell.joins, cell.height, cell.key
            );
        }
    }
    if !report.per_lattice.is_empty() {
        let _ = writeln!(out, "max chain height per lattice type:");
        for (lattice, height) in &report.per_lattice {
            let _ = writeln!(out, "  {lattice:<24} {height:>8}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(tid: u32, start_ns: u64, dur_ns: u64, kind: SpanKind) -> TraceEvent {
        TraceEvent {
            kind,
            tid,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = Ring::new(2);
        for i in 0..5u64 {
            ring.push(event(0, i, 1, SpanKind::Solve));
        }
        assert_eq!(ring.events.len(), 2);
        assert_eq!(ring.dropped, 3);
        assert_eq!(ring.events[0].start_ns, 3);
        assert_eq!(ring.events[1].start_ns, 4);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = Ring::new(0);
        ring.push(event(0, 0, 1, SpanKind::Solve));
        assert_eq!(ring.events.len(), 0);
        assert_eq!(ring.dropped, 1);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::new(None);
        assert!(tracer.local_ring().is_none());
        tracer.record(0, SpanKind::Solve, 0);
        assert!(tracer.finish(Vec::new()).is_none());
    }

    #[test]
    fn merge_orders_parents_first() {
        let tracer = Tracer::new(Some(&TraceConfig::default()));
        let mut ring = tracer.local_ring().expect("enabled");
        ring.push(event(
            1,
            10,
            5,
            SpanKind::RuleEval {
                stratum: 0,
                round: 1,
                rule: 0,
                variant: None,
                derived: 2,
            },
        ));
        tracer.merge(1, Some(ring));
        tracer.record(
            0,
            SpanKind::Round {
                stratum: 0,
                round: 1,
            },
            0,
        );
        tracer.record(0, SpanKind::Solve, 0);
        let trace = tracer.finish(vec!["Path".into()]).expect("trace");
        assert_eq!(trace.events().len(), 3);
        // Same start: longer span (solve ⊇ round) first.
        assert_eq!(trace.events()[0].kind, SpanKind::Solve);
        assert!(matches!(trace.events()[1].kind, SpanKind::Round { .. }));
        assert!(matches!(trace.events()[2].kind, SpanKind::RuleEval { .. }));
        assert_eq!(trace.workers(), 1);

        let json = trace.to_chrome_json();
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"name\": \"#0 Path\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");

        let folded = trace.to_folded();
        assert_eq!(folded.trim(), "solve;stratum 0;round 1;#0 Path 5");
    }

    #[test]
    fn ascent_report_renders_histogram_and_top_k() {
        let report = AscentReport {
            cells: 3,
            max_height: 4,
            histogram: vec![(1, 2), (4, 1)],
            hottest: vec![AscentCell {
                predicate: "Dist".into(),
                key: "(\"c\")".into(),
                joins: 9,
                height: 4,
            }],
            per_lattice: vec![("MinCost".into(), 4)],
        };
        let text = render_ascent_report(&report);
        assert!(text.contains("max chain height 4"), "{text}");
        assert!(text.contains("height    1:        2"), "{text}");
        assert!(text.contains("Dist"), "{text}");
        assert!(text.contains("MinCost"), "{text}");
    }
}
