//! The global string interner behind [`Value::Str`](crate::Value).
//!
//! Every string value constructed through [`Value::str`](crate::Value::str)
//! (and the `From<&str>` / `From<String>` conversions the parser and fact
//! loaders use) is registered here, so equal strings share one canonical
//! `Arc<str>` and a stable `u32` symbol id. The columnar fact store
//! (`crate::database`) encodes string columns as that id, which makes
//! string joins compare a single machine word instead of re-hashing
//! characters, and makes `Value` equality on interned strings a pointer
//! comparison.
//!
//! The table is process-global and append-only: symbols are never freed.
//! That is the right trade-off for a Datalog engine — the set of distinct
//! strings is bounded by the input EDB plus anything user functions
//! fabricate, and ids must stay stable for as long as any encoded column
//! references them.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The interner: content → id, and id → canonical `Arc<str>`.
#[derive(Default)]
pub struct SymbolTable {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl SymbolTable {
    fn intern(&mut self, s: &str) -> (u32, Arc<str>) {
        if let Some((name, &id)) = self.ids.get_key_value(s) {
            return (id, Arc::clone(name));
        }
        let id = u32::try_from(self.names.len()).expect("fewer than 2^32 distinct strings");
        let name: Arc<str> = Arc::from(s);
        self.names.push(Arc::clone(&name));
        self.ids.insert(Arc::clone(&name), id);
        (id, name)
    }
}

fn table() -> &'static RwLock<SymbolTable> {
    static TABLE: OnceLock<RwLock<SymbolTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(SymbolTable::default()))
}

/// Interns `s`, returning its stable symbol id and the canonical
/// `Arc<str>` all equal interned strings share.
pub fn intern(s: &str) -> (u32, Arc<str>) {
    // Fast path: already interned, shared read lock only.
    if let Some(hit) = {
        let t = table().read().expect("symbol table lock");
        t.ids.get_key_value(s).map(|(n, &id)| (id, Arc::clone(n)))
    } {
        return hit;
    }
    table().write().expect("symbol table lock").intern(s)
}

/// Looks up the symbol id of `s` without interning it. Read-only: safe
/// to call concurrently from solver workers. A string that was never
/// interned has no id — and therefore cannot equal any encoded column.
pub fn lookup(s: &str) -> Option<u32> {
    table()
        .read()
        .expect("symbol table lock")
        .ids
        .get(s)
        .copied()
}

/// Resolves a symbol id back to its canonical string.
///
/// # Panics
///
/// Panics on an id that was never issued by [`intern`].
pub fn resolve(id: u32) -> Arc<str> {
    Arc::clone(&table().read().expect("symbol table lock").names[id as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_canonical() {
        let (id1, a) = intern("flix-symbol-test");
        let (id2, b) = intern("flix-symbol-test");
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&a, &b), "equal strings share one allocation");
        assert!(Arc::ptr_eq(&resolve(id1), &a));
        assert_eq!(lookup("flix-symbol-test"), Some(id1));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(lookup("flix-symbol-never-interned-q7x"), None);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let (a, _) = intern("flix-symbol-a");
        let (b, _) = intern("flix-symbol-b");
        assert_ne!(a, b);
    }
}
