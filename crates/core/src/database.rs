//! The indexed fact database, stored columnar.
//!
//! Relations and lattice keys are stored struct-of-arrays: one `Vec<u64>`
//! of *encoded* slots per column, where a slot packs small values inline
//! (unit, booleans, up-to-61-bit integers, interned string symbols) and
//! spills everything else (tags, tuples, sets, huge integers) into a
//! per-database deduplicated side-table. Encoded equality is value
//! equality, so membership tests, index probes, and join keys compare
//! single machine words instead of walking boxed [`Value`] trees.
//!
//! Alongside the encoded columns each predicate keeps a flat row-major
//! arena of decoded [`Value`]s — the borrowed `&[Value]` view the public
//! iterators, the generic evaluator, and the persistence layer read.
//! Membership is a [`RowSet`]: an open-addressing set of `u32` row ids
//! whose hashes and equality read the encoded columns, so a row is stored
//! once and *referenced* by the set — not duplicated into it.
//!
//! `lat` predicates are stored as *compact* cell maps from key tuples
//! (the first `n-1` columns, §3.2's cell partition) to a single lattice
//! element, so the per-cell least-upper-bound compaction of the immediate
//! consequence operator is a constant-time map update. Cell *values* stay
//! boxed: they are never join keys, and the lattice operations consume
//! `&Value` anyway.

use crate::ast::PredKind;
use crate::fxhash::{hash_slots, FxHashMap};
use crate::ops::OpsPanic;
use crate::program::Program;
use crate::symbol;
use crate::verify::Violation;
use crate::{LatticeOps, PredId, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Why an insert failed: the user's lattice operations either panicked or
/// were caught violating a lattice law by the runtime sentinels (§7).
#[derive(Clone, Debug)]
pub(crate) enum InsertFault {
    /// A `leq`/`lub` closure panicked.
    Panic(OpsPanic),
    /// A runtime safety sentinel tripped.
    Safety(Violation),
}

impl From<OpsPanic> for InsertFault {
    fn from(p: OpsPanic) -> InsertFault {
        InsertFault::Panic(p)
    }
}

/// A materialized tuple, shared. Deltas, ascent telemetry, and the
/// provenance log alias rows without copying; the store itself keeps
/// tuples in flat columns instead.
pub(crate) type Row = Arc<[Value]>;

/// Outcome of inserting one derived fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum InsertOutcome {
    /// The fact was already present (or was a lattice `⊥`): no change.
    Unchanged,
    /// A new relational tuple was added.
    NewRow(Row),
    /// A lattice cell strictly increased; carries the key and the *new*
    /// cell value — exactly the paper's `∆P` element `ga(P', S)` (§3.7).
    LatIncrease(Row, Value),
}

// ---------------------------------------------------------------------------
// Slot encoding
// ---------------------------------------------------------------------------

const TAG_BITS: u32 = 3;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;
const TAG_UNIT: u64 = 0;
const TAG_BOOL: u64 = 1;
const TAG_INT: u64 = 2;
const TAG_SYM: u64 = 3;
const TAG_SPILL: u64 = 4;

/// Integers representable inline in a slot: 61 bits, sign-extended on
/// decode. Anything outside spills.
const INT_INLINE_MIN: i64 = -(1 << 60);
const INT_INLINE_MAX: i64 = (1 << 60) - 1;

#[inline]
fn pack(tag: u64, payload: u64) -> u64 {
    (payload << TAG_BITS) | tag
}

/// The per-database side-table for values a slot cannot hold inline.
/// Deduplicated, so spill indices are canonical: two equal values encode
/// to the same slot, which is what makes encoded equality value equality.
#[derive(Clone, Debug, Default)]
pub(crate) struct SpillTable {
    values: Vec<Value>,
    dedup: FxHashMap<Value, u32>,
}

impl SpillTable {
    fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&idx) = self.dedup.get(v) {
            return idx;
        }
        let idx = u32::try_from(self.values.len()).expect("fewer than 2^32 distinct spill values");
        self.values.push(v.clone());
        self.dedup.insert(v.clone(), idx);
        idx
    }

    fn lookup(&self, v: &Value) -> Option<u32> {
        self.dedup.get(v).copied()
    }

    pub(crate) fn get(&self, idx: u32) -> &Value {
        &self.values[idx as usize]
    }
}

/// Encodes `v` into a slot, interning strings and spilling structured
/// values as needed. Insert-path only: mutates the spill table.
pub(crate) fn encode_mut(v: &Value, spill: &mut SpillTable) -> u64 {
    match v {
        Value::Unit => pack(TAG_UNIT, 0),
        Value::Bool(b) => pack(TAG_BOOL, *b as u64),
        Value::Int(n) if (INT_INLINE_MIN..=INT_INLINE_MAX).contains(n) => pack(TAG_INT, *n as u64),
        Value::Str(s) => pack(TAG_SYM, symbol::intern(s).0 as u64),
        other => pack(TAG_SPILL, spill.intern(other) as u64),
    }
}

/// Read-only encoding for probe keys and comparisons during evaluation.
/// `None` means the value is not present in the symbol/spill tables — and
/// therefore cannot equal any *stored* slot, so callers treat it as
/// matching nothing.
pub(crate) fn try_encode(v: &Value, spill: &SpillTable) -> Option<u64> {
    match v {
        Value::Unit => Some(pack(TAG_UNIT, 0)),
        Value::Bool(b) => Some(pack(TAG_BOOL, *b as u64)),
        Value::Int(n) if (INT_INLINE_MIN..=INT_INLINE_MAX).contains(n) => {
            Some(pack(TAG_INT, *n as u64))
        }
        Value::Str(s) => Some(pack(TAG_SYM, symbol::lookup(s)? as u64)),
        other => Some(pack(TAG_SPILL, spill.lookup(other)? as u64)),
    }
}

/// Decodes a slot back into a [`Value`].
pub(crate) fn decode(slot: u64, spill: &SpillTable) -> Value {
    match slot & TAG_MASK {
        TAG_UNIT => Value::Unit,
        TAG_BOOL => Value::Bool(slot >> TAG_BITS != 0),
        TAG_INT => Value::Int((slot as i64) >> TAG_BITS),
        TAG_SYM => Value::Str(symbol::resolve((slot >> TAG_BITS) as u32)),
        TAG_SPILL => spill.get((slot >> TAG_BITS) as u32).clone(),
        _ => unreachable!("unused slot tag"),
    }
}

// ---------------------------------------------------------------------------
// Row-id membership set
// ---------------------------------------------------------------------------

/// An open-addressing hash set of `u32` row ids. It stores *no* row data:
/// hashing and equality read the owning predicate's encoded columns, so
/// membership is an index into the columnar store rather than a second
/// copy of every tuple (the old `HashMap<Row, ()>`).
#[derive(Clone, Debug, Default)]
pub(crate) struct RowSet {
    /// Power-of-two slot array; `u32::MAX` marks an empty slot.
    slots: Vec<u32>,
    len: usize,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl RowSet {
    /// Finds the id of the row with `hash` for which `eq` holds.
    #[inline]
    fn lookup(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let id = self.slots[i];
            if id == EMPTY_SLOT {
                return None;
            }
            if eq(id) {
                return Some(id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts an id known to be absent, growing (and rehashing via
    /// `hash_of`) at 7/8 load.
    fn insert_new(&mut self, hash: u64, id: u32, hash_of: impl Fn(u32) -> u64) {
        if self.slots.len() < 8 || self.len + 1 > self.slots.len() / 8 * 7 {
            let cap = (self.slots.len() * 2).max(8);
            let mut grown = vec![EMPTY_SLOT; cap];
            let mask = cap - 1;
            for &old in &self.slots {
                if old == EMPTY_SLOT {
                    continue;
                }
                let mut i = (hash_of(old) as usize) & mask;
                while grown[i] != EMPTY_SLOT {
                    i = (i + 1) & mask;
                }
                grown[i] = old;
            }
            self.slots = grown;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = id;
        self.len += 1;
    }
}

/// Hash indexes keyed by column set; values are row ids grouped by the
/// encoded key slots of those columns.
type Indexes = HashMap<Vec<usize>, FxHashMap<Box<[u64]>, Vec<u32>>>;

// ---------------------------------------------------------------------------
// Relations
// ---------------------------------------------------------------------------

/// Storage for one relational predicate.
#[derive(Clone, Debug, Default)]
pub(crate) struct RelationData {
    arity: usize,
    len: usize,
    /// Struct-of-arrays encoded columns: `cols[c][row]`.
    cols: Vec<Vec<u64>>,
    /// Row-major decoded arena: row `i` is `rows_flat[i*arity..][..arity]`.
    /// This is the borrowed `&[Value]` read view; the encoded columns
    /// above are the join kernels' working representation.
    rows_flat: Vec<Value>,
    set: RowSet,
    indexes: Indexes,
    /// Reused encode buffer for the insert path.
    scratch: Vec<u64>,
}

impl RelationData {
    pub(crate) fn new(arity: usize) -> RelationData {
        RelationData {
            arity,
            cols: vec![Vec::new(); arity],
            ..RelationData::default()
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn row(&self, i: u32) -> &[Value] {
        let start = i as usize * self.arity;
        &self.rows_flat[start..start + self.arity]
    }

    /// Iterates the stored tuples in insertion order.
    pub(crate) fn rows(&self) -> RowsIter<'_> {
        RowsIter {
            rel: self,
            range: 0..self.len as u32,
        }
    }

    /// The encoded slots of one column (kernel access).
    #[inline]
    pub(crate) fn col(&self, c: usize) -> &[u64] {
        &self.cols[c]
    }

    #[inline]
    fn row_eq_encoded(&self, id: u32, enc: &[u64]) -> bool {
        self.cols
            .iter()
            .zip(enc)
            .all(|(col, &e)| col[id as usize] == e)
    }

    pub(crate) fn contains(&self, row: &[Value], spill: &SpillTable) -> bool {
        if row.len() != self.arity {
            return false;
        }
        let mut enc = Vec::with_capacity(row.len());
        for v in row {
            match try_encode(v, spill) {
                Some(e) => enc.push(e),
                None => return false,
            }
        }
        self.contains_encoded(&enc)
    }

    pub(crate) fn contains_encoded(&self, enc: &[u64]) -> bool {
        self.set
            .lookup(hash_slots(enc), |id| self.row_eq_encoded(id, enc))
            .is_some()
    }

    /// Inserts a tuple; returns the new row id, or `None` when the tuple
    /// was already stored.
    fn insert(
        &mut self,
        tuple: Vec<Value>,
        spill: &mut SpillTable,
    ) -> Result<Option<u32>, InsertFault> {
        debug_assert_eq!(tuple.len(), self.arity);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for v in &tuple {
            scratch.push(encode_mut(v, spill));
        }
        let hash = hash_slots(&scratch);
        if self
            .set
            .lookup(hash, |id| self.row_eq_encoded(id, &scratch))
            .is_some()
        {
            self.scratch = scratch;
            return Ok(None);
        }
        // `u32::MAX` is the row-set's empty sentinel, so the last usable
        // id is `u32::MAX - 1`: a checked bound instead of the silent
        // `len as u32` truncation that would corrupt every index.
        if self.len >= u32::MAX as usize {
            self.scratch = scratch;
            return Err(InsertFault::Safety(Violation::StoreFull(self.len as u64)));
        }
        let id = self.len as u32;
        for (cols, index) in &mut self.indexes {
            let key: Box<[u64]> = cols.iter().map(|&c| scratch[c]).collect();
            index.entry(key).or_default().push(id);
        }
        for (c, &e) in scratch.iter().enumerate() {
            self.cols[c].push(e);
        }
        self.rows_flat.extend(tuple);
        self.len += 1;
        {
            let cols = &self.cols;
            let arity = self.arity;
            self.set.insert_new(hash, id, |rid| {
                let mut h = crate::fxhash::FxHasher::default();
                use std::hash::Hasher;
                for col in cols {
                    h.write_u64(col[rid as usize]);
                }
                h.write_u64(arity as u64);
                h.finish()
            });
        }
        self.scratch = scratch;
        Ok(Some(id))
    }

    pub(crate) fn register_index(&mut self, cols: Vec<usize>) {
        self.indexes.entry(cols).or_default();
    }

    pub(crate) fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(cols)
    }

    /// Returns the row ids matching `key` on `cols`, or `None` if no
    /// such index exists (the caller falls back to a scan). A key
    /// containing values unknown to the store matches nothing.
    pub(crate) fn probe(
        &self,
        cols: &[usize],
        key: &[Value],
        spill: &SpillTable,
    ) -> Option<&[u32]> {
        let index = self.indexes.get(cols)?;
        let mut enc = Vec::with_capacity(key.len());
        for v in key {
            match try_encode(v, spill) {
                Some(e) => enc.push(e),
                None => return Some(&[]),
            }
        }
        Some(index.get(enc.as_slice()).map_or(&[][..], |v| &v[..]))
    }

    /// Index probe with a pre-encoded key (kernel access).
    pub(crate) fn probe_encoded(&self, cols: &[usize], key: &[u64]) -> Option<&[u32]> {
        self.indexes
            .get(cols)
            .map(|index| index.get(key).map_or(&[][..], |v| &v[..]))
    }
}

/// Iterator over a relation's tuples, in insertion order.
#[derive(Clone, Debug)]
pub(crate) struct RowsIter<'a> {
    rel: &'a RelationData,
    range: std::ops::Range<u32>,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        self.range.next().map(|i| self.rel.row(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for RowsIter<'_> {}

// ---------------------------------------------------------------------------
// Lattices
// ---------------------------------------------------------------------------

/// Per-cell ascent counters, kept only when ascent telemetry is enabled
/// (see [`crate::trace::AscentConfig`]). Keyed by cell (key-row) id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct AscentEntry {
    /// Joins absorbed by the cell (including no-change joins).
    pub(crate) joins: u64,
    /// Strict increases: the cell's height in its ascending chain.
    pub(crate) height: u64,
    /// Whether an [`crate::trace::AscentWarning`] already fired for this
    /// cell (each cell warns at most once per solve).
    pub(crate) warned: bool,
}

/// Updates a cell's ascent counters after a join, when telemetry is on.
fn note_ascent(ascent: &mut Option<FxHashMap<u32, AscentEntry>>, id: u32, increased: bool) {
    let Some(map) = ascent else {
        return;
    };
    let entry = map.entry(id).or_default();
    entry.joins += 1;
    if increased {
        entry.height += 1;
    }
}

/// Storage for one lattice predicate: the compact cell map, with the key
/// tuples stored columnar exactly like a relation and the cell elements
/// boxed per key id.
#[derive(Clone, Debug)]
pub(crate) struct LatticeData {
    ops: LatticeOps,
    key_arity: usize,
    len: usize,
    /// Struct-of-arrays encoded key columns: `key_cols[c][id]`.
    key_cols: Vec<Vec<u64>>,
    /// Row-major decoded key arena.
    keys_flat: Vec<Value>,
    /// The cell element per key id; never `⊥` (compactness).
    cells: Vec<Value>,
    set: RowSet,
    indexes: Indexes,
    /// `Some` only when ascent telemetry is enabled for this solve; the
    /// hot path then pays one map update per join, and nothing otherwise.
    ascent: Option<FxHashMap<u32, AscentEntry>>,
    scratch: Vec<u64>,
}

impl LatticeData {
    fn new(ops: LatticeOps, key_arity: usize) -> LatticeData {
        LatticeData {
            ops,
            key_arity,
            len: 0,
            key_cols: vec![Vec::new(); key_arity],
            keys_flat: Vec::new(),
            cells: Vec::new(),
            set: RowSet::default(),
            indexes: Indexes::default(),
            ascent: None,
            scratch: Vec::new(),
        }
    }

    pub(crate) fn ops(&self) -> &LatticeOps {
        &self.ops
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn key(&self, id: u32) -> &[Value] {
        let start = id as usize * self.key_arity;
        &self.keys_flat[start..start + self.key_arity]
    }

    #[inline]
    pub(crate) fn cell(&self, id: u32) -> &Value {
        &self.cells[id as usize]
    }

    /// The encoded slots of one key column (kernel access).
    #[inline]
    pub(crate) fn key_col(&self, c: usize) -> &[u64] {
        &self.key_cols[c]
    }

    #[inline]
    fn key_eq_encoded(&self, id: u32, enc: &[u64]) -> bool {
        self.key_cols
            .iter()
            .zip(enc)
            .all(|(col, &e)| col[id as usize] == e)
    }

    /// The id of an encoded key, if stored (kernel access).
    #[inline]
    pub(crate) fn id_of_encoded(&self, enc: &[u64]) -> Option<u32> {
        self.set
            .lookup(hash_slots(enc), |id| self.key_eq_encoded(id, enc))
    }

    fn key_id(&self, key: &[Value], spill: &SpillTable) -> Option<u32> {
        if key.len() != self.key_arity {
            return None;
        }
        let mut enc = Vec::with_capacity(key.len());
        for v in key {
            enc.push(try_encode(v, spill)?);
        }
        self.id_of_encoded(&enc)
    }

    pub(crate) fn value<'a>(&'a self, key: &[Value], spill: &SpillTable) -> Option<&'a Value> {
        self.key_id(key, spill).map(|id| self.cell(id))
    }

    /// Joins `value` into the cell at `key`. Returns the new cell value on
    /// strict increase.
    ///
    /// This is the one place every lattice element passes through, so the
    /// runtime safety sentinels live here: after each `lub` the result must
    /// be an upper bound of both operands (otherwise the cell could
    /// *decrease*, breaking monotonicity of the fixpoint iteration), and a
    /// fresh cell value must satisfy `leq(v, v)` (reflexivity — a `leq`
    /// that fails it would later mis-classify the cell as increased).
    fn join(
        &mut self,
        key: &[Value],
        value: Value,
        spill: &mut SpillTable,
    ) -> Result<Option<Value>, InsertFault> {
        if self.ops.is_bottom(&value) {
            return Ok(None);
        }
        debug_assert_eq!(key.len(), self.key_arity);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for v in key {
            scratch.push(encode_mut(v, spill));
        }
        let result = self.join_inner(&scratch, value, spill, Some(key));
        self.scratch = scratch;
        result
    }

    /// [`LatticeData::join`] with a pre-encoded key (kernel fast path).
    /// Every slot must be a canonical encoding already present in the
    /// store, so no interning happens; the decoded key columns are
    /// reconstructed from `spill` only when the cell is new.
    pub(crate) fn join_encoded(
        &mut self,
        enc: &[u64],
        value: Value,
        spill: &SpillTable,
    ) -> Result<Option<Value>, InsertFault> {
        if self.ops.is_bottom(&value) {
            return Ok(None);
        }
        debug_assert_eq!(enc.len(), self.key_arity);
        self.join_inner(enc, value, spill, None)
    }

    /// [`LatticeData::join_encoded`] addressed directly at a known cell:
    /// when the kernel already resolved the target row id, the hash
    /// lookup is skipped and the candidate joins `cells[id]` with the
    /// same `leq`/`lub`/sentinel sequence as every other insert.
    pub(crate) fn join_at(&mut self, id: u32, value: Value) -> Result<Option<Value>, InsertFault> {
        if self.ops.is_bottom(&value) {
            return Ok(None);
        }
        self.join_existing(id, value)
    }

    fn join_existing(&mut self, id: u32, value: Value) -> Result<Option<Value>, InsertFault> {
        let ops = &self.ops;
        let cell = &mut self.cells[id as usize];
        if ops.try_leq(&value, cell)? {
            note_ascent(&mut self.ascent, id, false);
            return Ok(None);
        }
        let joined = ops.try_lub(cell, &value)?;
        if !ops.try_leq(cell, &joined)? || !ops.try_leq(&value, &joined)? {
            return Err(InsertFault::Safety(Violation::LubNotUpperBound(
                cell.clone(),
                value,
            )));
        }
        *cell = joined.clone();
        note_ascent(&mut self.ascent, id, true);
        Ok(Some(joined))
    }

    fn join_inner(
        &mut self,
        enc: &[u64],
        value: Value,
        spill: &SpillTable,
        key: Option<&[Value]>,
    ) -> Result<Option<Value>, InsertFault> {
        let hash = hash_slots(enc);
        let existing = self.set.lookup(hash, |id| self.key_eq_encoded(id, enc));
        if let Some(id) = existing {
            return self.join_existing(id, value);
        }
        if !self.ops.try_leq(&value, &value)? {
            return Err(InsertFault::Safety(Violation::NotReflexive(value)));
        }
        if self.len >= u32::MAX as usize {
            return Err(InsertFault::Safety(Violation::StoreFull(self.len as u64)));
        }
        let id = self.len as u32;
        for (cols, index) in &mut self.indexes {
            let ikey: Box<[u64]> = cols.iter().map(|&c| enc[c]).collect();
            index.entry(ikey).or_default().push(id);
        }
        for (c, &e) in enc.iter().enumerate() {
            self.key_cols[c].push(e);
        }
        match key {
            Some(values) => self.keys_flat.extend(values.iter().cloned()),
            None => self.keys_flat.extend(enc.iter().map(|&e| decode(e, spill))),
        }
        self.cells.push(value.clone());
        self.len += 1;
        {
            let key_cols = &self.key_cols;
            let key_arity = self.key_arity;
            self.set.insert_new(hash, id, |rid| {
                let mut h = crate::fxhash::FxHasher::default();
                use std::hash::Hasher;
                for col in key_cols {
                    h.write_u64(col[rid as usize]);
                }
                h.write_u64(key_arity as u64);
                h.finish()
            });
        }
        note_ascent(&mut self.ascent, id, true);
        Ok(Some(value))
    }

    /// Turns on per-cell ascent counting (idempotent; counters that
    /// already exist — e.g. cloned from a prior resume — are kept).
    pub(crate) fn enable_ascent(&mut self) {
        if self.ascent.is_none() {
            self.ascent = Some(FxHashMap::default());
        }
    }

    pub(crate) fn register_index(&mut self, cols: Vec<usize>) {
        self.indexes.entry(cols).or_default();
    }

    pub(crate) fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(cols)
    }

    pub(crate) fn probe(
        &self,
        cols: &[usize],
        key: &[Value],
        spill: &SpillTable,
    ) -> Option<&[u32]> {
        let index = self.indexes.get(cols)?;
        let mut enc = Vec::with_capacity(key.len());
        for v in key {
            match try_encode(v, spill) {
                Some(e) => enc.push(e),
                None => return Some(&[]),
            }
        }
        Some(index.get(enc.as_slice()).map_or(&[][..], |v| &v[..]))
    }

    /// Index probe with a pre-encoded key (kernel access).
    pub(crate) fn probe_encoded(&self, cols: &[usize], key: &[u64]) -> Option<&[u32]> {
        self.indexes
            .get(cols)
            .map(|index| index.get(key).map_or(&[][..], |v| &v[..]))
    }

    /// Iterates `(key, cell)` pairs in first-derived key order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&[Value], &Value)> {
        (0..self.len as u32).map(move |id| (self.key(id), self.cell(id)))
    }
}

/// Storage for one predicate.
#[derive(Clone, Debug)]
pub(crate) enum PredData {
    Rel(RelationData),
    Lat(LatticeData),
}

/// The fact database: one [`PredData`] per declared predicate, plus the
/// shared [`SpillTable`] all encoded columns reference (shared so slots
/// are comparable *across* predicates — a join key bound from one
/// predicate probes another's index as a plain `u64`).
///
/// Index-probe and scan-fallback counters live with the evaluator (the
/// solver's per-rule profile), not here: each rule evaluation counts its
/// own probes locally, so workers never contend on shared counters.
///
/// `Clone` is the warm-start path of [`crate::incremental`]: resuming a
/// solve clones the prior solution's database instead of re-deriving it.
/// The clone keeps the index configuration it was built with; a resume
/// under a different `use_indexes` setting stays correct because a
/// missing index is always a scan fallback, never a wrong probe.
#[derive(Clone, Debug)]
pub(crate) struct Database {
    preds: Vec<PredData>,
    spill: SpillTable,
}

impl Database {
    /// Creates an empty database for `program`, registering the requested
    /// indexes (unless `use_indexes` is false, the ablation configuration).
    pub(crate) fn for_program(program: &Program, use_indexes: bool) -> Database {
        let mut preds: Vec<PredData> = program
            .preds
            .iter()
            .map(|decl| match &decl.kind {
                PredKind::Relation => PredData::Rel(RelationData::new(decl.arity())),
                PredKind::Lattice(ops) => PredData::Lat(LatticeData::new(
                    ops.clone(),
                    decl.arity().saturating_sub(1),
                )),
            })
            .collect();
        if use_indexes {
            for (pred, col_sets) in &program.index_requests {
                for cols in col_sets {
                    match &mut preds[pred.0 as usize] {
                        PredData::Rel(r) => r.register_index(cols.clone()),
                        PredData::Lat(l) => l.register_index(cols.clone()),
                    }
                }
            }
        }
        Database {
            preds,
            spill: SpillTable::default(),
        }
    }

    pub(crate) fn pred(&self, pred: PredId) -> &PredData {
        &self.preds[pred.0 as usize]
    }

    /// The shared spill side-table (read access for probe encoding).
    pub(crate) fn spill(&self) -> &SpillTable {
        &self.spill
    }

    /// Encodes a literal at kernel-compile time, interning or spilling it
    /// so the encoding stays canonical as the store grows afterwards.
    pub(crate) fn encode_literal(&mut self, v: &Value) -> u64 {
        encode_mut(v, &mut self.spill)
    }

    /// Inserts a derived tuple, interpreting the last column as a lattice
    /// element for `lat` predicates. Fails when the lattice operations
    /// panic or trip a safety sentinel (see [`LatticeData::join`]), or
    /// when the predicate's `u32` row-id space is exhausted.
    pub(crate) fn insert(
        &mut self,
        pred: PredId,
        mut tuple: Vec<Value>,
    ) -> Result<InsertOutcome, InsertFault> {
        let spill = &mut self.spill;
        match &mut self.preds[pred.0 as usize] {
            PredData::Rel(r) => match r.insert(tuple, spill)? {
                Some(id) => Ok(InsertOutcome::NewRow(r.row(id).into())),
                None => Ok(InsertOutcome::Unchanged),
            },
            PredData::Lat(l) => {
                let value = tuple.pop().expect("lattice predicates have arity >= 1");
                match l.join(&tuple, value, spill)? {
                    Some(new_value) => Ok(InsertOutcome::LatIncrease(tuple.into(), new_value)),
                    None => Ok(InsertOutcome::Unchanged),
                }
            }
        }
    }

    /// [`Database::insert`] for a lattice head whose key is already in
    /// encoded form (the kernel fast path). The key slots must be
    /// canonical encodings produced against this database's spill table;
    /// the materialized key row in the outcome is rebuilt by decoding.
    pub(crate) fn insert_lat_encoded(
        &mut self,
        pred: PredId,
        key: &[u64],
        id: u32,
        value: Value,
    ) -> Result<InsertOutcome, InsertFault> {
        let spill = &self.spill;
        match &mut self.preds[pred.0 as usize] {
            PredData::Lat(l) => {
                let changed = if id == crate::kernel::NO_ID {
                    l.join_encoded(key, value, spill)?
                } else {
                    l.join_at(id, value)?
                };
                match changed {
                    Some(new_value) => {
                        let full: Vec<Value> = key.iter().map(|&e| decode(e, spill)).collect();
                        Ok(InsertOutcome::LatIncrease(full.into(), new_value))
                    }
                    None => Ok(InsertOutcome::Unchanged),
                }
            }
            PredData::Rel(_) => unreachable!("encoded inserts target lattice predicates"),
        }
    }

    /// Drops every predicate at or past `keep`, returning the truncated
    /// database. The demand rewrite appends its `demand$` relations after
    /// the original predicates, so truncating to the original count
    /// strips all rewrite machinery while preserving predicate ids.
    pub(crate) fn truncated(mut self, keep: usize) -> Database {
        self.preds.truncate(keep);
        self
    }

    /// Total number of stored facts (rows plus non-bottom lattice cells) —
    /// the database-size proxy reported by the benchmark tables.
    pub(crate) fn total_facts(&self) -> usize {
        self.preds
            .iter()
            .map(|p| match p {
                PredData::Rel(r) => r.len(),
                PredData::Lat(l) => l.len(),
            })
            .sum()
    }

    pub(crate) fn len_of(&self, pred: PredId) -> usize {
        match &self.preds[pred.0 as usize] {
            PredData::Rel(r) => r.len(),
            PredData::Lat(l) => l.len(),
        }
    }

    /// Turns on ascent counting for every lattice predicate.
    pub(crate) fn enable_ascent(&mut self) {
        for p in &mut self.preds {
            if let PredData::Lat(l) = p {
                l.enable_ascent();
            }
        }
    }

    /// Whether any lattice predicate is collecting ascent counters.
    pub(crate) fn ascent_enabled(&self) -> bool {
        self.preds
            .iter()
            .any(|p| matches!(p, PredData::Lat(l) if l.ascent.is_some()))
    }

    /// If the cell at `pred`/`key` has reached `threshold` strict
    /// increases and has not warned yet, marks it warned and returns its
    /// height. The solver turns this into an
    /// [`crate::trace::AscentWarning`].
    pub(crate) fn ascent_crossed(
        &mut self,
        pred: PredId,
        key: &[Value],
        threshold: u64,
    ) -> Option<u64> {
        let spill = &self.spill;
        let PredData::Lat(l) = &mut self.preds[pred.0 as usize] else {
            return None;
        };
        let id = {
            let l: &LatticeData = l;
            l.key_id(key, spill)?
        };
        let entry = l.ascent.as_mut()?.get_mut(&id)?;
        if entry.warned || entry.height < threshold {
            return None;
        }
        entry.warned = true;
        Some(entry.height)
    }

    /// Snapshot of every cell's ascent counters:
    /// `(predicate, key, joins, height, lattice-type name)`.
    pub(crate) fn ascent_cells(&self) -> Vec<(PredId, Row, u64, u64, &str)> {
        let mut out = Vec::new();
        for (i, p) in self.preds.iter().enumerate() {
            let PredData::Lat(l) = p else { continue };
            let Some(map) = &l.ascent else { continue };
            for (&id, e) in map {
                out.push((
                    PredId(i as u32),
                    l.key(id).into(),
                    e.joins,
                    e.height,
                    l.ops.name(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ValueLattice;
    use crate::ProgramBuilder;
    use flix_lattice::Parity;

    fn row(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&n| Value::Int(n)).collect()
    }

    fn rel_insert(r: &mut RelationData, spill: &mut SpillTable, vals: &[i64]) -> bool {
        r.insert(row(vals), spill).expect("no overflow").is_some()
    }

    #[test]
    fn relation_insert_dedups() {
        let mut spill = SpillTable::default();
        let mut r = RelationData::new(2);
        assert!(rel_insert(&mut r, &mut spill, &[1, 2]));
        assert!(!rel_insert(&mut r, &mut spill, &[1, 2]));
        assert!(rel_insert(&mut r, &mut spill, &[1, 3]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Value::Int(1), Value::Int(2)], &spill));
        assert_eq!(r.rows().count(), 2);
        assert_eq!(r.row(1), &[Value::Int(1), Value::Int(3)][..]);
    }

    #[test]
    fn relation_index_tracks_inserts() {
        let mut spill = SpillTable::default();
        let mut r = RelationData::new(2);
        r.register_index(vec![0]);
        rel_insert(&mut r, &mut spill, &[1, 2]);
        rel_insert(&mut r, &mut spill, &[1, 3]);
        rel_insert(&mut r, &mut spill, &[2, 4]);
        let hits = r
            .probe(&[0], &[Value::Int(1)], &spill)
            .expect("index exists");
        assert_eq!(hits.len(), 2);
        let misses = r
            .probe(&[0], &[Value::Int(9)], &spill)
            .expect("index exists");
        assert!(misses.is_empty());
        assert!(
            r.probe(&[1], &[Value::Int(2)], &spill).is_none(),
            "no such index"
        );
    }

    #[test]
    fn insert_refuses_when_row_ids_run_out() {
        let mut spill = SpillTable::default();
        let mut r = RelationData::new(1);
        // Simulate an at-capacity store; the guard fires before any
        // column is touched, so the inconsistent `len` is harmless here.
        r.len = u32::MAX as usize;
        let fault = r.insert(row(&[1]), &mut spill).unwrap_err();
        assert!(
            matches!(fault, InsertFault::Safety(Violation::StoreFull(_))),
            "got {fault:?}"
        );
    }

    #[test]
    fn encoding_round_trips_and_spills() {
        let mut spill = SpillTable::default();
        let values = [
            Value::Unit,
            Value::Bool(true),
            Value::Int(-7),
            Value::Int(i64::MAX), // too wide for an inline slot: spills
            Value::from("encoded-string"),
            Value::tag("Fin", Value::Int(3)),
            Value::tuple([Value::Int(1), Value::from("x")]),
            Value::set([Value::Int(1), Value::Int(2)]),
        ];
        for v in &values {
            let slot = encode_mut(v, &mut spill);
            assert_eq!(&decode(slot, &spill), v, "round trip of {v}");
            assert_eq!(try_encode(v, &spill), Some(slot), "canonical re-encode");
        }
        // Equal values encode to equal slots (dedup), distinct to distinct.
        let a = encode_mut(&Value::tag("Fin", Value::Int(3)), &mut spill);
        let b = encode_mut(&Value::tag("Fin", Value::Int(4)), &mut spill);
        assert_eq!(a, encode_mut(&Value::tag("Fin", Value::Int(3)), &mut spill));
        assert_ne!(a, b);
        // A value never stored is unencodable read-only.
        assert_eq!(
            try_encode(&Value::tag("Nowhere", Value::Unit), &spill),
            None
        );
    }

    fn join_ok(
        l: &mut LatticeData,
        spill: &mut SpillTable,
        key: &[Value],
        value: Value,
    ) -> Option<Value> {
        l.join(key, value, spill).expect("lattice ops are sound")
    }

    #[test]
    fn lattice_join_is_compact() {
        let mut spill = SpillTable::default();
        let mut l = LatticeData::new(crate::LatticeOps::of::<Parity>(), 1);
        let key = row(&[7]);
        assert_eq!(
            join_ok(&mut l, &mut spill, &key, Parity::Even.to_value()),
            Some(Parity::Even.to_value())
        );
        // Re-joining a smaller or equal element changes nothing.
        assert_eq!(
            join_ok(&mut l, &mut spill, &key, Parity::Even.to_value()),
            None
        );
        assert_eq!(
            join_ok(&mut l, &mut spill, &key, Parity::Bot.to_value()),
            None
        );
        // Joining an incomparable element lifts the single cell to Top.
        assert_eq!(
            join_ok(&mut l, &mut spill, &key, Parity::Odd.to_value()),
            Some(Parity::Top.to_value())
        );
        assert_eq!(l.len(), 1, "one cell per key: compactness");
        assert_eq!(l.value(&key, &spill), Some(&Parity::Top.to_value()));
    }

    #[test]
    fn bottom_is_never_stored() {
        let mut spill = SpillTable::default();
        let mut l = LatticeData::new(crate::LatticeOps::of::<Parity>(), 1);
        assert_eq!(
            join_ok(&mut l, &mut spill, &row(&[1]), Parity::Bot.to_value()),
            None
        );
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn join_catches_panicking_ops() {
        let ops = crate::LatticeOps::from_fns(
            "Evil",
            Value::Int(0),
            None,
            |_, _| panic!("leq exploded"),
            |a, _| a.clone(),
            |a, _| a.clone(),
        );
        let mut spill = SpillTable::default();
        let mut l = LatticeData::new(ops, 1);
        let fault = l.join(&row(&[1]), Value::Int(3), &mut spill).unwrap_err();
        match fault {
            InsertFault::Panic(p) => {
                assert_eq!(p.function, "Evil.leq");
                assert_eq!(p.payload, "leq exploded");
            }
            other => panic!("expected panic fault, got {other:?}"),
        }
        assert_eq!(l.len(), 0, "faulted insert leaves no cell behind");
    }

    #[test]
    fn join_detects_lub_not_upper_bound() {
        // A "lub" that always returns its left argument is not an upper
        // bound of an incomparable right argument.
        let ops = crate::LatticeOps::from_fns(
            "BadLub",
            Value::Int(i64::MIN),
            None,
            |a, b| a.as_int() <= b.as_int(),
            |a, _| a.clone(),
            |a, b| {
                if a.as_int() <= b.as_int() {
                    a.clone()
                } else {
                    b.clone()
                }
            },
        );
        let mut spill = SpillTable::default();
        let mut l = LatticeData::new(ops, 1);
        assert!(l
            .join(&row(&[1]), Value::Int(5), &mut spill)
            .expect("first join")
            .is_some());
        let fault = l.join(&row(&[1]), Value::Int(9), &mut spill).unwrap_err();
        assert!(
            matches!(
                fault,
                InsertFault::Safety(Violation::LubNotUpperBound(_, _))
            ),
            "got {fault:?}"
        );
    }

    #[test]
    fn join_detects_irreflexive_leq() {
        let ops = crate::LatticeOps::from_fns(
            "Irreflexive",
            Value::Int(i64::MIN),
            None,
            |a, b| a.as_int() < b.as_int(),
            |a, b| {
                if a.as_int() < b.as_int() {
                    b.clone()
                } else {
                    a.clone()
                }
            },
            |a, b| {
                if a.as_int() < b.as_int() {
                    a.clone()
                } else {
                    b.clone()
                }
            },
        );
        let mut spill = SpillTable::default();
        let mut l = LatticeData::new(ops, 1);
        let fault = l.join(&row(&[1]), Value::Int(5), &mut spill).unwrap_err();
        assert!(
            matches!(fault, InsertFault::Safety(Violation::NotReflexive(_))),
            "got {fault:?}"
        );
    }

    #[test]
    fn ascent_counters_track_joins_and_heights() {
        let mut spill = SpillTable::default();
        let mut l = LatticeData::new(crate::LatticeOps::of::<Parity>(), 1);
        l.enable_ascent();
        let key = row(&[7]);
        join_ok(&mut l, &mut spill, &key, Parity::Even.to_value()); // height 1
        join_ok(&mut l, &mut spill, &key, Parity::Even.to_value()); // no change
        join_ok(&mut l, &mut spill, &key, Parity::Odd.to_value()); // -> Top, height 2
        {
            let id = l.key_id(&key, &spill).expect("stored");
            let map = l.ascent.as_ref().expect("enabled");
            let entry = map.get(&id).expect("tracked");
            assert_eq!(entry.joins, 3);
            assert_eq!(entry.height, 2);
        }
        // Bottom joins are filtered before counting.
        join_ok(&mut l, &mut spill, &key, Parity::Bot.to_value());
        assert_eq!(l.ascent.as_ref().expect("enabled").len(), 1);
    }

    #[test]
    fn ascent_crossed_warns_once_per_cell() {
        let mut b = ProgramBuilder::new();
        let iv = b.lattice("IntVar", 2, crate::LatticeOps::of::<Parity>());
        let prog = b.build().expect("valid");
        let mut db = Database::for_program(&prog, true);
        db.enable_ascent();
        assert!(db.ascent_enabled());
        db.insert(iv, vec![Value::from("x"), Parity::Odd.to_value()])
            .expect("insert");
        db.insert(iv, vec![Value::from("x"), Parity::Even.to_value()])
            .expect("insert");
        let key = [Value::from("x")];
        assert_eq!(db.ascent_crossed(iv, &key, 3), None, "below threshold");
        assert_eq!(db.ascent_crossed(iv, &key, 2), Some(2));
        assert_eq!(db.ascent_crossed(iv, &key, 2), None, "warns once");
        let cells = db.ascent_cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].2, 2, "joins");
        assert_eq!(cells[0].3, 2, "height");
        assert_eq!(cells[0].4, "Parity");
    }

    #[test]
    fn database_insert_dispatches_by_kind() {
        let mut b = ProgramBuilder::new();
        let e = b.relation("E", 2);
        let iv = b.lattice("IntVar", 2, crate::LatticeOps::of::<Parity>());
        let prog = b.build().expect("valid");
        let mut db = Database::for_program(&prog, true);

        assert!(matches!(
            db.insert(e, vec![Value::Int(1), Value::Int(2)]),
            Ok(InsertOutcome::NewRow(_))
        ));
        assert!(matches!(
            db.insert(e, vec![Value::Int(1), Value::Int(2)]),
            Ok(InsertOutcome::Unchanged)
        ));
        assert!(matches!(
            db.insert(iv, vec![Value::from("x"), Parity::Odd.to_value()]),
            Ok(InsertOutcome::LatIncrease(_, _))
        ));
        assert_eq!(db.total_facts(), 2);
        assert_eq!(db.len_of(e), 1);
        assert_eq!(db.len_of(iv), 1);
    }

    #[test]
    fn cross_predicate_encodings_are_comparable() {
        // The same structured value inserted through two predicates must
        // land on the same spill slot, so kernels can join on it.
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 1);
        let q = b.relation("Q", 1);
        let prog = b.build().expect("valid");
        let mut db = Database::for_program(&prog, true);
        let v = Value::tag("Wrapped", Value::Int(1 << 62));
        db.insert(p, vec![v.clone()]).expect("insert");
        db.insert(q, vec![v.clone()]).expect("insert");
        let (PredData::Rel(rp), PredData::Rel(rq)) = (db.pred(p), db.pred(q)) else {
            unreachable!()
        };
        assert_eq!(rp.col(0)[0], rq.col(0)[0]);
    }
}
