//! The indexed fact database.
//!
//! Relations are stored as deduplicated tuple vectors with hash indexes on
//! the bound-column sets requested by the compiled rules; `lat` predicates
//! are stored as *compact* cell maps from key tuples (the first `n-1`
//! columns, §3.2's cell partition) to a single lattice element, so the
//! per-cell least-upper-bound compaction of the immediate consequence
//! operator is a constant-time map update.

use crate::ast::PredKind;
use crate::ops::OpsPanic;
use crate::program::Program;
use crate::verify::Violation;
use crate::{LatticeOps, PredId, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Why an insert failed: the user's lattice operations either panicked or
/// were caught violating a lattice law by the runtime sentinels (§7).
#[derive(Clone, Debug)]
pub(crate) enum InsertFault {
    /// A `leq`/`lub` closure panicked.
    Panic(OpsPanic),
    /// A runtime safety sentinel tripped.
    Safety(Violation),
}

impl From<OpsPanic> for InsertFault {
    fn from(p: OpsPanic) -> InsertFault {
        InsertFault::Panic(p)
    }
}

/// A stored tuple. Shared so that indexes and deltas can alias rows
/// without copying.
pub(crate) type Row = Arc<[Value]>;

/// Outcome of inserting one derived fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum InsertOutcome {
    /// The fact was already present (or was a lattice `⊥`): no change.
    Unchanged,
    /// A new relational tuple was added.
    NewRow(Row),
    /// A lattice cell strictly increased; carries the key and the *new*
    /// cell value — exactly the paper's `∆P` element `ga(P', S)` (§3.7).
    LatIncrease(Row, Value),
}

/// Storage for one relational predicate.
#[derive(Clone, Debug, Default)]
pub(crate) struct RelationData {
    rows: Vec<Row>,
    set: HashMap<Row, ()>,
    /// Hash indexes keyed by column set; values are row indices.
    indexes: HashMap<Vec<usize>, HashMap<Vec<Value>, Vec<u32>>>,
}

impl RelationData {
    fn insert(&mut self, row: Row) -> bool {
        if self.set.contains_key(&row) {
            return false;
        }
        let idx = self.rows.len() as u32;
        for (cols, index) in &mut self.indexes {
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            index.entry(key).or_default().push(idx);
        }
        self.set.insert(row.clone(), ());
        self.rows.push(row);
        true
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub(crate) fn contains(&self, row: &[Value]) -> bool {
        self.set.contains_key(row)
    }

    fn register_index(&mut self, cols: Vec<usize>) {
        self.indexes.entry(cols).or_default();
    }

    /// Returns the row indices matching `key` on `cols`, or `None` if no
    /// such index exists (the caller falls back to a scan).
    pub(crate) fn probe(&self, cols: &[usize], key: &[Value]) -> Option<&[u32]> {
        self.indexes
            .get(cols)
            .map(|index| index.get(key).map_or(&[][..], |v| &v[..]))
    }
}

/// Per-cell ascent counters, kept only when ascent telemetry is enabled
/// (see [`crate::trace::AscentConfig`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct AscentEntry {
    /// Joins absorbed by the cell (including no-change joins).
    pub(crate) joins: u64,
    /// Strict increases: the cell's height in its ascending chain.
    pub(crate) height: u64,
    /// Whether an [`crate::trace::AscentWarning`] already fired for this
    /// cell (each cell warns at most once per solve).
    pub(crate) warned: bool,
}

/// Updates a cell's ascent counters after a join, when telemetry is on.
fn note_ascent(ascent: &mut Option<HashMap<Row, AscentEntry>>, key: &Row, increased: bool) {
    let Some(map) = ascent else {
        return;
    };
    let entry = map.entry(key.clone()).or_default();
    entry.joins += 1;
    if increased {
        entry.height += 1;
    }
}

/// Storage for one lattice predicate: the compact cell map.
#[derive(Clone, Debug)]
pub(crate) struct LatticeData {
    ops: LatticeOps,
    cells: HashMap<Row, Value>,
    keys: Vec<Row>,
    indexes: HashMap<Vec<usize>, HashMap<Vec<Value>, Vec<u32>>>,
    /// `Some` only when ascent telemetry is enabled for this solve; the
    /// hot path then pays one map update per join, and nothing otherwise.
    ascent: Option<HashMap<Row, AscentEntry>>,
}

impl LatticeData {
    fn new(ops: LatticeOps) -> LatticeData {
        LatticeData {
            ops,
            cells: HashMap::new(),
            keys: Vec::new(),
            indexes: HashMap::new(),
            ascent: None,
        }
    }

    pub(crate) fn ops(&self) -> &LatticeOps {
        &self.ops
    }

    /// Joins `value` into the cell at `key`. Returns the new cell value on
    /// strict increase.
    ///
    /// This is the one place every lattice element passes through, so the
    /// runtime safety sentinels live here: after each `lub` the result must
    /// be an upper bound of both operands (otherwise the cell could
    /// *decrease*, breaking monotonicity of the fixpoint iteration), and a
    /// fresh cell value must satisfy `leq(v, v)` (reflexivity — a `leq`
    /// that fails it would later mis-classify the cell as increased).
    fn join(&mut self, key: Row, value: Value) -> Result<Option<Value>, InsertFault> {
        if self.ops.is_bottom(&value) {
            return Ok(None);
        }
        if let Some(cell) = self.cells.get_mut(&key) {
            if self.ops.try_leq(&value, cell)? {
                note_ascent(&mut self.ascent, &key, false);
                return Ok(None);
            }
            let joined = self.ops.try_lub(cell, &value)?;
            if !self.ops.try_leq(cell, &joined)? || !self.ops.try_leq(&value, &joined)? {
                return Err(InsertFault::Safety(Violation::LubNotUpperBound(
                    cell.clone(),
                    value,
                )));
            }
            *cell = joined.clone();
            note_ascent(&mut self.ascent, &key, true);
            return Ok(Some(joined));
        }
        if !self.ops.try_leq(&value, &value)? {
            return Err(InsertFault::Safety(Violation::NotReflexive(value)));
        }
        let idx = self.keys.len() as u32;
        for (cols, index) in &mut self.indexes {
            let ikey: Vec<Value> = cols.iter().map(|&c| key[c].clone()).collect();
            index.entry(ikey).or_default().push(idx);
        }
        note_ascent(&mut self.ascent, &key, true);
        self.keys.push(key.clone());
        self.cells.insert(key, value.clone());
        Ok(Some(value))
    }

    /// Turns on per-cell ascent counting (idempotent; counters that
    /// already exist — e.g. cloned from a prior resume — are kept).
    pub(crate) fn enable_ascent(&mut self) {
        if self.ascent.is_none() {
            self.ascent = Some(HashMap::new());
        }
    }

    pub(crate) fn keys(&self) -> &[Row] {
        &self.keys
    }

    pub(crate) fn value(&self, key: &[Value]) -> Option<&Value> {
        self.cells.get(key)
    }

    fn register_index(&mut self, cols: Vec<usize>) {
        self.indexes.entry(cols).or_default();
    }

    pub(crate) fn probe(&self, cols: &[usize], key: &[Value]) -> Option<&[u32]> {
        self.indexes
            .get(cols)
            .map(|index| index.get(key).map_or(&[][..], |v| &v[..]))
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&Row, &Value)> {
        self.keys.iter().map(move |k| {
            let v = self.cells.get(k).expect("key vector tracks cells");
            (k, v)
        })
    }
}

/// Storage for one predicate.
#[derive(Clone, Debug)]
pub(crate) enum PredData {
    Rel(RelationData),
    Lat(LatticeData),
}

/// The fact database: one [`PredData`] per declared predicate.
///
/// Index-probe and scan-fallback counters live with the evaluator (the
/// solver's per-rule profile), not here: each rule evaluation counts its
/// own probes locally, so workers never contend on shared counters.
///
/// `Clone` is the warm-start path of [`crate::incremental`]: resuming a
/// solve clones the prior solution's database (cheap — rows are
/// refcounted `Arc` slices and indexes copy without rehashing) instead of
/// re-deriving it. The clone keeps the index configuration it was built
/// with; a resume under a different `use_indexes` setting stays correct
/// because a missing index is always a scan fallback, never a wrong
/// probe.
#[derive(Clone, Debug)]
pub(crate) struct Database {
    preds: Vec<PredData>,
}

impl Database {
    /// Creates an empty database for `program`, registering the requested
    /// indexes (unless `use_indexes` is false, the ablation configuration).
    pub(crate) fn for_program(program: &Program, use_indexes: bool) -> Database {
        let mut preds: Vec<PredData> = program
            .preds
            .iter()
            .map(|decl| match &decl.kind {
                PredKind::Relation => PredData::Rel(RelationData::default()),
                PredKind::Lattice(ops) => PredData::Lat(LatticeData::new(ops.clone())),
            })
            .collect();
        if use_indexes {
            for (pred, col_sets) in &program.index_requests {
                for cols in col_sets {
                    match &mut preds[pred.0 as usize] {
                        PredData::Rel(r) => r.register_index(cols.clone()),
                        PredData::Lat(l) => l.register_index(cols.clone()),
                    }
                }
            }
        }
        Database { preds }
    }

    pub(crate) fn pred(&self, pred: PredId) -> &PredData {
        &self.preds[pred.0 as usize]
    }

    /// Inserts a derived tuple, interpreting the last column as a lattice
    /// element for `lat` predicates. Fails when the lattice operations
    /// panic or trip a safety sentinel (see [`LatticeData::join`]).
    pub(crate) fn insert(
        &mut self,
        pred: PredId,
        mut tuple: Vec<Value>,
    ) -> Result<InsertOutcome, InsertFault> {
        match &mut self.preds[pred.0 as usize] {
            PredData::Rel(r) => {
                let row: Row = tuple.into();
                if r.insert(row.clone()) {
                    Ok(InsertOutcome::NewRow(row))
                } else {
                    Ok(InsertOutcome::Unchanged)
                }
            }
            PredData::Lat(l) => {
                let value = tuple.pop().expect("lattice predicates have arity >= 1");
                let key: Row = tuple.into();
                match l.join(key.clone(), value)? {
                    Some(new_value) => Ok(InsertOutcome::LatIncrease(key, new_value)),
                    None => Ok(InsertOutcome::Unchanged),
                }
            }
        }
    }

    /// Total number of stored facts (rows plus non-bottom lattice cells) —
    /// the database-size proxy reported by the benchmark tables.
    /// Drops every predicate at or past `keep`, returning the truncated
    /// database. The demand rewrite appends its `demand$` relations after
    /// the original predicates, so truncating to the original count
    /// strips all rewrite machinery while preserving predicate ids.
    pub(crate) fn truncated(mut self, keep: usize) -> Database {
        self.preds.truncate(keep);
        self
    }

    pub(crate) fn total_facts(&self) -> usize {
        self.preds
            .iter()
            .map(|p| match p {
                PredData::Rel(r) => r.rows.len(),
                PredData::Lat(l) => l.keys.len(),
            })
            .sum()
    }

    pub(crate) fn len_of(&self, pred: PredId) -> usize {
        match &self.preds[pred.0 as usize] {
            PredData::Rel(r) => r.rows.len(),
            PredData::Lat(l) => l.keys.len(),
        }
    }

    /// Turns on ascent counting for every lattice predicate.
    pub(crate) fn enable_ascent(&mut self) {
        for p in &mut self.preds {
            if let PredData::Lat(l) = p {
                l.enable_ascent();
            }
        }
    }

    /// Whether any lattice predicate is collecting ascent counters.
    pub(crate) fn ascent_enabled(&self) -> bool {
        self.preds
            .iter()
            .any(|p| matches!(p, PredData::Lat(l) if l.ascent.is_some()))
    }

    /// If the cell at `pred`/`key` has reached `threshold` strict
    /// increases and has not warned yet, marks it warned and returns its
    /// height. The solver turns this into an
    /// [`crate::trace::AscentWarning`].
    pub(crate) fn ascent_crossed(
        &mut self,
        pred: PredId,
        key: &[Value],
        threshold: u64,
    ) -> Option<u64> {
        let PredData::Lat(l) = &mut self.preds[pred.0 as usize] else {
            return None;
        };
        let entry = l.ascent.as_mut()?.get_mut(key)?;
        if entry.warned || entry.height < threshold {
            return None;
        }
        entry.warned = true;
        Some(entry.height)
    }

    /// Snapshot of every cell's ascent counters:
    /// `(predicate, key, joins, height, lattice-type name)`.
    pub(crate) fn ascent_cells(&self) -> Vec<(PredId, Row, u64, u64, &str)> {
        let mut out = Vec::new();
        for (i, p) in self.preds.iter().enumerate() {
            let PredData::Lat(l) = p else { continue };
            let Some(map) = &l.ascent else { continue };
            for (key, e) in map {
                out.push((
                    PredId(i as u32),
                    key.clone(),
                    e.joins,
                    e.height,
                    l.ops.name(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ValueLattice;
    use crate::ProgramBuilder;
    use flix_lattice::Parity;

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&n| Value::Int(n)).collect()
    }

    #[test]
    fn relation_insert_dedups() {
        let mut r = RelationData::default();
        assert!(r.insert(row(&[1, 2])));
        assert!(!r.insert(row(&[1, 2])));
        assert!(r.insert(row(&[1, 3])));
        assert_eq!(r.rows().len(), 2);
        assert!(r.contains(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn relation_index_tracks_inserts() {
        let mut r = RelationData::default();
        r.register_index(vec![0]);
        r.insert(row(&[1, 2]));
        r.insert(row(&[1, 3]));
        r.insert(row(&[2, 4]));
        let hits = r.probe(&[0], &[Value::Int(1)]).expect("index exists");
        assert_eq!(hits.len(), 2);
        let misses = r.probe(&[0], &[Value::Int(9)]).expect("index exists");
        assert!(misses.is_empty());
        assert!(r.probe(&[1], &[Value::Int(2)]).is_none(), "no such index");
    }

    fn join_ok(l: &mut LatticeData, key: Row, value: Value) -> Option<Value> {
        l.join(key, value).expect("lattice ops are sound")
    }

    #[test]
    fn lattice_join_is_compact() {
        let mut l = LatticeData::new(crate::LatticeOps::of::<Parity>());
        let key = row(&[7]);
        assert_eq!(
            join_ok(&mut l, key.clone(), Parity::Even.to_value()),
            Some(Parity::Even.to_value())
        );
        // Re-joining a smaller or equal element changes nothing.
        assert_eq!(join_ok(&mut l, key.clone(), Parity::Even.to_value()), None);
        assert_eq!(join_ok(&mut l, key.clone(), Parity::Bot.to_value()), None);
        // Joining an incomparable element lifts the single cell to Top.
        assert_eq!(
            join_ok(&mut l, key.clone(), Parity::Odd.to_value()),
            Some(Parity::Top.to_value())
        );
        assert_eq!(l.keys().len(), 1, "one cell per key: compactness");
        assert_eq!(l.value(&key), Some(&Parity::Top.to_value()));
    }

    #[test]
    fn bottom_is_never_stored() {
        let mut l = LatticeData::new(crate::LatticeOps::of::<Parity>());
        assert_eq!(join_ok(&mut l, row(&[1]), Parity::Bot.to_value()), None);
        assert!(l.keys().is_empty());
    }

    #[test]
    fn join_catches_panicking_ops() {
        let ops = crate::LatticeOps::from_fns(
            "Evil",
            Value::Int(0),
            None,
            |_, _| panic!("leq exploded"),
            |a, _| a.clone(),
            |a, _| a.clone(),
        );
        let mut l = LatticeData::new(ops);
        let fault = l.join(row(&[1]), Value::Int(3)).unwrap_err();
        match fault {
            InsertFault::Panic(p) => {
                assert_eq!(p.function, "Evil.leq");
                assert_eq!(p.payload, "leq exploded");
            }
            other => panic!("expected panic fault, got {other:?}"),
        }
        assert!(l.keys().is_empty(), "faulted insert leaves no cell behind");
    }

    #[test]
    fn join_detects_lub_not_upper_bound() {
        // A "lub" that always returns its left argument is not an upper
        // bound of an incomparable right argument.
        let ops = crate::LatticeOps::from_fns(
            "BadLub",
            Value::Int(i64::MIN),
            None,
            |a, b| a.as_int() <= b.as_int(),
            |a, _| a.clone(),
            |a, b| {
                if a.as_int() <= b.as_int() {
                    a.clone()
                } else {
                    b.clone()
                }
            },
        );
        let mut l = LatticeData::new(ops);
        assert!(l
            .join(row(&[1]), Value::Int(5))
            .expect("first join")
            .is_some());
        let fault = l.join(row(&[1]), Value::Int(9)).unwrap_err();
        assert!(
            matches!(
                fault,
                InsertFault::Safety(Violation::LubNotUpperBound(_, _))
            ),
            "got {fault:?}"
        );
    }

    #[test]
    fn join_detects_irreflexive_leq() {
        let ops = crate::LatticeOps::from_fns(
            "Irreflexive",
            Value::Int(i64::MIN),
            None,
            |a, b| a.as_int() < b.as_int(),
            |a, b| {
                if a.as_int() < b.as_int() {
                    b.clone()
                } else {
                    a.clone()
                }
            },
            |a, b| {
                if a.as_int() < b.as_int() {
                    a.clone()
                } else {
                    b.clone()
                }
            },
        );
        let mut l = LatticeData::new(ops);
        let fault = l.join(row(&[1]), Value::Int(5)).unwrap_err();
        assert!(
            matches!(fault, InsertFault::Safety(Violation::NotReflexive(_))),
            "got {fault:?}"
        );
    }

    #[test]
    fn ascent_counters_track_joins_and_heights() {
        let mut l = LatticeData::new(crate::LatticeOps::of::<Parity>());
        l.enable_ascent();
        let key = row(&[7]);
        join_ok(&mut l, key.clone(), Parity::Even.to_value()); // height 1
        join_ok(&mut l, key.clone(), Parity::Even.to_value()); // no change
        join_ok(&mut l, key.clone(), Parity::Odd.to_value()); // -> Top, height 2
        {
            let map = l.ascent.as_ref().expect("enabled");
            let entry = map.get(&key[..]).expect("tracked");
            assert_eq!(entry.joins, 3);
            assert_eq!(entry.height, 2);
        }
        // Bottom joins are filtered before counting.
        join_ok(&mut l, key.clone(), Parity::Bot.to_value());
        assert_eq!(l.ascent.as_ref().expect("enabled").len(), 1);
    }

    #[test]
    fn ascent_crossed_warns_once_per_cell() {
        let mut b = ProgramBuilder::new();
        let iv = b.lattice("IntVar", 2, crate::LatticeOps::of::<Parity>());
        let prog = b.build().expect("valid");
        let mut db = Database::for_program(&prog, true);
        db.enable_ascent();
        assert!(db.ascent_enabled());
        db.insert(iv, vec![Value::from("x"), Parity::Odd.to_value()])
            .expect("insert");
        db.insert(iv, vec![Value::from("x"), Parity::Even.to_value()])
            .expect("insert");
        let key = [Value::from("x")];
        assert_eq!(db.ascent_crossed(iv, &key, 3), None, "below threshold");
        assert_eq!(db.ascent_crossed(iv, &key, 2), Some(2));
        assert_eq!(db.ascent_crossed(iv, &key, 2), None, "warns once");
        let cells = db.ascent_cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].2, 2, "joins");
        assert_eq!(cells[0].3, 2, "height");
        assert_eq!(cells[0].4, "Parity");
    }

    #[test]
    fn database_insert_dispatches_by_kind() {
        let mut b = ProgramBuilder::new();
        let e = b.relation("E", 2);
        let iv = b.lattice("IntVar", 2, crate::LatticeOps::of::<Parity>());
        let prog = b.build().expect("valid");
        let mut db = Database::for_program(&prog, true);

        assert!(matches!(
            db.insert(e, vec![Value::Int(1), Value::Int(2)]),
            Ok(InsertOutcome::NewRow(_))
        ));
        assert!(matches!(
            db.insert(e, vec![Value::Int(1), Value::Int(2)]),
            Ok(InsertOutcome::Unchanged)
        ));
        assert!(matches!(
            db.insert(iv, vec![Value::from("x"), Parity::Odd.to_value()]),
            Ok(InsertOutcome::LatIncrease(_, _))
        ));
        assert_eq!(db.total_facts(), 2);
        assert_eq!(db.len_of(e), 1);
        assert_eq!(db.len_of(iv), 1);
    }
}
