//! Solver observability: per-rule / per-stratum work profiles, the
//! pluggable [`Observer`] trait, and the stable metrics-JSON rendering.
//!
//! The paper's §6 evaluation reasons from per-analysis work profiles
//! (rounds, derivations, strategy ablations); this module is the
//! instrument that produces them. Every solve populates
//! [`SolveStats::per_rule`] and [`SolveStats::per_stratum`] so callers can
//! see *which* rule or stratum burns the time, and [`MetricsReport`]
//! renders the whole profile as a stable machine-readable JSON document
//! (schema `flix-metrics/1`, specified in DESIGN.md §10) consumed by
//! `flixr --metrics-json`, the benchmark harness, and CI.

use crate::guard::BudgetKind;
use crate::solver::SolveStats;
use crate::trace::AscentWarning;
use std::fmt::Write as _;

/// Work profile of one rule, accumulated across all rounds of a solve.
///
/// `inserted` (net database changes, credited to the rule that first
/// changed the fact in its round) is strategy-invariant: naïve and
/// semi-naïve evaluation, sequential or parallel, credit the same rules.
/// `evaluations`, `derived`, `probes`, `scans`, and `eval_ns` describe the
/// work a particular strategy performed and differ across strategies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// The rule index within the program (the order rules were added).
    pub rule: usize,
    /// The name of the rule's head predicate.
    pub head: String,
    /// Evaluations of this rule (each delta variant counts separately).
    pub evaluations: u64,
    /// Gross head tuples produced (before deduplication and subsumption).
    pub derived: u64,
    /// Net database changes: new tuples, plus lattice cells this rule was
    /// the first to strictly increase in a round.
    pub inserted: u64,
    /// Index probes performed while evaluating this rule's body.
    pub probes: u64,
    /// Full-scan fallbacks while evaluating this rule's body.
    pub scans: u64,
    /// Cumulative wall-clock time spent evaluating this rule, in
    /// nanoseconds.
    pub eval_ns: u64,
}

/// Work profile of one stratum: its rounds and how fast they converged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StratumStats {
    /// The stratum index in evaluation order (0-based).
    pub stratum: usize,
    /// Fixed-point rounds executed in this stratum.
    pub rounds: u64,
    /// Net database changes per round, in round order: distinct new
    /// tuples plus distinct lattice cells that strictly increased (a cell
    /// climbing through several values within one round counts once).
    /// The final entry is `0` for a converged stratum (the round that
    /// observed no change).
    pub delta_sizes: Vec<u64>,
}

/// One rule evaluation, as reported to [`Observer::rule_evaluated`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleEvaluated {
    /// The stratum being evaluated.
    pub stratum: usize,
    /// The global round number (counting across strata, 1-based).
    pub round: u64,
    /// The rule index within the program.
    pub rule: usize,
    /// The semi-naïve delta variant evaluated, or `None` for a full
    /// (naïve or seed-round) evaluation.
    pub variant: Option<usize>,
    /// Head tuples produced by this evaluation.
    pub derived: u64,
    /// Index probes performed.
    pub probes: u64,
    /// Full-scan fallbacks.
    pub scans: u64,
    /// Wall-clock time of the evaluation, in nanoseconds.
    pub eval_ns: u64,
}

/// A pluggable listener for solver progress events.
///
/// Attach one with [`crate::Solver::observer`]. All callbacks fire on the
/// thread driving the solve (never from worker threads: parallel rule
/// evaluations are reported after their round is merged, in deterministic
/// task order), so implementations need no internal ordering logic. Every
/// method has a no-op default body, and the solver skips all bookkeeping
/// branches when no observer is attached, keeping the hot path free.
pub trait Observer: Send + Sync {
    /// A fixed-point round is starting. `round` is the global round
    /// number (1-based, counting across strata); `facts` is the database
    /// size (rows plus non-bottom lattice cells) entering the round.
    fn round_started(&self, stratum: usize, round: u64, facts: u64) {
        let _ = (stratum, round, facts);
    }

    /// One rule evaluation finished (full body or one delta variant).
    fn rule_evaluated(&self, event: &RuleEvaluated) {
        let _ = event;
    }

    /// A stratum reached its fixed point after `rounds` rounds.
    fn stratum_converged(&self, stratum: usize, rounds: u64) {
        let _ = stratum;
        let _ = rounds;
    }

    /// The round-granularity budget check ran; `exceeded` carries the
    /// tripped limit, or `None` when the solve may continue.
    fn budget_checked(&self, stratum: usize, exceeded: Option<&BudgetKind>) {
        let _ = stratum;
        let _ = exceeded;
    }

    /// A `resume` run is starting, before the delta is applied.
    /// `delta_entries` is the number of entries in the update.
    fn resume_started(&self, delta_entries: usize) {
        let _ = delta_entries;
    }

    /// The run finished — fired exactly once per `solve`, `resume`, or
    /// `solve_query` call, on success *and* on guarded failure, with the
    /// final statistics (for `solve_query`, already re-aggregated onto
    /// the original rules). External observers can bracket runs with
    /// this instead of wrapping the call site.
    fn solve_finished(&self, stats: &SolveStats) {
        let _ = stats;
    }

    /// A lattice cell crossed the configured ascending-chain height
    /// threshold (see [`crate::AscentConfig::warn_height`]). Non-fatal:
    /// the solve continues. Fires at most once per cell per run.
    fn ascent_warning(&self, warning: &AscentWarning) {
        let _ = warning;
    }
}

/// One solver run plus the run metadata needed for a self-describing
/// metrics record. Render a batch with [`render_metrics_json`].
#[derive(Clone, Debug)]
pub struct MetricsReport<'a> {
    /// A label identifying the run (an input file, a benchmark id, ...).
    pub name: &'a str,
    /// The evaluation strategy, as reported by
    /// [`crate::Strategy::name`].
    pub strategy: &'a str,
    /// The worker-thread count the solver ran with.
    pub threads: usize,
    /// The run's statistics, including the per-rule and per-stratum
    /// breakdowns.
    pub stats: &'a SolveStats,
}

/// The identifier of the metrics JSON schema emitted by
/// [`render_metrics_json`] (documented in DESIGN.md §10).
pub const METRICS_SCHEMA: &str = "flix-metrics/1";

/// Renders a batch of runs as the stable `flix-metrics/1` JSON document:
///
/// ```json
/// {"schema": "flix-metrics/1", "runs": [ ... ]}
/// ```
///
/// The output is deterministic (object keys in a fixed order, runs in
/// input order) and uses only integers and strings, so byte-level diffs
/// of two reports are meaningful.
pub fn render_metrics_json(reports: &[MetricsReport<'_>]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": ");
    push_json_string(&mut out, METRICS_SCHEMA);
    out.push_str(",\n  \"runs\": [");
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_run(&mut out, report);
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn push_run(out: &mut String, report: &MetricsReport<'_>) {
    let s = report.stats;
    out.push_str("{\"name\": ");
    push_json_string(out, report.name);
    out.push_str(", \"strategy\": ");
    push_json_string(out, report.strategy);
    let _ = write!(
        out,
        ", \"threads\": {}, \"wall_ns\": {}, \"rounds\": {}, \
         \"rule_evaluations\": {}, \"facts_derived\": {}, \
         \"facts_inserted\": {}, \"index_probes\": {}, \
         \"scan_fallbacks\": {}, \"strata\": {}, \"total_facts\": {}",
        report.threads,
        s.wall_ns,
        s.rounds,
        s.rule_evaluations,
        s.facts_derived,
        s.facts_inserted,
        s.index_probes,
        s.scan_fallbacks,
        s.strata,
        s.total_facts,
    );
    out.push_str(", \"per_rule\": [");
    for (i, r) in s.per_rule.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"rule\": ");
        let _ = write!(out, "{}", r.rule);
        out.push_str(", \"head\": ");
        push_json_string(out, &r.head);
        let _ = write!(
            out,
            ", \"evaluations\": {}, \"derived\": {}, \"inserted\": {}, \
             \"probes\": {}, \"scans\": {}, \"eval_ns\": {}}}",
            r.evaluations, r.derived, r.inserted, r.probes, r.scans, r.eval_ns,
        );
    }
    out.push_str("], \"per_stratum\": [");
    for (i, st) in s.per_stratum.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"stratum\": {}, \"rounds\": {}, \"delta_sizes\": [",
            st.stratum, st.rounds,
        );
        for (j, d) in st.delta_sizes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{d}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// Escapes and quotes `s` as a JSON string.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An owned [`MetricsReport`]: one recorded run that outlives the solve
/// that produced it. Both `flixr --metrics-json` and the benchmark
/// harness's metrics registry collect these and render them through
/// [`write_metrics_json`], so the `flix-metrics/1` schema has a single
/// producer and cannot drift.
#[derive(Clone, Debug)]
pub struct OwnedMetricsReport {
    /// A label identifying the run (an input file, a benchmark id, ...).
    pub name: String,
    /// The evaluation strategy, as reported by [`crate::Strategy::name`].
    pub strategy: String,
    /// The worker-thread count the solver ran with.
    pub threads: usize,
    /// The run's statistics.
    pub stats: SolveStats,
}

impl OwnedMetricsReport {
    /// Borrows this record as a renderable [`MetricsReport`].
    pub fn as_report(&self) -> MetricsReport<'_> {
        MetricsReport {
            name: &self.name,
            strategy: &self.strategy,
            threads: self.threads,
            stats: &self.stats,
        }
    }
}

/// Renders `reports` as one `flix-metrics/1` document and writes it to
/// `path` — the single exit point for every metrics file the project
/// produces (`flixr --metrics-json`, bench `--metrics-json`, CI).
pub fn write_metrics_json(path: &str, reports: &[OwnedMetricsReport]) -> std::io::Result<()> {
    let borrowed: Vec<MetricsReport<'_>> = reports.iter().map(|r| r.as_report()).collect();
    std::fs::write(path, render_metrics_json(&borrowed))
}

/// Renders the per-rule profile as a ranked, human-readable table
/// (hottest rule first, by cumulative evaluation time), as printed by
/// `flixr --profile`.
pub fn render_profile_table(stats: &SolveStats) -> String {
    let mut rules: Vec<&RuleStats> = stats.per_rule.iter().collect();
    rules.sort_by(|a, b| b.eval_ns.cmp(&a.eval_ns).then(a.rule.cmp(&b.rule)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>8} {:>10} {:>10} {:>10} {:>7} {:>10}",
        "rule", "head", "evals", "derived", "inserted", "probes", "scans", "time"
    );
    for r in &rules {
        let _ = writeln!(
            out,
            "{:<6} {:<20} {:>8} {:>10} {:>10} {:>10} {:>7} {:>10}",
            format!("#{}", r.rule),
            r.head,
            r.evaluations,
            r.derived,
            r.inserted,
            r.probes,
            r.scans,
            format_ns(r.eval_ns),
        );
    }
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>8} {:>10} {:>10} {:>10} {:>7} {:>10}",
        "total",
        "",
        stats.rule_evaluations,
        stats.facts_derived,
        stats.facts_inserted,
        stats.index_probes,
        stats.scan_fallbacks,
        format_ns(stats.wall_ns),
    );
    let _ = writeln!(
        out,
        "rounds: {}  strata: {}  total facts: {}",
        stats.rounds, stats.strata, stats.total_facts
    );
    out
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn report_renders_stable_schema() {
        let mut stats = SolveStats::default();
        stats.per_rule.push(RuleStats {
            rule: 0,
            head: "Path".into(),
            evaluations: 3,
            derived: 10,
            inserted: 4,
            probes: 7,
            scans: 1,
            eval_ns: 1234,
        });
        stats.per_stratum.push(StratumStats {
            stratum: 0,
            rounds: 2,
            delta_sizes: vec![4, 0],
        });
        let json = render_metrics_json(&[MetricsReport {
            name: "unit",
            strategy: "semi-naive",
            threads: 1,
            stats: &stats,
        }]);
        assert!(json.contains("\"schema\": \"flix-metrics/1\""), "{json}");
        assert!(json.contains("\"head\": \"Path\""), "{json}");
        assert!(json.contains("\"delta_sizes\": [4, 0]"), "{json}");
        // No trailing commas, balanced brackets.
        assert!(!json.contains(",]") && !json.contains(",}"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn profile_table_ranks_by_time() {
        let mut stats = SolveStats::default();
        for (i, ns) in [(0usize, 10u64), (1, 5_000_000), (2, 900)] {
            stats.per_rule.push(RuleStats {
                rule: i,
                head: format!("P{i}"),
                eval_ns: ns,
                ..RuleStats::default()
            });
        }
        let table = render_profile_table(&stats);
        let p1 = table.find("#1").expect("#1 present");
        let p2 = table.find("#2").expect("#2 present");
        let p0 = table.find("#0").expect("#0 present");
        assert!(p1 < p2 && p2 < p0, "hottest first:\n{table}");
        assert!(table.contains("5.00ms"), "{table}");
    }
}
