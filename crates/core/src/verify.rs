//! Safety verification of lattices and functions (§7 of the paper).
//!
//! "A FLIX programmer may inadvertently violate one or more of the
//! required properties when specifying a lattice or function. We plan to
//! investigate the use of automatic program verification techniques to
//! guarantee that FLIX programs are meaningful." This module is that
//! guarantee in testing form: given sample elements for each lattice, it
//! checks the complete-lattice laws of every `lat` predicate's
//! [`LatticeOps`] and the strictness/monotonicity obligations of
//! functions used as transfer functions and filters.
//!
//! The engine cannot see *through* a [`LatticeOps`] closure, so the check
//! is property-based: exhaustive over the provided samples (a proof when
//! the samples enumerate a finite lattice, a refutation search otherwise),
//! exactly like [`flix_lattice::checks`] but at the dynamic-value level
//! where the surface language's interpreted lattices live.

use crate::{LatticeOps, Value};
use std::fmt;

/// A violation found by [`check_lattice_ops`] or the function checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// `leq` is not reflexive at the element.
    NotReflexive(Value),
    /// `leq` is not antisymmetric at the pair (both directions hold but
    /// the values differ).
    NotAntisymmetric(Value, Value),
    /// `leq` is not transitive at the triple.
    NotTransitive(Value, Value, Value),
    /// `bottom()` is not below the element.
    BottomNotLeast(Value),
    /// `top()` is not above the element.
    TopNotGreatest(Value),
    /// `lub(a, b)` is not an upper bound of the pair.
    LubNotUpperBound(Value, Value),
    /// `lub(a, b)` is not the least sampled upper bound; carries the
    /// smaller upper bound found.
    LubNotLeast(Value, Value, Value),
    /// `glb(a, b)` is not a lower bound of the pair.
    GlbNotLowerBound(Value, Value),
    /// `glb(a, b)` is not the greatest sampled lower bound.
    GlbNotGreatest(Value, Value, Value),
    /// A function is not monotone: the inputs are ordered, the outputs
    /// are not.
    NotMonotone {
        /// Inputs before the bump.
        lo: Vec<Value>,
        /// Inputs after bumping one argument up the order.
        hi: Vec<Value>,
    },
    /// A function applied to `⊥` did not return `⊥`.
    NotStrict(Vec<Value>),
    /// A filter function returned a non-boolean value.
    FilterNotBoolean(Vec<Value>, Value),
    /// A filter is not monotone over `false < true`.
    FilterNotMonotone {
        /// Inputs before the bump.
        lo: Vec<Value>,
        /// Inputs after the bump.
        hi: Vec<Value>,
    },
    /// A choice function returned something other than a set of tuples of
    /// the expected arity.
    ChoiceMalformed(Vec<Value>, Value),
    /// A predicate's fact store ran out of row ids (the columnar store
    /// addresses rows with `u32` indices). Carries the row count at
    /// which the insert was refused.
    StoreFull(u64),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Violation::*;
        match self {
            NotReflexive(a) => write!(f, "leq is not reflexive at {a}"),
            NotAntisymmetric(a, b) => write!(f, "leq is not antisymmetric at {a}, {b}"),
            NotTransitive(a, b, c) => {
                write!(f, "leq is not transitive at {a} ⊑ {b} ⊑ {c}")
            }
            BottomNotLeast(a) => write!(f, "bottom is not below {a}"),
            TopNotGreatest(a) => write!(f, "top is not above {a}"),
            LubNotUpperBound(a, b) => write!(f, "lub({a}, {b}) is not an upper bound"),
            LubNotLeast(a, b, u) => {
                write!(
                    f,
                    "lub({a}, {b}) is not least: {u} is a smaller upper bound"
                )
            }
            GlbNotLowerBound(a, b) => write!(f, "glb({a}, {b}) is not a lower bound"),
            GlbNotGreatest(a, b, l) => {
                write!(
                    f,
                    "glb({a}, {b}) is not greatest: {l} is a larger lower bound"
                )
            }
            NotMonotone { lo, hi } => write!(
                f,
                "function is not monotone: f({lo:?}) ⋢ f({hi:?}) though inputs are ordered"
            ),
            NotStrict(args) => write!(f, "function is not strict on {args:?}"),
            FilterNotBoolean(args, out) => {
                write!(f, "filter returned non-boolean {out} on {args:?}")
            }
            FilterNotMonotone { lo, hi } => write!(
                f,
                "filter is not monotone: true at {lo:?} but false at {hi:?}"
            ),
            ChoiceMalformed(args, out) => {
                write!(
                    f,
                    "choice function returned malformed result {out} on {args:?}"
                )
            }
            StoreFull(rows) => {
                write!(
                    f,
                    "fact store is full: row-id capacity reached at {rows} rows"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Checks the complete-lattice laws of `ops` over the sampled elements.
///
/// The samples should include `ops.bottom()` (it is added if absent).
/// Runs `O(n^3)` operations over the sample set.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_lattice_ops(ops: &LatticeOps, samples: &[Value]) -> Result<(), Violation> {
    let mut elems: Vec<Value> = samples.to_vec();
    if !elems.contains(ops.bottom()) {
        elems.push(ops.bottom().clone());
    }
    if let Some(top) = ops.top() {
        if !elems.contains(top) {
            elems.push(top.clone());
        }
    }

    for a in &elems {
        if !ops.leq(a, a) {
            return Err(Violation::NotReflexive(a.clone()));
        }
        if !ops.leq(ops.bottom(), a) {
            return Err(Violation::BottomNotLeast(a.clone()));
        }
        if let Some(top) = ops.top() {
            if !ops.leq(a, top) {
                return Err(Violation::TopNotGreatest(a.clone()));
            }
        }
    }
    for a in &elems {
        for b in &elems {
            if ops.leq(a, b) && ops.leq(b, a) && a != b {
                return Err(Violation::NotAntisymmetric(a.clone(), b.clone()));
            }
            let j = ops.lub(a, b);
            if !ops.leq(a, &j) || !ops.leq(b, &j) {
                return Err(Violation::LubNotUpperBound(a.clone(), b.clone()));
            }
            let m = ops.glb(a, b);
            if !ops.leq(&m, a) || !ops.leq(&m, b) {
                return Err(Violation::GlbNotLowerBound(a.clone(), b.clone()));
            }
            for c in &elems {
                if ops.leq(a, b) && ops.leq(b, c) && !ops.leq(a, c) {
                    return Err(Violation::NotTransitive(a.clone(), b.clone(), c.clone()));
                }
                if ops.leq(a, c) && ops.leq(b, c) && !ops.leq(&j, c) {
                    return Err(Violation::LubNotLeast(a.clone(), b.clone(), c.clone()));
                }
                if ops.leq(c, a) && ops.leq(c, b) && !ops.leq(c, &m) {
                    return Err(Violation::GlbNotGreatest(a.clone(), b.clone(), c.clone()));
                }
            }
        }
    }
    Ok(())
}

/// Checks that an n-ary transfer function over `ops` is strict (§3.3:
/// `f(..., ⊥, ...) = ⊥`) and monotone in every argument, over all
/// argument vectors drawn from the samples.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_transfer_function(
    ops: &LatticeOps,
    arity: usize,
    f: impl Fn(&[Value]) -> Value,
    samples: &[Value],
) -> Result<(), Violation> {
    let elems = with_bottom(ops, samples);
    for args in combinations(&elems, arity) {
        let out = f(&args);
        if args.iter().any(|a| ops.is_bottom(a)) && !ops.is_bottom(&out) {
            return Err(Violation::NotStrict(args.clone()));
        }
        for i in 0..arity {
            for e in &elems {
                if !ops.leq(&args[i], e) {
                    continue;
                }
                let mut bumped = args.clone();
                bumped[i] = e.clone();
                if !ops.leq(&out, &f(&bumped)) {
                    return Err(Violation::NotMonotone {
                        lo: args.clone(),
                        hi: bumped,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks that an n-ary filter function over `ops` returns booleans and
/// is monotone over `false < true` (§3.3).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_filter_function(
    ops: &LatticeOps,
    arity: usize,
    f: impl Fn(&[Value]) -> Value,
    samples: &[Value],
) -> Result<(), Violation> {
    let elems = with_bottom(ops, samples);
    let eval = |args: &[Value]| -> Result<bool, Violation> {
        match f(args) {
            Value::Bool(b) => Ok(b),
            other => Err(Violation::FilterNotBoolean(args.to_vec(), other)),
        }
    };
    for args in combinations(&elems, arity) {
        let out = eval(&args)?;
        if !out {
            continue;
        }
        // true must stay true when any argument moves up the order.
        for i in 0..arity {
            for e in &elems {
                if !ops.leq(&args[i], e) {
                    continue;
                }
                let mut bumped = args.clone();
                bumped[i] = e.clone();
                if !eval(&bumped)? {
                    return Err(Violation::FilterNotMonotone {
                        lo: args.clone(),
                        hi: bumped,
                    });
                }
            }
        }
    }
    Ok(())
}

fn with_bottom(ops: &LatticeOps, samples: &[Value]) -> Vec<Value> {
    let mut elems: Vec<Value> = samples.to_vec();
    if !elems.contains(ops.bottom()) {
        elems.push(ops.bottom().clone());
    }
    elems
}

/// All length-`arity` argument vectors over `elems` (an odometer walk).
fn combinations(elems: &[Value], arity: usize) -> Vec<Vec<Value>> {
    if elems.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut idx = vec![0usize; arity];
    loop {
        out.push(idx.iter().map(|&i| elems[i].clone()).collect());
        let mut k = 0;
        loop {
            if k == arity {
                return out;
            }
            idx[k] += 1;
            if idx[k] < elems.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ValueLattice;
    use flix_lattice::{FiniteLattice, Parity};

    fn parity_samples() -> Vec<Value> {
        Parity::elements()
            .iter()
            .map(ValueLattice::to_value)
            .collect()
    }

    #[test]
    fn parity_ops_pass() {
        let ops = LatticeOps::of::<Parity>();
        check_lattice_ops(&ops, &parity_samples()).expect("parity is a lattice");
    }

    #[test]
    fn broken_lub_is_caught() {
        // A "lattice" whose lub always returns bottom.
        let ops = LatticeOps::from_fns(
            "Broken",
            Value::Int(0),
            None,
            |a, b| a.as_int() <= b.as_int(),
            |_, _| Value::Int(0),
            |a, _| a.clone(),
        );
        let samples = vec![Value::Int(0), Value::Int(1), Value::Int(2)];
        let err = check_lattice_ops(&ops, &samples).expect_err("must reject");
        assert!(matches!(err, Violation::LubNotUpperBound(_, _)), "{err}");
    }

    #[test]
    fn sum_is_strict_and_monotone() {
        let ops = LatticeOps::of::<Parity>();
        check_transfer_function(
            &ops,
            2,
            |args| {
                Parity::expect_from(&args[0])
                    .sum(&Parity::expect_from(&args[1]))
                    .to_value()
            },
            &parity_samples(),
        )
        .expect("sum is a lawful transfer function");
    }

    #[test]
    fn constant_top_is_not_strict() {
        let ops = LatticeOps::of::<Parity>();
        let err = check_transfer_function(&ops, 1, |_| Parity::Top.to_value(), &parity_samples())
            .expect_err("constant ⊤ violates strictness");
        assert!(matches!(err, Violation::NotStrict(_)), "{err}");
    }

    #[test]
    fn non_monotone_transfer_is_caught() {
        let ops = LatticeOps::of::<Parity>();
        // "Swap": maps Even to Top and Top to Even — order-reversing
        // between comparable elements.
        let err = check_transfer_function(
            &ops,
            1,
            |args| {
                match Parity::expect_from(&args[0]) {
                    Parity::Even => Parity::Top,
                    Parity::Top => Parity::Even,
                    other => other,
                }
                .to_value()
            },
            &parity_samples(),
        )
        .expect_err("must reject");
        assert!(matches!(err, Violation::NotMonotone { .. }), "{err}");
    }

    #[test]
    fn is_maybe_zero_is_a_lawful_filter() {
        let ops = LatticeOps::of::<Parity>();
        check_filter_function(
            &ops,
            1,
            |args| Value::Bool(Parity::expect_from(&args[0]).is_maybe_zero()),
            &parity_samples(),
        )
        .expect("isMaybeZero is monotone");
    }

    #[test]
    fn anti_monotone_filter_is_caught() {
        let ops = LatticeOps::of::<Parity>();
        let err = check_filter_function(
            &ops,
            1,
            |args| Value::Bool(Parity::expect_from(&args[0]) != Parity::Top),
            &parity_samples(),
        )
        .expect_err("'is not top' is anti-monotone");
        assert!(matches!(err, Violation::FilterNotMonotone { .. }), "{err}");
    }

    #[test]
    fn filter_returning_ints_is_caught() {
        let ops = LatticeOps::of::<Parity>();
        let err = check_filter_function(&ops, 1, |_| Value::Int(1), &parity_samples())
            .expect_err("must reject");
        assert!(matches!(err, Violation::FilterNotBoolean(_, _)), "{err}");
    }

    #[test]
    fn violations_display() {
        let v = Violation::NotStrict(vec![Value::Int(1)]);
        assert!(v.to_string().contains("strict"));
    }
}
