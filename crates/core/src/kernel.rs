//! Specialized join kernels: per-rule join plans compiled once per solve
//! and executed by a tight interpreter over the *encoded* columns of the
//! columnar fact store.
//!
//! The generic evaluator ([`crate::solver`]'s `eval_body`) interprets the
//! rule body per tuple: it clones [`Value`]s into an environment, unifies
//! with dynamic dispatch over term shapes, and allocates a fresh probe
//! key per index lookup. For the join-heavy inner loops of a fixpoint
//! that is almost all of the solve time. A [`Plan`] moves every decision
//! that does not depend on the data out of the loop:
//!
//! * **boundness is static** — which variables are bound at each body
//!   position follows from the scheduled body order, so each atom
//!   compiles to exactly one access step (ground membership test, index
//!   probe, scan, or delta iteration) with a fixed op list per row;
//! * **values are single words** — relational columns and lattice *key*
//!   columns compare as encoded `u64` slots (see [`crate::database`]),
//!   so a join key is a handful of word moves, not `Value` clones;
//! * **lattice elements stay boxed** — cell values flow through the
//!   `leq`/`glb` lattice operations exactly as in the generic path, so
//!   the glb-matching semantics of §3.2 are untouched;
//! * **subsumed derivations are suppressed at the emit site** — a head
//!   tuple the database already contains (or whose lattice candidate is
//!   `⊑` its stored cell) would be materialized, re-encoded, and dropped
//!   as `Unchanged` by the insert loop; the kernel checks membership on
//!   the already-encoded columns and skips the allocation round trip.
//!   Suppressed tuples are still counted as derived, head functions are
//!   still applied (panic parity), and the check is skipped for lattice
//!   heads when ascent telemetry is on (a subsumed join must count on
//!   its cell), so every observable statistic matches the generic path.
//!
//! A body the compiler cannot specialize (negation, choice bindings) gets
//! no plan and falls back to the generic evaluator; provenance-recording
//! solves skip kernels entirely (they need instantiated premises). The
//! interpreter mirrors the generic evaluator's iteration order (insertion
//! order scans, insertion-order probe hits, identical nesting) and its
//! probe/scan counters, so solutions, statistics, traces, and snapshot
//! bytes are identical whichever path ran — the strategy-parity and
//! differential suites pin this.

use crate::database::{decode, try_encode, Database, PredData, Row};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::guard::{panic_payload, EvalGuard};
use crate::program::{CHead, CItem, CRule, CTerm, Program};
use crate::solver::{Derived, EvalCounters, EvalFault, Payload, ENC_KEY};
use crate::verify::Violation;
use crate::{LatticeOps, PredId, Value};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One component of an encoded probe or membership key.
#[derive(Clone, Debug)]
enum KeySrc {
    /// A literal, pre-encoded at compile time (interned/spilled, so the
    /// encoding stays canonical for the rest of the solve).
    Lit(u64),
    /// An encoded variable register.
    Slot(usize),
    /// A boxed variable register, encoded at probe time. Encoding can
    /// fail when the value was never stored — then the key matches
    /// nothing, exactly like the generic probe.
    Boxed(usize),
}

/// One per-row column op, applied in column order. `Bind` before any
/// `CheckSlot` of the same slot within one atom (first occurrence binds).
#[derive(Clone, Debug)]
enum RowOp {
    /// Column must equal a pre-encoded literal.
    CheckLit { col: usize, enc: u64 },
    /// Column must equal an encoded register.
    CheckSlot { col: usize, slot: usize },
    /// Column must equal a boxed register (compared via encoding for
    /// stored rows, by value for decoded delta rows).
    CheckBoxed { col: usize, slot: usize },
    /// First occurrence of an encoded variable: bind the register.
    Bind { col: usize, slot: usize },
    /// First occurrence of a boxed variable: clone the decoded value.
    BindBoxed { col: usize, slot: usize },
}

/// How the value column of a lattice atom is matched — the glb-matching
/// semantics of §3.2, compiled.
#[derive(Clone, Debug)]
enum ValSpec {
    /// Wildcard: any cell matches.
    Wild,
    /// Literal `l`: matches when `l ⊑ cell`.
    Lit(Value),
    /// Unbound variable: binds to the cell (the greatest witness).
    Bind(usize),
    /// Bound variable `w`: rebinds to `w ⊓ cell` unless that is `⊥`.
    /// The rebind is restored after the sub-join returns.
    Meet(usize),
}

/// A function-argument source (filters and head applications).
#[derive(Clone, Debug)]
enum ArgSrc {
    Lit(Value),
    Slot(usize),
    Boxed(usize),
}

/// A head-column source. Literals carry their compile-time encoding so
/// the emit-side membership pre-check never re-interns them.
#[derive(Clone, Debug)]
enum HeadSrc {
    Lit(Value, u64),
    Slot(usize),
    Boxed(usize),
    App(usize, Vec<ArgSrc>),
}

/// One step of a compiled body. Atom steps carry their whole access
/// strategy; the counter behaviour of each step mirrors the generic
/// evaluator exactly (ground tests and delta iteration count nothing,
/// probes count one probe per visit, scans count one fallback per visit
/// when an index was wanted).
#[derive(Clone, Debug)]
enum Step {
    /// Fully ground relational atom: a membership test.
    RelGround { pred: PredId, key: Vec<KeySrc> },
    /// Index probe on `cols`; `ops` match the remaining columns.
    RelProbe {
        pred: PredId,
        cols: Vec<usize>,
        key: Vec<KeySrc>,
        ops: Vec<RowOp>,
    },
    /// Full scan; `count` is set when an index was wanted but missing.
    RelScan {
        pred: PredId,
        ops: Vec<RowOp>,
        count: bool,
    },
    /// The delta atom of a semi-naïve variant: iterate `∆pred`.
    RelDelta { pred: PredId, ops: Vec<RowOp> },
    /// Lattice atom with a fully ground key: one cell lookup.
    LatGround {
        pred: PredId,
        key: Vec<KeySrc>,
        val: ValSpec,
    },
    /// Lattice key-column index probe.
    LatProbe {
        pred: PredId,
        cols: Vec<usize>,
        key: Vec<KeySrc>,
        ops: Vec<RowOp>,
        val: ValSpec,
    },
    /// Lattice cell scan.
    LatScan {
        pred: PredId,
        ops: Vec<RowOp>,
        val: ValSpec,
        count: bool,
    },
    /// The delta atom of a lattice variant: rows are key columns plus the
    /// new cell value.
    LatDelta {
        pred: PredId,
        ops: Vec<RowOp>,
        val: ValSpec,
    },
    /// A boolean filter function over bound arguments.
    Filter { func: usize, args: Vec<ArgSrc> },
}

/// A compiled join plan for one (rule, variant) body.
#[derive(Clone, Debug)]
pub(crate) struct Plan {
    steps: Vec<Step>,
    head_pred: PredId,
    head: Vec<HeadSrc>,
    num_slots: usize,
    /// Suppress derivations the database already subsumes at emit time
    /// instead of materializing them for the insert loop (they would be
    /// dropped there as `Unchanged`). Off for lattice heads when ascent
    /// telemetry is on — a subsumed join must still count on its cell.
    precheck: bool,
    /// Lattice head whose key fits the inline encoded width: emit may
    /// hand the insert loop a [`Payload::LatEnc`] instead of a
    /// materialized tuple, skipping decode + re-encode round trips.
    lat_enc: bool,
}

/// The compiled plans of a whole program: `plans[rule]` holds the full
/// body's plan plus one per delta variant. `None` entries fall back to
/// the generic evaluator.
pub(crate) struct KernelSet {
    plans: Vec<RulePlans>,
}

struct RulePlans {
    full: Option<Plan>,
    variants: Vec<Option<Plan>>,
}

impl KernelSet {
    /// A set with no plans: every lookup falls back to the generic path.
    /// Used when kernels are disabled or provenance is being recorded.
    pub(crate) fn empty() -> KernelSet {
        KernelSet { plans: Vec::new() }
    }

    /// Compiles a plan for every specializable rule body. Takes the
    /// database mutably to encode literals up front (interning them, so
    /// their encodings stay valid as the store grows). `lat_precheck`
    /// permits the emit-side subsumption check for lattice heads; it must
    /// be false when ascent telemetry is on, because a subsumed join
    /// still counts against its cell's join counter there.
    pub(crate) fn compile(program: &Program, db: &mut Database, lat_precheck: bool) -> KernelSet {
        let plans = program
            .rules
            .iter()
            .map(|rule| RulePlans {
                full: compile_body(program, db, rule, &rule.body, false, lat_precheck),
                variants: rule
                    .delta_variants
                    .iter()
                    .map(|(_, body)| compile_body(program, db, rule, body, true, lat_precheck))
                    .collect(),
            })
            .collect();
        KernelSet { plans }
    }

    /// The plan for a rule evaluation, if one was compiled.
    pub(crate) fn plan(&self, rule: usize, variant: Option<usize>) -> Option<&Plan> {
        let entry = self.plans.get(rule)?;
        match variant {
            None => entry.full.as_ref(),
            Some(vi) => entry.variants.get(vi)?.as_ref(),
        }
    }
}

/// Compiles one body into a [`Plan`]; `None` when the body contains an
/// item the interpreter does not specialize (negation, choice).
fn compile_body(
    program: &Program,
    db: &mut Database,
    rule: &CRule,
    body: &[CItem],
    delta_first: bool,
    lat_precheck: bool,
) -> Option<Plan> {
    // A slot is boxed iff it ever stands in a lattice *value* position in
    // this body: there it must flow through leq/glb as a Value. All other
    // slots live as encoded words.
    let mut boxed_class: HashSet<usize> = HashSet::new();
    for item in body {
        if let CItem::Atom { pred, terms, .. } = item {
            if program.decl(*pred).is_lattice() {
                if let Some(CTerm::Var(slot)) = terms.last() {
                    boxed_class.insert(*slot);
                }
            }
        }
    }

    let mut steps = Vec::with_capacity(body.len());
    let mut bound: HashSet<usize> = HashSet::new();
    for (idx, item) in body.iter().enumerate() {
        match item {
            CItem::Atom {
                pred,
                terms,
                index_cols,
            } => {
                let decl = program.decl(*pred);
                let is_lat = decl.is_lattice();
                let ncols = if is_lat { terms.len() - 1 } else { terms.len() };

                // The value spec is resolved before the key ops mark the
                // atom's variables bound — but a value variable first
                // bound by this atom's *own* key columns is bound by the
                // time the value is matched, so account for that below.
                let key_binds: HashSet<usize> = terms[..ncols]
                    .iter()
                    .filter_map(|t| match t {
                        CTerm::Var(slot) if !bound.contains(slot) => Some(*slot),
                        _ => None,
                    })
                    .collect();
                let val = if is_lat {
                    match terms.last().expect("lattice arity >= 1") {
                        CTerm::Wild => ValSpec::Wild,
                        CTerm::Lit(v) => ValSpec::Lit(v.clone()),
                        CTerm::Var(slot) => {
                            if bound.contains(slot) || key_binds.contains(slot) {
                                ValSpec::Meet(*slot)
                            } else {
                                ValSpec::Bind(*slot)
                            }
                        }
                    }
                } else {
                    ValSpec::Wild // unused for relations
                };

                let is_delta = delta_first && idx == 0;
                let step = if is_delta {
                    let ops = row_ops(terms, ncols, &[], &bound, &boxed_class, db);
                    if is_lat {
                        Step::LatDelta {
                            pred: *pred,
                            ops,
                            val,
                        }
                    } else {
                        Step::RelDelta { pred: *pred, ops }
                    }
                } else if index_cols.len() == ncols {
                    // Every (key) column ground: membership / cell lookup.
                    let key = key_srcs(terms, index_cols, &boxed_class, db);
                    if is_lat {
                        Step::LatGround {
                            pred: *pred,
                            key,
                            val,
                        }
                    } else {
                        Step::RelGround { pred: *pred, key }
                    }
                } else {
                    let has_index = !index_cols.is_empty()
                        && match db.pred(*pred) {
                            PredData::Rel(r) => r.has_index(index_cols),
                            PredData::Lat(l) => l.has_index(index_cols),
                        };
                    if has_index {
                        let key = key_srcs(terms, index_cols, &boxed_class, db);
                        let ops = row_ops(terms, ncols, index_cols, &bound, &boxed_class, db);
                        if is_lat {
                            Step::LatProbe {
                                pred: *pred,
                                cols: index_cols.clone(),
                                key,
                                ops,
                                val,
                            }
                        } else {
                            Step::RelProbe {
                                pred: *pred,
                                cols: index_cols.clone(),
                                key,
                                ops,
                            }
                        }
                    } else {
                        let count = !index_cols.is_empty();
                        let ops = row_ops(terms, ncols, &[], &bound, &boxed_class, db);
                        if is_lat {
                            Step::LatScan {
                                pred: *pred,
                                ops,
                                val,
                                count,
                            }
                        } else {
                            Step::RelScan {
                                pred: *pred,
                                ops,
                                count,
                            }
                        }
                    }
                };
                steps.push(step);
                for t in terms {
                    if let CTerm::Var(slot) = t {
                        bound.insert(*slot);
                    }
                }
            }
            CItem::Filter { func, args } => {
                steps.push(Step::Filter {
                    func: *func,
                    args: arg_srcs(args, &boxed_class)?,
                });
            }
            // Negation needs full-relation absence semantics and choice
            // introduces set-valued fan-out; both stay on the generic
            // evaluator (they are rare and never join-hot).
            CItem::NegAtom { .. } | CItem::Choose { .. } => return None,
        }
    }

    let head = rule
        .head
        .iter()
        .map(|h| match h {
            CHead::Lit(v) => Some(HeadSrc::Lit(v.clone(), db.encode_literal(v))),
            CHead::Var(slot) => Some(if boxed_class.contains(slot) {
                HeadSrc::Boxed(*slot)
            } else {
                HeadSrc::Slot(*slot)
            }),
            CHead::App(func, args) => Some(HeadSrc::App(*func, arg_srcs(args, &boxed_class)?)),
        })
        .collect::<Option<Vec<_>>>()?;

    let is_lattice = program.decl(rule.head_pred).is_lattice();
    let lat_enc = is_lattice && head.len() - 1 <= ENC_KEY;
    Some(Plan {
        steps,
        head_pred: rule.head_pred,
        head,
        num_slots: rule.num_vars,
        precheck: lat_precheck || !is_lattice,
        lat_enc,
    })
}

/// Compiles the probe-key sources for `index_cols` (all of which are
/// literals or bound variables, by construction).
fn key_srcs(
    terms: &[CTerm],
    index_cols: &[usize],
    boxed_class: &HashSet<usize>,
    db: &mut Database,
) -> Vec<KeySrc> {
    index_cols
        .iter()
        .map(|&col| match &terms[col] {
            CTerm::Lit(v) => KeySrc::Lit(db.encode_literal(v)),
            CTerm::Var(slot) if boxed_class.contains(slot) => KeySrc::Boxed(*slot),
            CTerm::Var(slot) => KeySrc::Slot(*slot),
            CTerm::Wild => unreachable!("index columns are never wildcards"),
        })
        .collect()
}

/// Compiles the per-row ops for the columns of one atom that are not
/// covered by the probe key (`skip`), in column order.
fn row_ops(
    terms: &[CTerm],
    ncols: usize,
    skip: &[usize],
    bound: &HashSet<usize>,
    boxed_class: &HashSet<usize>,
    db: &mut Database,
) -> Vec<RowOp> {
    let mut ops = Vec::new();
    let mut atom_bound: HashSet<usize> = HashSet::new();
    for (col, t) in terms.iter().enumerate().take(ncols) {
        if skip.contains(&col) {
            // Key columns still bind their variables for repeated
            // occurrences *within* the atom; those later occurrences are
            // also in the key (bound), so nothing to do here.
            if let CTerm::Var(slot) = t {
                atom_bound.insert(*slot);
            }
            continue;
        }
        match t {
            CTerm::Wild => {}
            CTerm::Lit(v) => ops.push(RowOp::CheckLit {
                col,
                enc: db.encode_literal(v),
            }),
            CTerm::Var(slot) => {
                let is_bound = bound.contains(slot) || atom_bound.contains(slot);
                let is_boxed = boxed_class.contains(slot);
                ops.push(match (is_bound, is_boxed) {
                    (true, true) => RowOp::CheckBoxed { col, slot: *slot },
                    (true, false) => RowOp::CheckSlot { col, slot: *slot },
                    (false, true) => RowOp::BindBoxed { col, slot: *slot },
                    (false, false) => RowOp::Bind { col, slot: *slot },
                });
                atom_bound.insert(*slot);
            }
        }
    }
    ops
}

fn arg_srcs(args: &[CTerm], boxed_class: &HashSet<usize>) -> Option<Vec<ArgSrc>> {
    args.iter()
        .map(|t| match t {
            CTerm::Lit(v) => Some(ArgSrc::Lit(v.clone())),
            CTerm::Var(slot) => Some(if boxed_class.contains(slot) {
                ArgSrc::Boxed(*slot)
            } else {
                ArgSrc::Slot(*slot)
            }),
            CTerm::Wild => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

/// The mutable state of one plan execution: the variable registers
/// (encoded words for join variables, boxed values for lattice-element
/// variables), the reusable key buffer, and the thread-local counters.
struct State<'a, 'o> {
    program: &'a Program,
    db: &'a Database,
    delta: &'a [Vec<Row>],
    guard: &'a EvalGuard<'a>,
    rule: usize,
    enc: Vec<u64>,
    boxed: Vec<Option<Value>>,
    /// Reused for probe keys; never held across a recursive call.
    key_buf: Vec<u64>,
    /// Reused for the head's computed function applications per emit.
    app_buf: Vec<Value>,
    /// Reused for function-call arguments (filters and applications).
    args_buf: Vec<Value>,
    out: &'o mut Vec<Derived>,
    probes: u64,
    scans: u64,
    /// Derivations suppressed by the emit-side subsumption pre-check;
    /// they still count as derived in the statistics.
    suppressed: u64,
    /// Relational head rows already emitted by this plan execution. A
    /// repeat is guaranteed `Unchanged` at insert time — the earlier
    /// copy sits before it in the output — so it is suppressed too.
    /// Keys are zero-padded to [`SHADOW_KEY`] slots so entries stay
    /// allocation-free; wider heads skip the shadow (suppression is an
    /// optimization — the insert loop handles whatever flows).
    shadow_rows: FxHashSet<[u64; SHADOW_KEY]>,
    /// Per-key least upper bound of the lattice head cells this plan
    /// execution has emitted, seeded with the stored cell. Everything
    /// folded into a shadow cell is processed by the insert loop before
    /// any later candidate, so `cand ⊑ shadow` implies the insert would
    /// be `Unchanged` and the candidate can be suppressed. The `u32` is
    /// the cell's row id ([`NO_ID`] while the cell is not stored yet),
    /// captured so flowing candidates can skip the insert-side lookup.
    shadow_cells: FxHashMap<[u64; SHADOW_KEY], (u32, Value)>,
    /// Row id of the lattice cell the last `is_subsumed` call resolved
    /// ([`NO_ID`] when unknown); lets `emit` address the insert directly
    /// at the cell. Ids are append-only, so a resolved id stays valid.
    lat_hit_id: u32,
    fault: Option<EvalFault>,
}

/// Sentinel for "cell id unknown" on the encoded lattice fast path.
pub(crate) const NO_ID: u32 = u32::MAX;

/// Width of the inline shadow-table keys: covers every head up to this
/// many encoded columns (lattice heads: key columns) without per-entry
/// allocation. Shared with [`Payload::LatEnc`] so a key that fits the
/// shadow also fits the encoded emit path.
const SHADOW_KEY: usize = ENC_KEY;

/// Zero-pads an encoded key into an inline shadow key. `None` when the
/// key is too wide for the inline representation.
#[inline]
fn shadow_key(enc: &[u64]) -> Option<[u64; SHADOW_KEY]> {
    if enc.len() > SHADOW_KEY {
        return None;
    }
    let mut key = [0u64; SHADOW_KEY];
    key[..enc.len()].copy_from_slice(enc);
    Some(key)
}

impl State<'_, '_> {
    fn fail(&mut self, fault: impl Into<EvalFault>) {
        if self.fault.is_none() {
            self.fault = Some(fault.into());
        }
    }
}

/// Reusable per-worker buffers for plan execution. Registers, key
/// buffers, and the shadow tables are cleared — not reallocated —
/// between tasks, so a round with many tasks pays for map growth once
/// instead of once per task.
#[derive(Default)]
pub(crate) struct KernelScratch {
    enc: Vec<u64>,
    boxed: Vec<Option<Value>>,
    key_buf: Vec<u64>,
    app_buf: Vec<Value>,
    args_buf: Vec<Value>,
    shadow_rows: FxHashSet<[u64; SHADOW_KEY]>,
    shadow_cells: FxHashMap<[u64; SHADOW_KEY], (u32, Value)>,
}

impl KernelScratch {
    pub(crate) fn new() -> KernelScratch {
        KernelScratch::default()
    }
}

/// Executes a compiled plan, appending derivations to `out`. Mirrors the
/// generic evaluator: same iteration order, same probe/scan counters,
/// same fault short-circuiting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_plan(
    program: &Program,
    db: &Database,
    plan: &Plan,
    rule: usize,
    delta: &[Vec<Row>],
    guard: &EvalGuard<'_>,
    counters: &mut EvalCounters,
    out: &mut Vec<Derived>,
    scratch: &mut KernelScratch,
) -> Result<(), EvalFault> {
    let mut enc = std::mem::take(&mut scratch.enc);
    enc.clear();
    enc.resize(plan.num_slots, 0);
    let mut boxed = std::mem::take(&mut scratch.boxed);
    boxed.clear();
    boxed.resize(plan.num_slots, None);
    let mut shadow_rows = std::mem::take(&mut scratch.shadow_rows);
    shadow_rows.clear();
    let mut shadow_cells = std::mem::take(&mut scratch.shadow_cells);
    shadow_cells.clear();
    let mut st = State {
        program,
        db,
        delta,
        guard,
        rule,
        enc,
        boxed,
        key_buf: std::mem::take(&mut scratch.key_buf),
        app_buf: std::mem::take(&mut scratch.app_buf),
        args_buf: std::mem::take(&mut scratch.args_buf),
        out,
        probes: 0,
        scans: 0,
        suppressed: 0,
        shadow_rows,
        shadow_cells,
        lat_hit_id: NO_ID,
        fault: None,
    };
    step(plan, 0, &mut st);
    counters.probes += st.probes;
    counters.scans += st.scans;
    counters.suppressed += st.suppressed;
    let State {
        enc,
        boxed,
        key_buf,
        app_buf,
        args_buf,
        shadow_rows,
        shadow_cells,
        fault,
        ..
    } = st;
    scratch.enc = enc;
    scratch.boxed = boxed;
    scratch.key_buf = key_buf;
    scratch.app_buf = app_buf;
    scratch.args_buf = args_buf;
    scratch.shadow_rows = shadow_rows;
    scratch.shadow_cells = shadow_cells;
    match fault {
        None => Ok(()),
        Some(fault) => Err(fault),
    }
}

/// Fills the key buffer from `key`. Returns `false` when a boxed value
/// cannot be encoded — it was never stored, so the key matches nothing.
fn build_key(key: &[KeySrc], st: &mut State<'_, '_>) -> bool {
    st.key_buf.clear();
    for src in key {
        let slot = match src {
            KeySrc::Lit(enc) => *enc,
            KeySrc::Slot(s) => st.enc[*s],
            KeySrc::Boxed(s) => {
                let v = st.boxed[*s].as_ref().expect("statically bound");
                match try_encode(v, st.db.spill()) {
                    Some(e) => e,
                    None => return false,
                }
            }
        };
        st.key_buf.push(slot);
    }
    true
}

/// Applies the per-row ops against a stored relation row.
fn rel_ops_match(
    ops: &[RowOp],
    rel: &crate::database::RelationData,
    id: u32,
    st: &mut State<'_, '_>,
) -> bool {
    for op in ops {
        match op {
            RowOp::CheckLit { col, enc } => {
                if rel.col(*col)[id as usize] != *enc {
                    return false;
                }
            }
            RowOp::CheckSlot { col, slot } => {
                if rel.col(*col)[id as usize] != st.enc[*slot] {
                    return false;
                }
            }
            RowOp::CheckBoxed { col, slot } => {
                let v = st.boxed[*slot].as_ref().expect("statically bound");
                match try_encode(v, st.db.spill()) {
                    Some(e) if e == rel.col(*col)[id as usize] => {}
                    _ => return false,
                }
            }
            RowOp::Bind { col, slot } => st.enc[*slot] = rel.col(*col)[id as usize],
            RowOp::BindBoxed { col, slot } => st.boxed[*slot] = Some(rel.row(id)[*col].clone()),
        }
    }
    true
}

/// Applies the per-row ops against a stored lattice key.
fn lat_ops_match(
    ops: &[RowOp],
    lat: &crate::database::LatticeData,
    id: u32,
    st: &mut State<'_, '_>,
) -> bool {
    for op in ops {
        match op {
            RowOp::CheckLit { col, enc } => {
                if lat.key_col(*col)[id as usize] != *enc {
                    return false;
                }
            }
            RowOp::CheckSlot { col, slot } => {
                if lat.key_col(*col)[id as usize] != st.enc[*slot] {
                    return false;
                }
            }
            RowOp::CheckBoxed { col, slot } => {
                let v = st.boxed[*slot].as_ref().expect("statically bound");
                match try_encode(v, st.db.spill()) {
                    Some(e) if e == lat.key_col(*col)[id as usize] => {}
                    _ => return false,
                }
            }
            RowOp::Bind { col, slot } => st.enc[*slot] = lat.key_col(*col)[id as usize],
            RowOp::BindBoxed { col, slot } => st.boxed[*slot] = Some(lat.key(id)[*col].clone()),
        }
    }
    true
}

/// Applies the per-row ops against a decoded delta row. Delta rows are
/// stored rows (or stored keys plus a fresh cell value), so their key
/// columns always encode; a decoded value that does not is unequal to
/// every stored slot.
fn delta_ops_match(ops: &[RowOp], row: &[Value], st: &mut State<'_, '_>) -> bool {
    for op in ops {
        match op {
            RowOp::CheckLit { col, enc } => match try_encode(&row[*col], st.db.spill()) {
                Some(e) if e == *enc => {}
                _ => return false,
            },
            RowOp::CheckSlot { col, slot } => match try_encode(&row[*col], st.db.spill()) {
                Some(e) if e == st.enc[*slot] => {}
                _ => return false,
            },
            RowOp::CheckBoxed { col, slot } => {
                let v = st.boxed[*slot].as_ref().expect("statically bound");
                if row[*col] != *v {
                    return false;
                }
            }
            RowOp::Bind { col, slot } => {
                st.enc[*slot] = try_encode(&row[*col], st.db.spill())
                    .expect("delta key columns are stored values");
            }
            RowOp::BindBoxed { col, slot } => st.boxed[*slot] = Some(row[*col].clone()),
        }
    }
    true
}

/// Matches a cell value per `val` and recurses into the next step — the
/// compiled form of the generic `match_lattice_value`.
fn apply_val(
    plan: &Plan,
    next: usize,
    val: &ValSpec,
    cell: &Value,
    ops: &LatticeOps,
    st: &mut State<'_, '_>,
) {
    match val {
        ValSpec::Wild => step(plan, next, st),
        ValSpec::Lit(l) => match ops.try_leq(l, cell) {
            Ok(true) => step(plan, next, st),
            Ok(false) => {}
            Err(p) => st.fail(p),
        },
        ValSpec::Bind(slot) => {
            st.boxed[*slot] = Some(cell.clone());
            step(plan, next, st);
        }
        ValSpec::Meet(slot) => {
            let bound = st.boxed[*slot].clone().expect("statically bound");
            let met = match ops.try_glb(&bound, cell) {
                Ok(met) => met,
                Err(p) => {
                    st.fail(p);
                    return;
                }
            };
            if ops.is_bottom(&met) {
                return;
            }
            if met != bound {
                st.boxed[*slot] = Some(met);
                step(plan, next, st);
                // Restore: sibling rows of the enclosing scan must see
                // the pre-meet binding.
                st.boxed[*slot] = Some(bound);
            } else {
                step(plan, next, st);
            }
        }
    }
}

fn arg_value(arg: &ArgSrc, st: &State<'_, '_>) -> Value {
    match arg {
        ArgSrc::Lit(v) => v.clone(),
        ArgSrc::Slot(s) => decode(st.enc[*s], st.db.spill()),
        ArgSrc::Boxed(s) => st.boxed[*s].clone().expect("statically bound"),
    }
}

/// Invokes a user function with panic isolation, like the generic
/// evaluator's `call_user_fn`.
fn call_fn(func: usize, vals: &[Value], st: &mut State<'_, '_>) -> Option<Value> {
    let fdef = &st.program.funcs[func];
    match catch_unwind(AssertUnwindSafe(|| (fdef.body)(vals))) {
        Ok(v) => Some(v),
        Err(payload) => {
            st.fail(EvalFault::Panic {
                function: fdef.name.to_string(),
                payload: panic_payload(payload),
            });
            None
        }
    }
}

/// Computes the head's function applications once into `st.app_buf`, in
/// head-column order. Returns `false` when one panicked (fault recorded).
/// Always runs before the subsumption pre-check so a panicking transfer
/// function fires exactly as in the generic evaluator.
fn compute_apps(plan: &Plan, st: &mut State<'_, '_>) -> bool {
    st.app_buf.clear();
    for h in &plan.head {
        if let HeadSrc::App(func, args) = h {
            let mut vals = std::mem::take(&mut st.args_buf);
            vals.clear();
            for a in args {
                vals.push(arg_value(a, st));
            }
            let result = call_fn(*func, &vals, st);
            st.args_buf = vals;
            match result {
                Some(v) => st.app_buf.push(v),
                None => return false,
            }
        }
    }
    true
}

/// Encodes the head columns in `srcs` into the key buffer. Returns
/// `false` when a value was never stored — then it cannot equal any
/// stored row, so the tuple is certainly not subsumed.
fn build_head_key(srcs: &[HeadSrc], st: &mut State<'_, '_>) -> bool {
    st.key_buf.clear();
    let mut app_i = 0;
    for h in srcs {
        let enc = match h {
            HeadSrc::Lit(_, enc) => *enc,
            HeadSrc::Slot(s) => st.enc[*s],
            HeadSrc::Boxed(s) => {
                let v = st.boxed[*s].as_ref().expect("statically bound");
                match try_encode(v, st.db.spill()) {
                    Some(e) => e,
                    None => return false,
                }
            }
            HeadSrc::App(..) => {
                let v = &st.app_buf[app_i];
                app_i += 1;
                match try_encode(v, st.db.spill()) {
                    Some(e) => e,
                    None => return false,
                }
            }
        };
        st.key_buf.push(enc);
    }
    true
}

/// Would inserting the current head tuple leave the database unchanged?
/// Mirrors [`Database::insert`] against the evaluation-time snapshot — a
/// stored relational row, or a lattice candidate `⊑` its stored cell —
/// plus the plan-local shadow of what this execution has already
/// emitted, which catches within-round duplicates (the dominant case in
/// fixed-point workloads like shortest paths, where each round derives
/// many successively better candidates per cell). Conservative on every
/// edge (unencodable value, missing cell, a `leq`/`lub` that errs):
/// answer `false` and let the real insert decide — inserts are monotone
/// within a round, so a tuple subsumed now stays subsumed.
fn is_subsumed(plan: &Plan, st: &mut State<'_, '_>) -> bool {
    match st.db.pred(plan.head_pred) {
        PredData::Rel(rel) => {
            if !build_head_key(&plan.head, st) {
                return false;
            }
            if rel.contains_encoded(&st.key_buf) {
                return true;
            }
            match shadow_key(&st.key_buf) {
                Some(key) => !st.shadow_rows.insert(key),
                None => false,
            }
        }
        PredData::Lat(lat) => {
            let (key_srcs, val_src) = plan.head.split_at(plan.head.len() - 1);
            if !build_head_key(key_srcs, st) {
                return false;
            }
            let decoded;
            let cand: &Value = match &val_src[0] {
                HeadSrc::Lit(v, _) => v,
                HeadSrc::Boxed(s) => st.boxed[*s].as_ref().expect("statically bound"),
                HeadSrc::Slot(s) => {
                    decoded = decode(st.enc[*s], st.db.spill());
                    &decoded
                }
                HeadSrc::App(..) => st.app_buf.last().expect("apps computed before pre-check"),
            };
            // The shadow cell is what this cell is at least going to
            // hold by the time the insert loop reaches the current
            // candidate; it starts as the stored cell and absorbs every
            // candidate this execution lets through. Checking it first
            // makes the steady state one map probe and one `leq` per
            // candidate. Every `leq`/`lub` error leaves the shadow
            // untouched and lets the tuple flow, so the real insert
            // reproduces the fault with proper attribution.
            let ops = lat.ops();
            let Some(skey) = shadow_key(&st.key_buf) else {
                // Key too wide for the inline shadow: frozen-cell check
                // only.
                let Some(id) = lat.id_of_encoded(&st.key_buf) else {
                    return false;
                };
                st.lat_hit_id = id;
                return matches!(ops.try_leq(cand, lat.cell(id)), Ok(true));
            };
            if let Some((id, shadow)) = st.shadow_cells.get_mut(&skey) {
                st.lat_hit_id = *id;
                return match ops.try_leq(cand, shadow) {
                    Ok(true) => true,
                    Ok(false) => {
                        if let Ok(joined) = ops.try_lub(shadow, cand) {
                            *shadow = joined;
                        }
                        false
                    }
                    Err(_) => false,
                };
            }
            // First sighting of this cell: seed the shadow from the
            // stored cell (or the candidate itself when there is none).
            let hit = lat.id_of_encoded(&st.key_buf);
            match hit.map(|id| (id, lat.cell(id))) {
                Some((id, cell)) => {
                    st.lat_hit_id = id;
                    match ops.try_leq(cand, cell) {
                        Ok(true) => {
                            st.shadow_cells.insert(skey, (id, cell.clone()));
                            true
                        }
                        Ok(false) => {
                            if let Ok(joined) = ops.try_lub(cell, cand) {
                                st.shadow_cells.insert(skey, (id, joined));
                            }
                            false
                        }
                        Err(_) => false,
                    }
                }
                None => {
                    st.shadow_cells.insert(skey, (NO_ID, cand.clone()));
                    false
                }
            }
        }
    }
}

fn emit(plan: &Plan, st: &mut State<'_, '_>) {
    if !compute_apps(plan, st) {
        return;
    }
    st.lat_hit_id = NO_ID;
    // Emit-side dedup: a tuple the database already subsumes would be
    // materialized, re-encoded, and dropped as `Unchanged` by the insert
    // loop; suppress it here instead. Counted, so the derivation
    // statistics are identical either way.
    if plan.precheck && is_subsumed(plan, st) {
        st.suppressed += 1;
        return;
    }
    // Lattice fast path: hand the insert loop the already-encoded key
    // instead of decoding it here just so `Database::insert` can re-encode
    // it. Falls back to the materialized tuple when a key value is not yet
    // interned (`build_head_key` fails) so the insert path interns it
    // exactly like the generic evaluator would.
    if plan.lat_enc {
        let (key_srcs, val_src) = plan.head.split_at(plan.head.len() - 1);
        if build_head_key(key_srcs, st) {
            let mut key = [0u64; ENC_KEY];
            key[..st.key_buf.len()].copy_from_slice(&st.key_buf);
            let cell = match &val_src[0] {
                HeadSrc::Lit(v, _) => v.clone(),
                HeadSrc::Slot(s) => decode(st.enc[*s], st.db.spill()),
                HeadSrc::Boxed(s) => st.boxed[*s].clone().expect("statically bound"),
                HeadSrc::App(..) => st.app_buf.last().expect("apps computed").clone(),
            };
            st.out.push(Derived {
                pred: plan.head_pred,
                payload: Payload::LatEnc {
                    arity: key_srcs.len() as u8,
                    id: st.lat_hit_id,
                    key,
                    cell,
                },
                rule: st.rule,
                premises: None,
            });
            return;
        }
    }
    let mut tuple = Vec::with_capacity(plan.head.len());
    let mut app_i = 0;
    for h in &plan.head {
        match h {
            HeadSrc::Lit(v, _) => tuple.push(v.clone()),
            HeadSrc::Slot(s) => tuple.push(decode(st.enc[*s], st.db.spill())),
            HeadSrc::Boxed(s) => tuple.push(st.boxed[*s].clone().expect("statically bound")),
            HeadSrc::App(..) => {
                tuple.push(st.app_buf[app_i].clone());
                app_i += 1;
            }
        }
    }
    st.out.push(Derived {
        pred: plan.head_pred,
        payload: Payload::Tuple(tuple),
        rule: st.rule,
        premises: None,
    });
}

fn step(plan: &Plan, i: usize, st: &mut State<'_, '_>) {
    if st.fault.is_some() {
        return;
    }
    if let Err(kind) = st.guard.poll() {
        st.fail(EvalFault::Budget(kind));
        return;
    }
    let Some(s) = plan.steps.get(i) else {
        emit(plan, st);
        return;
    };
    match s {
        Step::RelGround { pred, key } => {
            let PredData::Rel(rel) = st.db.pred(*pred) else {
                unreachable!("compiled against predicate kinds");
            };
            if !build_key(key, st) {
                return;
            }
            // Membership fast path: no probe counted, matching the
            // generic evaluator's ground-atom test.
            if rel.contains_encoded(&st.key_buf) {
                step(plan, i + 1, st);
            }
        }
        Step::RelProbe {
            pred,
            cols,
            key,
            ops,
        } => {
            let PredData::Rel(rel) = st.db.pred(*pred) else {
                unreachable!("compiled against predicate kinds");
            };
            st.probes += 1;
            if !build_key(key, st) {
                // Unencodable key component: the probe happened (and was
                // counted), but matches nothing.
                return;
            }
            let hits = rel
                .probe_encoded(cols, &st.key_buf)
                .expect("index presence checked at compile time");
            for &id in hits {
                if st.fault.is_some() {
                    return;
                }
                if rel_ops_match(ops, rel, id, st) {
                    step(plan, i + 1, st);
                }
            }
        }
        Step::RelScan { pred, ops, count } => {
            let PredData::Rel(rel) = st.db.pred(*pred) else {
                unreachable!("compiled against predicate kinds");
            };
            if *count {
                st.scans += 1;
            }
            for id in 0..rel.len() as u32 {
                if st.fault.is_some() {
                    return;
                }
                if rel_ops_match(ops, rel, id, st) {
                    step(plan, i + 1, st);
                }
            }
        }
        Step::RelDelta { pred, ops } => {
            let rows = &st.delta[pred.0 as usize];
            for row in rows {
                if st.fault.is_some() {
                    return;
                }
                if delta_ops_match(ops, row, st) {
                    step(plan, i + 1, st);
                }
            }
        }
        Step::LatGround { pred, key, val } => {
            let PredData::Lat(lat) = st.db.pred(*pred) else {
                unreachable!("compiled against predicate kinds");
            };
            if !build_key(key, st) {
                return;
            }
            let Some(id) = lat.id_of_encoded(&st.key_buf) else {
                return;
            };
            let ops = lat.ops();
            apply_val(plan, i + 1, val, lat.cell(id), ops, st);
        }
        Step::LatProbe {
            pred,
            cols,
            key,
            ops,
            val,
        } => {
            let PredData::Lat(lat) = st.db.pred(*pred) else {
                unreachable!("compiled against predicate kinds");
            };
            st.probes += 1;
            if !build_key(key, st) {
                return;
            }
            let hits = lat
                .probe_encoded(cols, &st.key_buf)
                .expect("index presence checked at compile time");
            let lops = lat.ops();
            for &id in hits {
                if st.fault.is_some() {
                    return;
                }
                if lat_ops_match(ops, lat, id, st) {
                    apply_val(plan, i + 1, val, lat.cell(id), lops, st);
                }
            }
        }
        Step::LatScan {
            pred,
            ops,
            val,
            count,
        } => {
            let PredData::Lat(lat) = st.db.pred(*pred) else {
                unreachable!("compiled against predicate kinds");
            };
            if *count {
                st.scans += 1;
            }
            let lops = lat.ops();
            for id in 0..lat.len() as u32 {
                if st.fault.is_some() {
                    return;
                }
                if lat_ops_match(ops, lat, id, st) {
                    apply_val(plan, i + 1, val, lat.cell(id), lops, st);
                }
            }
        }
        Step::LatDelta { pred, ops, val } => {
            let PredData::Lat(lat) = st.db.pred(*pred) else {
                unreachable!("compiled against predicate kinds");
            };
            let lops = lat.ops();
            let rows = &st.delta[pred.0 as usize];
            for row in rows {
                if st.fault.is_some() {
                    return;
                }
                let (keypart, cell) = row.split_at(row.len() - 1);
                if delta_ops_match(ops, keypart, st) {
                    apply_val(plan, i + 1, val, &cell[0], lops, st);
                }
            }
        }
        Step::Filter { func, args } => {
            let mut vals = std::mem::take(&mut st.args_buf);
            vals.clear();
            for a in args {
                vals.push(arg_value(a, st));
            }
            let result = call_fn(*func, &vals, st);
            match result {
                None => st.args_buf = vals,
                Some(Value::Bool(true)) => {
                    // Restore the buffer before recursing — a nested emit
                    // reuses it for its own argument lists.
                    st.args_buf = vals;
                    step(plan, i + 1, st);
                }
                Some(Value::Bool(false)) => st.args_buf = vals,
                Some(other) => st.fail(EvalFault::Safety(Violation::FilterNotBoolean(vals, other))),
            }
        }
    }
}
