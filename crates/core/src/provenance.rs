//! Derivation provenance: why is a fact in the minimal model?
//!
//! The paper motivates Datalog with understandability: "it is easy to
//! understand an analysis by understanding its components individually"
//! (§1). Provenance extends that to individual *facts*: with
//! [`Solver::record_provenance`](crate::Solver::record_provenance)
//! enabled, the solver logs every database-changing insertion together
//! with the rule and the body atoms that produced it, and
//! [`Solution::explain`](crate::Solution::explain) reconstructs a
//! derivation tree — the instantiated proof of the fact under the
//! immediate-consequence semantics of §3.
//!
//! Premises record positive body atoms only; filters, choice bindings,
//! and negated atoms are conditions on the derivation step rather than
//! facts with their own derivations. Wildcard columns (which match
//! without binding) appear as `None` in the premise pattern and unify
//! with anything during reconstruction.

use crate::{PredId, Value};
use std::fmt;

/// One positive body atom as instantiated at derivation time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Premise {
    /// The premise's predicate.
    pub pred: PredId,
    /// The instantiated columns; `None` marks a wildcard position.
    pub pattern: Vec<Option<Value>>,
}

/// How a logged fact entered the database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// An extensional fact of the program.
    Fact,
    /// Derived by a rule from the given premises.
    Rule {
        /// The rule index within the program (declaration order).
        rule: usize,
        /// The instantiated positive body atoms.
        premises: Vec<Premise>,
    },
}

/// One database-changing insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The predicate inserted into.
    pub pred: PredId,
    /// The inserted tuple. For lattice predicates this is the key columns
    /// followed by the *new joined cell value* at the time of insertion.
    pub tuple: Vec<Value>,
    /// The origin of the insertion.
    pub source: Source,
}

/// A reconstructed derivation: the fact, the rule that produced it (if
/// any), and the derivations of its premises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationTree {
    /// The predicate name.
    pub predicate: String,
    /// The derived tuple (for lattice predicates: key plus cell value at
    /// the explaining event).
    pub tuple: Vec<Value>,
    /// The producing rule index, or `None` for extensional facts.
    pub rule: Option<usize>,
    /// Derivations of the positive premises.
    pub children: Vec<DerivationTree>,
}

impl DerivationTree {
    /// The height of the tree (a fact has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(DerivationTree::height)
            .max()
            .unwrap_or(0)
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for _ in 0..indent {
            f.write_str("  ")?;
        }
        write!(f, "{}(", self.predicate)?;
        for (i, v) in self.tuple.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")?;
        match self.rule {
            None => f.write_str("  [fact]")?,
            Some(r) => write!(f, "  [rule {r}]")?,
        }
        f.write_str("\n")?;
        for child in &self.children {
            child.render(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for DerivationTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// Does `pattern` (with `None` wildcards) match `tuple`?
pub(crate) fn pattern_matches(pattern: &[Option<Value>], tuple: &[Value]) -> bool {
    pattern.len() == tuple.len()
        && pattern
            .iter()
            .zip(tuple)
            .all(|(p, v)| p.as_ref().is_none_or(|p| p == v))
}

/// For lattice premises the witnessed value may be below the stored cell
/// value; match on the key columns and accept any cell value.
pub(crate) fn key_matches(pattern: &[Option<Value>], tuple: &[Value]) -> bool {
    pattern.len() == tuple.len()
        && pattern[..pattern.len() - 1]
            .iter()
            .zip(tuple)
            .all(|(p, v)| p.as_ref().is_none_or(|p| p == v))
}
