//! Incremental re-solving: warm-starting the fixed point from a prior
//! model plus a monotone update.
//!
//! The semi-naïve strategy (§3.7 of the paper) already works in deltas:
//! each round re-evaluates rules only against the ground atoms that
//! *strictly increased* since the previous round. A finished solve is
//! simply the state where that delta has drained — so a monotone update
//! (new relational tuples, lub-raises of lattice cells) can re-enter the
//! same loop with the update as the initial `∆`, skipping the seed round
//! and every untouched stratum entirely.
//!
//! # Why monotone deltas need no retraction
//!
//! FLIX programs are monotone: adding facts (or raising lattice cells)
//! can only grow the minimal model, never shrink it — `M(P) ⊑ M(P ∪ ∆)`.
//! The prior model is therefore a *sound under-approximation* of the
//! updated model, and every fact missing from it must be derivable
//! through at least one changed ground atom. Seeding the semi-naïve
//! worklist with exactly the changed atoms reaches all of those
//! derivations (the standard semi-naïve completeness argument), so no
//! DRed-style over-deletion/re-derivation phase is needed. The one
//! exception is stratified negation: an *insertion* into a negated
//! predicate can invalidate previously derived facts, so when a delta
//! can reach a negated body atom (computed by a conservative transitive
//! dirtiness check), [`Solver::resume`] falls back to a full from-scratch
//! solve — still returning exactly the from-scratch model, just without
//! the warm-start speedup.
//!
//! # Example
//!
//! ```
//! use flix_core::incremental::Delta;
//! use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Solver, Term};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let edge = b.relation("Edge", 2);
//! let path = b.relation("Path", 2);
//! b.fact(edge, vec![1.into(), 2.into()]);
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
//!     [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
//! );
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
//!     [
//!         BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
//!         BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
//!     ],
//! );
//! let program = b.build()?;
//! let solver = Solver::new();
//! let initial = solver.solve(&program)?;
//! assert!(!initial.contains("Path", &[1.into(), 3.into()]));
//!
//! let delta = Delta::new().insert("Edge", vec![2.into(), 3.into()]);
//! let updated = solver.resume(&program, &initial, &delta)?;
//! assert!(updated.contains("Path", &[1.into(), 3.into()]));
//! # Ok(())
//! # }
//! ```

// Internal plumbing passes `SolveError` by value between rounds, exactly
// like `solver.rs`; it is boxed inside `SolveFailure` at the API boundary.
#![allow(clippy::result_large_err)]

use crate::database::{Database, InsertOutcome, PredData, Row};
use crate::guard::Guard;
use crate::kernel::KernelSet;
use crate::observe::{RuleStats, StratumStats};
use crate::program::{CItem, Program};
use crate::provenance::{Event, Source};
use crate::solver::{accumulate_change, insert_fault_error, make_solution};
use crate::stratify::stratify;
use crate::trace::{SpanKind, Tracer};
use crate::{PredId, Solution, SolveError, SolveFailure, SolveStats, Solver, Strategy, Value};
use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

/// A monotone update to a program's extensional facts: relational tuples
/// to insert and lattice cells to lub-raise.
///
/// Entries are predicate-*name* based, so a delta can be built without a
/// handle on the program's internal ids (e.g. from a parsed update
/// file); names are resolved — and arities checked — when the delta is
/// applied by [`Solver::resume`]. Lattice entries carry the element as
/// the last column, exactly like a lattice fact: the cell at the key
/// columns is raised to the least upper bound of its current value and
/// the given element (a no-op when already subsumed).
///
/// Only *additions* are expressible, by design: monotone updates are the
/// case where resuming from the prior model is exact (see the module
/// docs). Retracting a fact requires a from-scratch [`Solver::solve`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta {
    entries: Vec<(String, Vec<Value>)>,
}

impl Delta {
    /// Creates an empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Adds one fact (chaining form): a full tuple for a relational
    /// predicate, or key columns plus the element for a lattice
    /// predicate.
    pub fn insert(mut self, predicate: impl Into<String>, tuple: Vec<Value>) -> Delta {
        self.push(predicate, tuple);
        self
    }

    /// Adds one fact (mutating form). See [`Delta::insert`].
    pub fn push(&mut self, predicate: impl Into<String>, tuple: Vec<Value>) {
        self.entries.push((predicate.into(), tuple));
    }

    /// Adds a lattice lub-raise: the cell at `key` is raised to (at
    /// least) `element`. Convenience over [`Delta::insert`] with the
    /// element appended as the last column.
    pub fn raise(mut self, predicate: impl Into<String>, key: Vec<Value>, element: Value) -> Delta {
        let mut tuple = key;
        tuple.push(element);
        self.push(predicate, tuple);
        self
    }

    /// Builds a delta from every fact of `program` — the flixr `--update`
    /// path: the update file is compiled as a standalone program (its
    /// facts re-declare the predicates they touch) and its facts become
    /// the delta.
    pub fn from_facts(program: &Program) -> Delta {
        let mut delta = Delta::new();
        for (pred, values) in program.facts() {
            delta.push(program.decl(pred).name(), values.to_vec());
        }
        delta
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the delta holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the entries as `(predicate name, tuple)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[Value])> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t.as_slice()))
    }
}

/// A [`Delta`] (or prior [`Solution`]) that does not fit the program
/// handed to [`Solver::resume`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A delta entry names a predicate the program does not declare.
    UnknownPredicate {
        /// The unresolvable name.
        predicate: String,
    },
    /// A delta entry's tuple width does not match the predicate's
    /// declared arity (for lattice predicates, key columns plus the
    /// element).
    ArityMismatch {
        /// The predicate name.
        predicate: String,
        /// The declared arity.
        declared: usize,
        /// The entry's tuple width.
        found: usize,
    },
    /// The prior solution was not produced from the program being
    /// resumed: predicate names, order, or kinds differ.
    SolutionMismatch,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownPredicate { predicate } => {
                write!(f, "delta names unknown predicate {predicate}")
            }
            DeltaError::ArityMismatch {
                predicate,
                declared,
                found,
            } => write!(
                f,
                "delta tuple for {predicate} has {found} columns, declared arity is {declared}"
            ),
            DeltaError::SolutionMismatch => write!(
                f,
                "prior solution does not match the program being resumed \
                 (was it produced by solving a different program?)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<DeltaError> for SolveError {
    fn from(e: DeltaError) -> SolveError {
        SolveError::Delta(e)
    }
}

impl Solver {
    /// Resumes a finished solve: applies the monotone `delta` on top of
    /// `prior` (which must be a *complete* fixed point of `program`, as
    /// returned by [`Solver::solve`] or an earlier `resume`) and re-runs
    /// only the strata the update can reach, seeding the semi-naïve
    /// worklist with exactly the changed cells.
    ///
    /// The result is cell-for-cell identical to a from-scratch
    /// [`Solver::solve`] of the program extended with the delta's facts,
    /// for every strategy and thread count; the randomized
    /// update-sequence parity suite pins this. When the delta can reach
    /// a negated body atom, `resume` transparently falls back to that
    /// from-scratch solve (see the module docs).
    ///
    /// Resumed work is observable like any other solve: rounds, rule
    /// evaluations, and net insertions (including the delta's own
    /// insertions, counted like fact loads) appear in [`SolveStats`],
    /// the per-rule/per-stratum profiles, and the attached
    /// [`crate::Observer`], and the configured [`crate::Budget`] governs
    /// the resumed rounds. Statistics describe the *resumed* run only;
    /// `per_stratum` holds entries just for re-run strata (tagged with
    /// their original stratum indices). When provenance recording is on,
    /// the prior solution's event log (if any) is carried over and
    /// extended, so [`Solution::explain`] spans both runs.
    ///
    /// # Errors
    ///
    /// All [`Solver::solve`] failure modes, plus [`SolveError::Delta`]
    /// when the delta or prior solution does not fit `program`. The
    /// partial solution on failure is always ⊒ the prior model: resuming
    /// only ever adds facts, so an exhausted budget loses new
    /// derivations, never prior ones.
    pub fn resume(
        &self,
        program: &Program,
        prior: &Solution,
        delta: &Delta,
    ) -> Result<Solution, Box<SolveFailure>> {
        let wall_start = Instant::now();
        let guard = Guard::new(&self.config.budget);
        let tracer = Tracer::new(self.config.trace.as_ref());
        if let Some(obs) = &self.config.observer {
            obs.resume_started(delta.len());
        }
        let mut stats = SolveStats {
            per_rule: program
                .rules
                .iter()
                .enumerate()
                .map(|(i, r)| RuleStats {
                    rule: i,
                    head: program.decl(r.head_pred).name().to_string(),
                    ..RuleStats::default()
                })
                .collect(),
            ..SolveStats::default()
        };

        // Validate the prior solution and the delta before touching
        // anything; on a validation error the partial model is the
        // unmodified prior model.
        let validated = check_prior(program, prior).and_then(|()| resolve_delta(program, delta));
        let resolved = match validated {
            Ok(resolved) => resolved,
            Err(e) => {
                let db = prior.database().clone();
                stats.total_facts = db.total_facts() as u64;
                stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
                if let Some(obs) = &self.config.observer {
                    obs.solve_finished(&stats);
                }
                let partial = make_solution(program, db, stats.clone(), None, None);
                return Err(Box::new(SolveFailure {
                    error: e.into(),
                    partial,
                    stats,
                }));
            }
        };

        // An empty delta cannot change a complete fixed point: hand back
        // a solution sharing the prior database — no clone, no
        // stratification, no per-stratum bookkeeping. Skipped when ascent
        // instrumentation is requested, since enabling counters mutates
        // the database and needs the warm-start copy below.
        if delta.is_empty() && self.config.ascent.is_none() {
            stats.total_facts = prior.database().total_facts() as u64;
            stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
            tracer.record(0, SpanKind::Solve, 0);
            let trace = tracer.finish(crate::solver::rule_heads(program));
            if let Some(obs) = &self.config.observer {
                obs.solve_finished(&stats);
            }
            let events = self
                .config
                .record_provenance
                .then(|| prior.events().cloned().unwrap_or_default());
            return Ok(make_solution(
                program,
                prior.database_arc(),
                stats,
                events,
                trace,
            ));
        }

        // Warm start: clone the prior fixed point and extend its event
        // log when provenance is on (the prior log may be absent if the
        // prior solve ran without recording).
        let mut db = prior.database().clone();
        if self.config.ascent.is_some() {
            // Counters carried over from a prior ascent-enabled solve are
            // kept; otherwise heights are measured from the resume start.
            db.enable_ascent();
        }
        let mut events: Option<Vec<Event>> = self
            .config
            .record_provenance
            .then(|| prior.events().cloned().unwrap_or_default());

        let outcome = self.resume_inner(
            program,
            &guard,
            &mut db,
            resolved,
            &mut stats,
            &mut events,
            &tracer,
        );

        stats.total_facts = db.total_facts() as u64;
        stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
        tracer.record(0, SpanKind::Solve, 0);
        let trace = tracer.finish(crate::solver::rule_heads(program));
        if let Some(obs) = &self.config.observer {
            obs.solve_finished(&stats);
        }
        let solution = make_solution(program, db, stats.clone(), events, trace);
        match outcome {
            Ok(()) => Ok(solution),
            Err(mut error) => {
                // Refresh the stats snapshot embedded at the failure
                // site, exactly as `solve` does.
                if let SolveError::RoundLimitExceeded { stats: s, .. }
                | SolveError::BudgetExceeded { stats: s, .. } = &mut error
                {
                    *s = stats.clone();
                }
                Err(Box::new(SolveFailure {
                    error,
                    partial: solution,
                    stats,
                }))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resume_inner(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        resolved: Vec<(PredId, Vec<Value>)>,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        let strata = stratify(program)?;
        let npreds = program.num_predicates();

        // An insertion into a predicate a negated body atom can
        // (transitively) depend on would require retraction, which the
        // warm start cannot express. Fall back to a full from-scratch
        // solve of program ∪ delta — same model, no warm-start speedup.
        let mut delta_preds = vec![false; npreds];
        for (pred, _) in &resolved {
            delta_preds[pred.0 as usize] = true;
        }
        if negation_reaches(program, &delta_preds) {
            *db = Database::for_program(program, self.config.use_indexes);
            if self.config.ascent.is_some() {
                db.enable_ascent();
            }
            if let Some(log) = events.as_mut() {
                log.clear();
            }
            return self.solve_inner(program, guard, db, &resolved, stats, events, tracer);
        }

        // Apply the delta as extensional updates, tracking net changes
        // per predicate; already-subsumed entries are no-ops.
        let seed_start = tracer.now_ns();
        let mut pending: Vec<Vec<Row>> = vec![Vec::new(); npreds];
        let mut dirty = vec![false; npreds];
        for (pred, values) in resolved {
            match db
                .insert(pred, values.clone())
                .map_err(|fault| insert_fault_error(program, pred, None, fault))?
            {
                InsertOutcome::Unchanged => {}
                outcome => {
                    stats.facts_inserted += 1;
                    dirty[pred.0 as usize] = true;
                    if let InsertOutcome::LatIncrease(key, _) = &outcome {
                        self.check_ascent(program, db, pred, key);
                    }
                    accumulate_change(&mut pending, pred, &outcome);
                    if let Some(log) = events.as_mut() {
                        log.push(Event {
                            pred,
                            tuple: match &outcome {
                                // Log the joined cell value, as fact
                                // loading does via the insert outcome.
                                InsertOutcome::LatIncrease(key, value) => {
                                    let mut full = key.to_vec();
                                    full.push(value.clone());
                                    full
                                }
                                _ => values.clone(),
                            },
                            source: Source::Fact,
                        });
                    }
                }
            }
        }
        tracer.record(0, SpanKind::ResumeSeed, seed_start);

        // Compile the specialized join kernels against the warm database,
        // exactly as a from-scratch solve would (provenance stays on the
        // generic evaluator).
        let kernels = if self.config.use_kernels && !self.config.record_provenance {
            KernelSet::compile(program, db, self.config.ascent.is_none())
        } else {
            KernelSet::empty()
        };

        // Re-run exactly the strata a change can reach, in stratum
        // order. Stratification guarantees a stratum's body predicates
        // are final before it runs, so accumulating changes front to
        // back seeds every affected stratum with its complete delta.
        for (stratum, group) in strata.rule_groups.iter().enumerate() {
            let reads_dirty = group.iter().any(|&r| {
                program.rules[r]
                    .body
                    .iter()
                    .any(|item| matches!(item, CItem::Atom { pred, .. } if dirty[pred.0 as usize]))
            });
            if !reads_dirty {
                continue;
            }
            stats.strata += 1;
            stats.per_stratum.push(StratumStats {
                stratum,
                rounds: 0,
                delta_sizes: Vec::new(),
            });
            let mut changes: Vec<Vec<Row>> = vec![Vec::new(); npreds];
            let stratum_start = tracer.now_ns();
            let result = match self.config.strategy {
                Strategy::Naive => self.run_naive(
                    program,
                    guard,
                    db,
                    &kernels,
                    group,
                    stratum,
                    stats,
                    events,
                    Some(&mut changes),
                    tracer,
                ),
                Strategy::SemiNaive => {
                    let seed = seed_delta(program, db, group, &pending, npreds);
                    self.run_semi_naive_rounds(
                        program,
                        guard,
                        db,
                        &kernels,
                        group,
                        stratum,
                        npreds,
                        stats,
                        events,
                        seed,
                        Some(&mut changes),
                        tracer,
                    )
                }
            };
            tracer.record(0, SpanKind::Stratum { stratum }, stratum_start);
            result?;
            for (pred, rows) in changes.into_iter().enumerate() {
                if !rows.is_empty() {
                    dirty[pred] = true;
                    pending[pred].extend(rows);
                }
            }
        }
        Ok(())
    }
}

/// Checks that `prior` was solved over (a program shaped exactly like)
/// `program`: same predicate names resolving to the same ids, same
/// kinds. Facts and rules need not match — that is the point of a
/// resume — but the predicate layout must, since the prior database is
/// reused positionally.
fn check_prior(program: &Program, prior: &Solution) -> Result<(), DeltaError> {
    if prior.num_predicates() != program.num_predicates() {
        return Err(DeltaError::SolutionMismatch);
    }
    for (pred, decl) in program.predicates() {
        if prior.predicate(decl.name()) != Some(pred)
            || prior.is_lattice(decl.name()) != Some(decl.is_lattice())
        {
            return Err(DeltaError::SolutionMismatch);
        }
    }
    Ok(())
}

impl Program {
    /// Returns a copy of this program with the delta's facts appended —
    /// the program whose model [`Solver::resume`] computes when handed
    /// the same delta.
    ///
    /// This is the bridge between the incremental and the demand
    /// subsystems: after a delta arrives, point queries against the
    /// updated world are answered by
    /// [`Solver::solve_query`](crate::demand) on `with_delta(&delta)` —
    /// demand-restricted *and* reflecting the update, without ever
    /// materializing the full updated model.
    ///
    /// # Errors
    ///
    /// [`DeltaError::UnknownPredicate`] / [`DeltaError::ArityMismatch`]
    /// if the delta does not fit this program's declarations.
    pub fn with_delta(&self, delta: &Delta) -> Result<Program, DeltaError> {
        let mut facts = self.facts.clone();
        facts.extend(resolve_delta(self, delta)?);
        Ok(Program {
            preds: self.preds.clone(),
            pred_names: self.pred_names.clone(),
            funcs: self.funcs.clone(),
            rules: self.rules.clone(),
            facts,
            index_requests: self.index_requests.clone(),
        })
    }
}

/// Resolves a name-based delta against the program's declarations,
/// checking arities.
fn resolve_delta(
    program: &Program,
    delta: &Delta,
) -> Result<Vec<(PredId, Vec<Value>)>, DeltaError> {
    let mut resolved = Vec::with_capacity(delta.len());
    for (name, tuple) in delta.entries() {
        let Some((pred, decl)) = program.predicates().find(|(_, d)| d.name() == name) else {
            return Err(DeltaError::UnknownPredicate {
                predicate: name.to_string(),
            });
        };
        if tuple.len() != decl.arity() {
            return Err(DeltaError::ArityMismatch {
                predicate: name.to_string(),
                declared: decl.arity(),
                found: tuple.len(),
            });
        }
        resolved.push((pred, tuple.to_vec()));
    }
    Ok(resolved)
}

/// Conservative check for the negation fallback: transitively closes the
/// delta-touched predicate set over rule dependencies (a rule whose body
/// reads a dirty predicate dirties its head) and reports whether any
/// negated body atom reads a dirty predicate.
fn negation_reaches(program: &Program, delta_preds: &[bool]) -> bool {
    let mut dirty = delta_preds.to_vec();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if dirty[rule.head_pred.0 as usize] {
                continue;
            }
            let reads = rule.body.iter().any(|item| match item {
                CItem::Atom { pred, .. } | CItem::NegAtom { pred, .. } => dirty[pred.0 as usize],
                _ => false,
            });
            if reads {
                dirty[rule.head_pred.0 as usize] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    program.rules.iter().any(|rule| {
        rule.body
            .iter()
            .any(|item| matches!(item, CItem::NegAtom { pred, .. } if dirty[pred.0 as usize]))
    })
}

/// Builds the warm-start `∆` for one stratum: the pending changes of
/// every predicate the stratum's rules read positively. Relational rows
/// pass through as-is; lattice keys are deduplicated and re-read from
/// the database so the delta row carries the *current* cell value
/// (intermediate values a cell climbed through in earlier strata must
/// not leak into this stratum's witnesses — a from-scratch solve would
/// only ever see the settled value).
fn seed_delta(
    program: &Program,
    db: &Database,
    group: &[usize],
    pending: &[Vec<Row>],
    npreds: usize,
) -> Vec<Vec<Row>> {
    let mut read_preds = vec![false; npreds];
    for &r in group {
        for item in &program.rules[r].body {
            if let CItem::Atom { pred, .. } = item {
                read_preds[pred.0 as usize] = true;
            }
        }
    }
    let mut seed: Vec<Vec<Row>> = vec![Vec::new(); npreds];
    for (pred, rows) in pending.iter().enumerate() {
        if !read_preds[pred] || rows.is_empty() {
            continue;
        }
        match db.pred(PredId(pred as u32)) {
            PredData::Rel(_) => seed[pred] = rows.clone(),
            PredData::Lat(lat) => {
                let mut seen: HashSet<&[Value]> = HashSet::new();
                for row in rows {
                    let key = &row[..row.len() - 1];
                    if !seen.insert(key) {
                        continue;
                    }
                    let value = lat
                        .value(key, db.spill())
                        .expect("pending lattice key has a stored cell");
                    let mut full = key.to_vec();
                    full.push(value.clone());
                    seed[pred].push(full.into());
                }
            }
        }
    }
    seed
}
