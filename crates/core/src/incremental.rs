//! Incremental re-solving: warm-starting the fixed point from a prior
//! model plus a delta of extensional updates.
//!
//! A [`Delta`] is a sequence of [`DeltaOp`]s applied to the *extensional
//! store* E — the set of asserted facts the model is the least fixed
//! point of. Inserts and lub-raises grow E; retracts and lowers shrink
//! it. [`Solver::resume`] computes the model of the updated store E′
//! from the prior model, re-doing as little work as possible:
//!
//! * **Monotone deltas** (inserts and raises only) re-enter the
//!   semi-naïve loop directly. The strategy (§3.7 of the paper) already
//!   works in deltas: each round re-evaluates rules only against the
//!   ground atoms that *strictly increased* since the previous round,
//!   and a finished solve is simply the state where that delta has
//!   drained — so a monotone update seeds the loop as the initial `∆`,
//!   skipping the seed round and every untouched stratum entirely.
//!   FLIX programs are monotone, so `M(E) ⊑ M(E ∪ ∆)`: the prior model
//!   is a sound under-approximation of the updated one and nothing ever
//!   needs to be taken back.
//!
//! * **Retracting deltas** (any retract or lower with net effect) run a
//!   DRed-style over-delete/re-derive pass adapted to lattice semantics
//!   (see DESIGN §16). The provenance event log of the prior solve is a
//!   well-founded proof forest: premises are logged before conclusions.
//!   One forward pass over it marks the *cone of consequences* of the
//!   removed assertions — every derivation with a removed or already-
//!   marked premise, and for lattice cells every join at or after the
//!   first contaminated one. The database is rebuilt without the cone
//!   (an over-deletion: survivors are provably derivable from E′, so
//!   the result is a sound under-approximation), E′ is re-asserted, and
//!   the affected strata re-run to the fixed point, restoring every
//!   over-deleted fact that has an alternative derivation. Lattice
//!   cells converge to the lub of their *surviving* justifications
//!   rather than keeping a stale upper bound.
//!
//! * **Fallback.** Deltas the warm paths cannot handle exactly degrade
//!   to a from-scratch solve of E′ — the same model, without the
//!   speedup: deltas reaching a negated body atom (insertions into a
//!   negated predicate invalidate derivations; retractions create new
//!   ones), and retractions when the prior solve did not record a
//!   complete provenance log. Retractions additionally require the
//!   prior's extensional store to be known; a solution loaded from a
//!   version-1 snapshot rejects them with
//!   [`DeltaError::NoExtensionalBase`].
//!
//! # Example
//!
//! ```
//! use flix_core::incremental::Delta;
//! use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Solver, Term};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let edge = b.relation("Edge", 2);
//! let path = b.relation("Path", 2);
//! b.fact(edge, vec![1.into(), 2.into()]);
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
//!     [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
//! );
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
//!     [
//!         BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
//!         BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
//!     ],
//! );
//! let program = b.build()?;
//! let solver = Solver::new();
//! let initial = solver.solve(&program)?;
//! assert!(!initial.contains("Path", &[1.into(), 3.into()]));
//!
//! // Monotone update: a new edge extends the reachable set.
//! let delta = Delta::new().insert("Edge", vec![2.into(), 3.into()]);
//! let updated = solver.resume(&program, &initial, &delta)?;
//! assert!(updated.contains("Path", &[1.into(), 3.into()]));
//!
//! // Retraction: taking the edge back restores the initial model.
//! // The store tracks deltas across resumes, so this removes the
//! // assertion made by the previous delta, not a program fact.
//! let delta = Delta::new().retract("Edge", vec![2.into(), 3.into()]);
//! let reverted = solver.resume(&program, &updated, &delta)?;
//! assert!(!reverted.contains("Path", &[1.into(), 3.into()]));
//! # Ok(())
//! # }
//! ```

// Internal plumbing passes `SolveError` by value between rounds, exactly
// like `solver.rs`; it is boxed inside `SolveFailure` at the API boundary.
#![allow(clippy::result_large_err)]

use crate::database::{Database, InsertOutcome, PredData, Row};
use crate::guard::Guard;
use crate::kernel::KernelSet;
use crate::observe::{RuleStats, StratumStats};
use crate::program::{CItem, Program};
use crate::provenance::{pattern_matches, Event, Source};
use crate::solver::{accumulate_change, insert_fault_error, make_solution, FactSource};
use crate::stratify::{stratify, Strata};
use crate::trace::{SpanKind, Tracer};
use crate::{PredId, Solution, SolveError, SolveFailure, SolveStats, Solver, Strategy, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One update to the extensional store: an assertion added or removed.
///
/// All four operations are set operations on the store E of *asserted*
/// facts; the model is always the least fixed point of the rules over
/// the current store. In particular:
///
/// * `Retract` removes an assertion. Retracting a tuple that was never
///   asserted — including tuples only ever *derived* by rules — is a
///   no-op; derived facts disappear exactly when their last surviving
///   derivation does.
/// * `Raise` asserts that a lattice cell is at least `element` (the
///   cell holds the lub of all assertions and rule derivations), and is
///   equivalent to `Insert` with the element appended as the last
///   column.
/// * `Lower` removes the assertion made by the matching `Raise` (or
///   lattice fact). The cell re-settles at the lub of its *remaining*
///   justifications — possibly `⊥`, dropping the cell — rather than at
///   any particular smaller value. It is equivalent to `Retract` of the
///   key-plus-element tuple.
///
/// Operations are predicate-*name* based and are resolved — and
/// arity-checked — when the delta is applied.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp {
    /// Assert a relational tuple (or a lattice fact given as key columns
    /// plus the element).
    Insert {
        /// The predicate name.
        predicate: String,
        /// The full tuple, declared arity wide.
        tuple: Vec<Value>,
    },
    /// Remove a previously asserted relational tuple (or lattice fact).
    Retract {
        /// The predicate name.
        predicate: String,
        /// The full tuple, declared arity wide.
        tuple: Vec<Value>,
    },
    /// Assert that the lattice cell at `key` is at least `element`.
    Raise {
        /// The predicate name.
        predicate: String,
        /// The key columns (declared arity minus one).
        key: Vec<Value>,
        /// The asserted lattice element.
        element: Value,
    },
    /// Remove the assertion that the cell at `key` is at least
    /// `element`; the cell re-settles at the lub of what remains.
    Lower {
        /// The predicate name.
        predicate: String,
        /// The key columns (declared arity minus one).
        key: Vec<Value>,
        /// The element whose assertion is removed.
        element: Value,
    },
}

/// An update to a program's extensional store: a sequence of
/// [`DeltaOp`]s, applied in order by [`Solver::resume`].
///
/// The classic builder methods ([`Delta::insert`], [`Delta::raise`],
/// [`Delta::from_facts`], [`Delta::push`]) are thin wrappers that
/// construct the corresponding ops; [`Delta::retract`] and
/// [`Delta::lower`] cover the removing half, and [`Delta::op`] /
/// [`Delta::push_op`] take a [`DeltaOp`] directly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// Creates an empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Appends one operation (chaining form).
    pub fn op(mut self, op: DeltaOp) -> Delta {
        self.ops.push(op);
        self
    }

    /// Appends one operation (mutating form).
    pub fn push_op(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Asserts one fact (chaining form): a full tuple for a relational
    /// predicate, or key columns plus the element for a lattice
    /// predicate. Wrapper over [`DeltaOp::Insert`].
    pub fn insert(mut self, predicate: impl Into<String>, tuple: Vec<Value>) -> Delta {
        self.push(predicate, tuple);
        self
    }

    /// Asserts one fact (mutating form). See [`Delta::insert`].
    pub fn push(&mut self, predicate: impl Into<String>, tuple: Vec<Value>) {
        self.ops.push(DeltaOp::Insert {
            predicate: predicate.into(),
            tuple,
        });
    }

    /// Removes one previously asserted fact (chaining form). Wrapper
    /// over [`DeltaOp::Retract`]; see there for the exact semantics.
    pub fn retract(mut self, predicate: impl Into<String>, tuple: Vec<Value>) -> Delta {
        self.ops.push(DeltaOp::Retract {
            predicate: predicate.into(),
            tuple,
        });
        self
    }

    /// Asserts a lattice lub-raise: the cell at `key` is raised to (at
    /// least) `element`. Wrapper over [`DeltaOp::Raise`].
    pub fn raise(mut self, predicate: impl Into<String>, key: Vec<Value>, element: Value) -> Delta {
        self.ops.push(DeltaOp::Raise {
            predicate: predicate.into(),
            key,
            element,
        });
        self
    }

    /// Removes a lattice assertion: the cell at `key` loses the
    /// justification `element` and re-settles at the lub of what
    /// remains. Wrapper over [`DeltaOp::Lower`].
    pub fn lower(mut self, predicate: impl Into<String>, key: Vec<Value>, element: Value) -> Delta {
        self.ops.push(DeltaOp::Lower {
            predicate: predicate.into(),
            key,
            element,
        });
        self
    }

    /// Appends every operation of `other`, in order — the composition
    /// `self; other` (the persistence layer folds WAL frames with it).
    pub fn extend_from(&mut self, other: &Delta) {
        self.ops.extend(other.ops.iter().cloned());
    }

    /// Builds an inserting delta from every fact of `program` — the
    /// flixr `--update` path: the update file is compiled as a
    /// standalone program (its facts re-declare the predicates they
    /// touch) and its facts become the delta.
    pub fn from_facts(program: &Program) -> Delta {
        let mut delta = Delta::new();
        for (pred, values) in program.facts() {
            delta.push(program.decl(pred).name(), values.to_vec());
        }
        delta
    }

    /// The number of operations, of any kind.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta holds no operations of any kind.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }
}

/// A [`Delta`] (or prior [`Solution`]) that does not fit the program
/// handed to [`Solver::resume`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A delta operation names a predicate the program does not declare.
    UnknownPredicate {
        /// The unresolvable name.
        predicate: String,
    },
    /// A delta operation's tuple width does not match the predicate's
    /// declared arity (for lattice predicates and the `Raise`/`Lower`
    /// forms, key columns plus the element).
    ArityMismatch {
        /// The predicate name.
        predicate: String,
        /// The declared arity.
        declared: usize,
        /// The operation's tuple width.
        found: usize,
    },
    /// The prior solution was not produced from the program being
    /// resumed: predicate names, order, or kinds differ.
    SolutionMismatch,
    /// The delta retracts or lowers, but the prior solution's
    /// extensional store is unknown (it was loaded from a version-1
    /// snapshot), so the net effect of a removal cannot be determined.
    NoExtensionalBase,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownPredicate { predicate } => {
                write!(f, "delta names unknown predicate {predicate}")
            }
            DeltaError::ArityMismatch {
                predicate,
                declared,
                found,
            } => write!(
                f,
                "delta tuple for {predicate} has {found} columns, declared arity is {declared}"
            ),
            DeltaError::SolutionMismatch => write!(
                f,
                "prior solution does not match the program being resumed \
                 (was it produced by solving a different program?)"
            ),
            DeltaError::NoExtensionalBase => write!(
                f,
                "delta retracts facts but the prior solution's extensional \
                 store is unknown (was it loaded from a version-1 snapshot?); \
                 solve from scratch instead"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<DeltaError> for SolveError {
    fn from(e: DeltaError) -> SolveError {
        SolveError::Delta(e)
    }
}

/// A [`DeltaOp`] resolved against the program: an assertion added to or
/// removed from the extensional store. Lattice raises and lowers
/// normalize to the key-plus-element tuple form here.
struct ResolvedOp {
    add: bool,
    pred: PredId,
    tuple: Vec<Value>,
}

impl Solver {
    /// Resumes a finished solve: applies `delta` to the extensional
    /// store behind `prior` (which must be a *complete* fixed point of
    /// `program`, as returned by [`Solver::solve`] or an earlier
    /// `resume`) and computes the model of the updated store, re-running
    /// only the work the update can reach.
    ///
    /// Monotone deltas seed the semi-naïve worklist with exactly the
    /// changed cells; deltas with retractions or lowers run the
    /// over-delete/re-derive pass when the prior solve recorded a
    /// complete provenance log, and degrade to a from-scratch solve of
    /// the updated store otherwise (see the module docs for the exact
    /// conditions). Either way the result is cell-for-cell identical to
    /// a from-scratch [`Solver::solve`] over the updated store, for
    /// every strategy and thread count; the randomized update-sequence
    /// parity suite pins this.
    ///
    /// Resumed work is observable like any other solve: rounds, rule
    /// evaluations, and net insertions (including the delta's own
    /// insertions and any re-asserted survivors, counted like fact
    /// loads) appear in [`SolveStats`], the per-rule/per-stratum
    /// profiles, and the attached [`crate::Observer`], and the
    /// configured [`crate::Budget`] governs the resumed rounds.
    /// Statistics describe the *resumed* run only; `per_stratum` holds
    /// entries just for re-run strata (tagged with their original
    /// stratum indices). When provenance recording is on, the prior
    /// solution's event log is carried over — pruned of the retracted
    /// cone when the delta removes assertions — and extended, so
    /// [`Solution::explain`] spans both runs.
    ///
    /// # Errors
    ///
    /// All [`Solver::solve`] failure modes, plus [`SolveError::Delta`]
    /// when the delta or prior solution does not fit `program` (the
    /// partial solution is then the unmodified prior model). For
    /// monotone deltas the partial solution on failure is always ⊒ the
    /// prior model; a failure mid-retraction may additionally be missing
    /// over-deleted facts that re-derivation would have restored — it is
    /// a sound under-approximation of the updated model, not of the
    /// prior one.
    pub fn resume(
        &self,
        program: &Program,
        prior: &Solution,
        delta: &Delta,
    ) -> Result<Solution, Box<SolveFailure>> {
        let wall_start = Instant::now();
        let guard = Guard::new(&self.config.budget);
        let tracer = Tracer::new(self.config.trace.as_ref());
        if let Some(obs) = &self.config.observer {
            obs.resume_started(delta.len());
        }
        let mut stats = SolveStats {
            per_rule: program
                .rules
                .iter()
                .enumerate()
                .map(|(i, r)| RuleStats {
                    rule: i,
                    head: program.decl(r.head_pred).name().to_string(),
                    ..RuleStats::default()
                })
                .collect(),
            ..SolveStats::default()
        };

        // Validate the prior solution and the delta before touching
        // anything; on a validation error the partial model is the
        // unmodified prior model.
        let validated = check_prior(program, prior)
            .and_then(|()| resolve_delta(program, delta))
            .and_then(|ops| {
                if prior.edb().is_none() && ops.iter().any(|op| !op.add) {
                    Err(DeltaError::NoExtensionalBase)
                } else {
                    Ok(ops)
                }
            });
        let resolved = match validated {
            Ok(resolved) => resolved,
            Err(e) => {
                let db = prior.database().clone();
                stats.total_facts = db.total_facts() as u64;
                stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
                if let Some(obs) = &self.config.observer {
                    obs.solve_finished(&stats);
                }
                let mut partial = make_solution(program, db, stats.clone(), None, None);
                partial.set_edb(prior.edb().cloned());
                return Err(Box::new(SolveFailure {
                    error: e.into(),
                    partial,
                    stats,
                }));
            }
        };

        // An empty delta cannot change a complete fixed point: hand back
        // a solution sharing the prior database — no clone, no
        // stratification, no per-stratum bookkeeping. Skipped when ascent
        // instrumentation is requested, since enabling counters mutates
        // the database and needs the warm-start copy below.
        if delta.is_empty() && self.config.ascent.is_none() {
            stats.total_facts = prior.database().total_facts() as u64;
            stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
            tracer.record(0, SpanKind::Solve, 0);
            let trace = tracer.finish(crate::solver::rule_heads(program));
            if let Some(obs) = &self.config.observer {
                obs.solve_finished(&stats);
            }
            let events = self
                .config
                .record_provenance
                .then(|| prior.events().cloned().unwrap_or_default());
            let log_ok = prior.events().is_some() && prior.events_complete();
            let mut solution = make_solution(program, prior.database_arc(), stats, events, trace);
            solution.set_edb(prior.edb().cloned());
            let has_log = solution.provenance().is_some();
            solution.set_events_complete(has_log && log_ok);
            return Ok(solution);
        }

        // The updated extensional store E′, the assertions the delta
        // effectively removed from it (present before, absent after),
        // and the assertions it effectively added (absent before,
        // present after); insert-then-retract and retract-then-reinsert
        // within one delta both cancel out here. Without an extensional
        // base no removals exist (validated above), so the raw add ops
        // are exactly the net additions.
        let (eprime, removed, added) = match prior.edb() {
            Some(base) => {
                let (entries, removed, added) = apply_ops(base, &resolved);
                (Some(Arc::new(entries)), removed, Some(added))
            }
            None => (None, Vec::new(), None),
        };

        // Warm start: clone the prior fixed point and extend its event
        // log when provenance is on (the prior log may be absent if the
        // prior solve ran without recording).
        let mut db = prior.database().clone();
        if self.config.ascent.is_some() {
            // Counters carried over from a prior ascent-enabled solve are
            // kept; otherwise heights are measured from the resume start.
            db.enable_ascent();
        }
        let mut events: Option<Vec<Event>> = self
            .config
            .record_provenance
            .then(|| prior.events().cloned().unwrap_or_default());
        // The prior log, only when it covers every insertion since the
        // empty database — the precondition for exact over-deletion.
        let prior_log = prior
            .events()
            .filter(|_| prior.events_complete())
            .map(|v| v.as_slice());
        let mut rebuilt = false;

        let outcome = self.resume_inner(
            program,
            &guard,
            &mut db,
            resolved,
            eprime.as_ref().map(|v| v.as_slice()),
            added,
            &removed,
            prior_log,
            &mut rebuilt,
            &mut stats,
            &mut events,
            &tracer,
        );

        stats.total_facts = db.total_facts() as u64;
        stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
        tracer.record(0, SpanKind::Solve, 0);
        let trace = tracer.finish(crate::solver::rule_heads(program));
        if let Some(obs) = &self.config.observer {
            obs.solve_finished(&stats);
        }
        let mut solution = make_solution(program, db, stats.clone(), events, trace);
        solution.set_edb(eprime);
        // A rebuilt log covers the run from the empty database; a
        // carried-over one is complete only if the prior's was.
        let log_ok = rebuilt || (prior.events().is_some() && prior.events_complete());
        let has_log = solution.provenance().is_some();
        solution.set_events_complete(has_log && log_ok);
        match outcome {
            Ok(()) => Ok(solution),
            Err(mut error) => {
                // Refresh the stats snapshot embedded at the failure
                // site, exactly as `solve` does.
                if let SolveError::RoundLimitExceeded { stats: s, .. }
                | SolveError::BudgetExceeded { stats: s, .. } = &mut error
                {
                    *s = stats.clone();
                }
                Err(Box::new(SolveFailure {
                    error,
                    partial: solution,
                    stats,
                }))
            }
        }
    }

    /// Dispatches a validated resume to the warm monotone path, the
    /// over-delete/re-derive path, or the from-scratch fallback. Sets
    /// `rebuilt` when the event log was rebuilt from the empty database
    /// (fallback paths), even on failure part-way through.
    #[allow(clippy::too_many_arguments)]
    fn resume_inner(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        resolved: Vec<ResolvedOp>,
        eprime: Option<&[(PredId, Vec<Value>)]>,
        added: Option<Vec<(PredId, Vec<Value>)>>,
        removed: &[(PredId, Vec<Value>)],
        prior_log: Option<&[Event]>,
        rebuilt: &mut bool,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        let strata = stratify(program)?;
        let npreds = program.num_predicates();

        // Predicates the delta has a net effect on: insertions (possibly
        // already absorbed) and effective removals. A change reaching a
        // predicate a negated body atom (transitively) depends on cannot
        // be expressed by either warm path: an insertion into a negated
        // predicate invalidates derivations without leaving a trace in
        // the positive-premise proof forest, and a retraction creates
        // derivations out of nothing. Fall back to a from-scratch solve
        // of the updated store — same model, no warm-start speedup.
        let mut delta_preds = vec![false; npreds];
        for op in &resolved {
            if op.add {
                delta_preds[op.pred.0 as usize] = true;
            }
        }
        for (pred, _) in removed {
            delta_preds[pred.0 as usize] = true;
        }
        let negated = negation_reaches(program, &delta_preds);

        if removed.is_empty() {
            if negated {
                *rebuilt = true;
                self.reset_for_scratch(program, db, events);
                return match eprime {
                    // The store is known: solve it exactly. This also
                    // covers insertions absorbed by earlier resumes.
                    Some(store) => self.solve_inner(
                        program,
                        guard,
                        db,
                        FactSource::Exact(store),
                        stats,
                        events,
                        tracer,
                    ),
                    // Unknown store (version-1 snapshot prior): the best
                    // reconstruction is the program's facts plus this
                    // delta's insertions.
                    None => {
                        let adds: Vec<(PredId, Vec<Value>)> =
                            resolved.into_iter().map(|op| (op.pred, op.tuple)).collect();
                        self.solve_inner(
                            program,
                            guard,
                            db,
                            FactSource::ProgramPlus(&adds),
                            stats,
                            events,
                            tracer,
                        )
                    }
                };
            }
            // Seed the warm path from the *net* store change E′ \ E, not
            // the raw add ops: an insertion cancelled by a later
            // retraction of the same tuple (reachable via WAL recovery,
            // which folds frames from separate runs into one delta) must
            // not reach the warm database, or the model diverges from a
            // scratch solve of E′. Without an extensional base the raw
            // add ops are the net additions (removals were rejected).
            let adds: Vec<ResolvedOp> = match added {
                Some(net) => net
                    .into_iter()
                    .map(|(pred, tuple)| ResolvedOp {
                        add: true,
                        pred,
                        tuple,
                    })
                    .collect(),
                None => resolved.into_iter().filter(|op| op.add).collect(),
            };
            return self.resume_monotone(program, guard, db, &strata, adds, stats, events, tracer);
        }

        let store = eprime.expect("retracting deltas are rejected without an extensional store");
        if negated || prior_log.is_none() {
            *rebuilt = true;
            self.reset_for_scratch(program, db, events);
            return self.solve_inner(
                program,
                guard,
                db,
                FactSource::Exact(store),
                stats,
                events,
                tracer,
            );
        }
        self.resume_retract(
            program,
            guard,
            db,
            &strata,
            store,
            removed,
            prior_log.expect("checked above"),
            stats,
            events,
            tracer,
        )
    }

    /// Resets the database (and event log, when recording) for a
    /// from-scratch fallback solve.
    fn reset_for_scratch(
        &self,
        program: &Program,
        db: &mut Database,
        events: &mut Option<Vec<Event>>,
    ) {
        *db = Database::for_program(program, self.config.use_indexes);
        if self.config.ascent.is_some() {
            db.enable_ascent();
        }
        if let Some(log) = events.as_mut() {
            log.clear();
        }
    }

    /// The warm monotone path: applies the insertions on top of the
    /// prior fixed point and re-runs exactly the strata a change can
    /// reach, seeding the semi-naïve worklist with the changed cells.
    #[allow(clippy::too_many_arguments)]
    fn resume_monotone(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        strata: &Strata,
        adds: Vec<ResolvedOp>,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        let npreds = program.num_predicates();

        // Apply the delta as extensional updates, tracking net changes
        // per predicate; already-subsumed entries are no-ops.
        let seed_start = tracer.now_ns();
        let mut pending: Vec<Vec<Row>> = vec![Vec::new(); npreds];
        let mut dirty = vec![false; npreds];
        for op in adds {
            let (pred, values) = (op.pred, op.tuple);
            match db
                .insert(pred, values.clone())
                .map_err(|fault| insert_fault_error(program, pred, None, fault))?
            {
                InsertOutcome::Unchanged => {}
                outcome => {
                    stats.facts_inserted += 1;
                    dirty[pred.0 as usize] = true;
                    if let InsertOutcome::LatIncrease(key, _) = &outcome {
                        self.check_ascent(program, db, pred, key);
                    }
                    accumulate_change(&mut pending, pred, &outcome);
                    if let Some(log) = events.as_mut() {
                        log.push(Event {
                            pred,
                            tuple: match &outcome {
                                // Log the joined cell value, as fact
                                // loading does via the insert outcome.
                                InsertOutcome::LatIncrease(key, value) => {
                                    let mut full = key.to_vec();
                                    full.push(value.clone());
                                    full
                                }
                                _ => values.clone(),
                            },
                            source: Source::Fact,
                        });
                    }
                }
            }
        }
        tracer.record(0, SpanKind::ResumeSeed, seed_start);

        // Compile the specialized join kernels against the warm database,
        // exactly as a from-scratch solve would (provenance stays on the
        // generic evaluator).
        let kernels = if self.config.use_kernels && !self.config.record_provenance {
            KernelSet::compile(program, db, self.config.ascent.is_none())
        } else {
            KernelSet::empty()
        };

        // Re-run exactly the strata a change can reach, in stratum
        // order. Stratification guarantees a stratum's body predicates
        // are final before it runs, so accumulating changes front to
        // back seeds every affected stratum with its complete delta.
        for (stratum, group) in strata.rule_groups.iter().enumerate() {
            let reads_dirty = group.iter().any(|&r| {
                program.rules[r]
                    .body
                    .iter()
                    .any(|item| matches!(item, CItem::Atom { pred, .. } if dirty[pred.0 as usize]))
            });
            if !reads_dirty {
                continue;
            }
            stats.strata += 1;
            stats.per_stratum.push(StratumStats {
                stratum,
                rounds: 0,
                delta_sizes: Vec::new(),
            });
            let mut changes: Vec<Vec<Row>> = vec![Vec::new(); npreds];
            let stratum_start = tracer.now_ns();
            let result = match self.config.strategy {
                Strategy::Naive => self.run_naive(
                    program,
                    guard,
                    db,
                    &kernels,
                    group,
                    stratum,
                    stats,
                    events,
                    Some(&mut changes),
                    tracer,
                ),
                Strategy::SemiNaive => {
                    let seed = seed_delta(program, db, group, &pending, npreds);
                    self.run_semi_naive_rounds(
                        program,
                        guard,
                        db,
                        &kernels,
                        group,
                        stratum,
                        npreds,
                        stats,
                        events,
                        seed,
                        Some(&mut changes),
                        tracer,
                    )
                }
            };
            tracer.record(0, SpanKind::Stratum { stratum }, stratum_start);
            result?;
            for (pred, rows) in changes.into_iter().enumerate() {
                if !rows.is_empty() {
                    dirty[pred] = true;
                    pending[pred].extend(rows);
                }
            }
        }
        Ok(())
    }

    /// The over-delete/re-derive path (DESIGN §16). Precondition: the
    /// prior event log is complete and no removal reaches a negated
    /// cone.
    ///
    /// Phase 1 walks the prior log once, forward. The log is a
    /// well-founded proof forest — premises are recorded before the
    /// conclusions they support — so a single pass computes the cone of
    /// consequences of the removed assertions: an event dies when its
    /// own fact was removed, when any positive premise matches an
    /// already-dead fact, or (for lattice cells, whose logged values are
    /// running joins) when any earlier event of the same cell died.
    ///
    /// Phase 2 rebuilds the database without the cone and re-asserts the
    /// updated store E′. Every survivor is justified by a chain of
    /// surviving events grounded in E′, so the result is ⊑ the target
    /// model — a sound under-approximation.
    ///
    /// Phase 3 re-runs the strata to the fixed point: strata whose rule
    /// heads lost facts re-evaluate fully (an over-deleted fact may have
    /// an alternative derivation the first-derivation-only log never
    /// recorded), the rest seed from net changes as in the monotone
    /// path. Iterating rules to quiescence from a sound
    /// under-approximation yields exactly the least fixed point over
    /// E′; lattice cells land on the lub of their surviving and
    /// re-derived justifications.
    #[allow(clippy::too_many_arguments)]
    fn resume_retract(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        strata: &Strata,
        eprime: &[(PredId, Vec<Value>)],
        removed: &[(PredId, Vec<Value>)],
        prior_log: &[Event],
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        let seed_start = tracer.now_ns();
        let npreds = program.num_predicates();
        let is_lat: Vec<bool> = program.predicates().map(|(_, d)| d.is_lattice()).collect();

        // Phase 1: taint the cone. `deleted` holds dead relational
        // tuples; `dead_cells` holds the keys of dead lattice cells (a
        // contaminated cell drops entirely — its clean prefix of
        // justifications survives in the kept log and re-derivation
        // restores their lub).
        let mut deleted: Vec<HashSet<Vec<Value>>> = vec![HashSet::new(); npreds];
        let mut dead_cells: Vec<HashSet<Vec<Value>>> = vec![HashSet::new(); npreds];
        for (pred, tuple) in removed {
            let p = pred.0 as usize;
            if is_lat[p] {
                dead_cells[p].insert(tuple[..tuple.len() - 1].to_vec());
            } else {
                deleted[p].insert(tuple.clone());
            }
        }
        let keep = events.is_some();
        let mut kept: Vec<Event> = Vec::new();
        for event in prior_log {
            let p = event.pred.0 as usize;
            let mut dead = if is_lat[p] {
                dead_cells[p].contains(&event.tuple[..event.tuple.len() - 1])
            } else {
                deleted[p].contains(event.tuple.as_slice())
            };
            if !dead {
                if let Source::Rule { premises, .. } = &event.source {
                    dead = premises.iter().any(|premise| {
                        let q = premise.pred.0 as usize;
                        if is_lat[q] {
                            key_pattern_hits(&premise.pattern, &dead_cells[q])
                        } else {
                            pattern_hits(&premise.pattern, &deleted[q])
                        }
                    });
                }
            }
            if dead {
                if is_lat[p] {
                    dead_cells[p].insert(event.tuple[..event.tuple.len() - 1].to_vec());
                } else {
                    deleted[p].insert(event.tuple.clone());
                }
            } else if keep {
                kept.push(event.clone());
            }
        }

        // Phase 2: rebuild without the cone, then re-assert E′. The
        // columnar store has no in-place deletion — rebuilding also
        // keeps the per-predicate indexes dense.
        let mut fresh = Database::for_program(program, self.config.use_indexes);
        if self.config.ascent.is_some() {
            fresh.enable_ascent();
        }
        for i in 0..npreds {
            let pred = PredId(i as u32);
            match db.pred(pred) {
                PredData::Rel(rel) => {
                    for row in rel.rows() {
                        if !deleted[i].is_empty() && deleted[i].contains(row) {
                            continue;
                        }
                        fresh
                            .insert(pred, row.to_vec())
                            .map_err(|fault| insert_fault_error(program, pred, None, fault))?;
                    }
                }
                PredData::Lat(lat) => {
                    for (key, cell) in lat.iter() {
                        if !dead_cells[i].is_empty() && dead_cells[i].contains(key) {
                            continue;
                        }
                        let mut tuple = key.to_vec();
                        tuple.push(cell.clone());
                        fresh
                            .insert(pred, tuple)
                            .map_err(|fault| insert_fault_error(program, pred, None, fault))?;
                    }
                }
            }
        }
        *db = fresh;
        if let Some(log) = events.as_mut() {
            *log = kept;
        }

        // Re-assert the updated store. Survivors absorb most of it;
        // net changes (restored assertions, and insertions the delta
        // carried alongside the removals) seed the re-derivation.
        let mut pending: Vec<Vec<Row>> = vec![Vec::new(); npreds];
        let mut dirty = vec![false; npreds];
        for (pred, values) in eprime {
            match db
                .insert(*pred, values.clone())
                .map_err(|fault| insert_fault_error(program, *pred, None, fault))?
            {
                InsertOutcome::Unchanged => {}
                outcome => {
                    stats.facts_inserted += 1;
                    dirty[pred.0 as usize] = true;
                    if let InsertOutcome::LatIncrease(key, _) = &outcome {
                        self.check_ascent(program, db, *pred, key);
                    }
                    accumulate_change(&mut pending, *pred, &outcome);
                    if let Some(log) = events.as_mut() {
                        log.push(Event {
                            pred: *pred,
                            tuple: match &outcome {
                                InsertOutcome::LatIncrease(key, value) => {
                                    let mut full = key.to_vec();
                                    full.push(value.clone());
                                    full
                                }
                                _ => values.clone(),
                            },
                            source: Source::Fact,
                        });
                    }
                }
            }
        }
        tracer.record(0, SpanKind::ResumeSeed, seed_start);

        let kernels = if self.config.use_kernels && !self.config.record_provenance {
            KernelSet::compile(program, db, self.config.ascent.is_none())
        } else {
            KernelSet::empty()
        };

        // Phase 3: re-run the strata. A stratum re-evaluates fully when
        // any of its rule heads lost facts (the log records only first
        // derivations, so an over-deleted fact may be restorable through
        // a derivation no event witnesses); otherwise the monotone
        // change-seeded path applies.
        let mut del_dirty = vec![false; npreds];
        for i in 0..npreds {
            del_dirty[i] = !deleted[i].is_empty() || !dead_cells[i].is_empty();
        }
        for (stratum, group) in strata.rule_groups.iter().enumerate() {
            let heads_deleted = group
                .iter()
                .any(|&r| del_dirty[program.rules[r].head_pred.0 as usize]);
            let reads_dirty = group.iter().any(|&r| {
                program.rules[r]
                    .body
                    .iter()
                    .any(|item| matches!(item, CItem::Atom { pred, .. } if dirty[pred.0 as usize]))
            });
            if !heads_deleted && !reads_dirty {
                continue;
            }
            stats.strata += 1;
            stats.per_stratum.push(StratumStats {
                stratum,
                rounds: 0,
                delta_sizes: Vec::new(),
            });
            let mut changes: Vec<Vec<Row>> = vec![Vec::new(); npreds];
            let stratum_start = tracer.now_ns();
            // Full re-evaluation needs every rule to have a delta
            // variant to hang its first full join on; a (degenerate)
            // rule without positive body atoms falls back to the naïve
            // loop for the stratum.
            let seminaive_covers = group
                .iter()
                .all(|&r| !program.rules[r].delta_variants.is_empty());
            let result = match self.config.strategy {
                Strategy::SemiNaive if !heads_deleted || seminaive_covers => {
                    let seed = if heads_deleted {
                        full_seed(program, db, group, npreds)
                    } else {
                        seed_delta(program, db, group, &pending, npreds)
                    };
                    self.run_semi_naive_rounds(
                        program,
                        guard,
                        db,
                        &kernels,
                        group,
                        stratum,
                        npreds,
                        stats,
                        events,
                        seed,
                        Some(&mut changes),
                        tracer,
                    )
                }
                _ => self.run_naive(
                    program,
                    guard,
                    db,
                    &kernels,
                    group,
                    stratum,
                    stats,
                    events,
                    Some(&mut changes),
                    tracer,
                ),
            };
            tracer.record(0, SpanKind::Stratum { stratum }, stratum_start);
            result?;
            for (pred, rows) in changes.into_iter().enumerate() {
                if !rows.is_empty() {
                    dirty[pred] = true;
                    pending[pred].extend(rows);
                }
            }
        }
        Ok(())
    }
}

/// Checks that `prior` was solved over (a program shaped exactly like)
/// `program`: same predicate names resolving to the same ids, same
/// kinds. Facts and rules need not match — that is the point of a
/// resume — but the predicate layout must, since the prior database is
/// reused positionally.
fn check_prior(program: &Program, prior: &Solution) -> Result<(), DeltaError> {
    if prior.num_predicates() != program.num_predicates() {
        return Err(DeltaError::SolutionMismatch);
    }
    for (pred, decl) in program.predicates() {
        if prior.predicate(decl.name()) != Some(pred)
            || prior.is_lattice(decl.name()) != Some(decl.is_lattice())
        {
            return Err(DeltaError::SolutionMismatch);
        }
    }
    Ok(())
}

impl Program {
    /// Returns a copy of this program with the delta applied to its
    /// facts — the program whose model [`Solver::resume`] computes when
    /// handed the same delta: inserts and raises append, retracts and
    /// lowers remove every matching asserted fact.
    ///
    /// This is the bridge between the incremental and the demand
    /// subsystems: after a delta arrives, point queries against the
    /// updated world are answered by
    /// [`Solver::solve_query`](crate::demand) on `with_delta(&delta)` —
    /// demand-restricted *and* reflecting the update, without ever
    /// materializing the full updated model.
    ///
    /// # Errors
    ///
    /// [`DeltaError::UnknownPredicate`] / [`DeltaError::ArityMismatch`]
    /// if the delta does not fit this program's declarations.
    pub fn with_delta(&self, delta: &Delta) -> Result<Program, DeltaError> {
        let ops = resolve_delta(self, delta)?;
        let mut facts = self.facts.clone();
        for op in ops {
            if op.add {
                if !facts.iter().any(|(p, t)| *p == op.pred && *t == op.tuple) {
                    facts.push((op.pred, op.tuple));
                }
            } else {
                facts.retain(|(p, t)| !(*p == op.pred && *t == op.tuple));
            }
        }
        Ok(Program {
            preds: self.preds.clone(),
            pred_names: self.pred_names.clone(),
            funcs: self.funcs.clone(),
            rules: self.rules.clone(),
            facts,
            index_requests: self.index_requests.clone(),
        })
    }
}

/// Resolves a name-based delta against the program's declarations,
/// checking arities and normalizing the lattice op forms to full
/// key-plus-element tuples.
fn resolve_delta(program: &Program, delta: &Delta) -> Result<Vec<ResolvedOp>, DeltaError> {
    let mut resolved = Vec::with_capacity(delta.len());
    for op in delta.ops() {
        let (name, add) = match op {
            DeltaOp::Insert { predicate, .. } | DeltaOp::Raise { predicate, .. } => {
                (predicate, true)
            }
            DeltaOp::Retract { predicate, .. } | DeltaOp::Lower { predicate, .. } => {
                (predicate, false)
            }
        };
        let Some((pred, decl)) = program
            .predicates()
            .find(|(_, d)| d.name() == name.as_str())
        else {
            return Err(DeltaError::UnknownPredicate {
                predicate: name.clone(),
            });
        };
        let tuple: Vec<Value> = match op {
            DeltaOp::Insert { tuple, .. } | DeltaOp::Retract { tuple, .. } => tuple.clone(),
            DeltaOp::Raise { key, element, .. } | DeltaOp::Lower { key, element, .. } => {
                let mut full = key.clone();
                full.push(element.clone());
                full
            }
        };
        if tuple.len() != decl.arity() {
            return Err(DeltaError::ArityMismatch {
                predicate: name.clone(),
                declared: decl.arity(),
                found: tuple.len(),
            });
        }
        resolved.push(ResolvedOp { add, pred, tuple });
    }
    Ok(resolved)
}

/// Applies the ops, in order, to the extensional store `base`. Returns
/// the updated store E′ (order-preserving; re-adds land at the end), the
/// assertions with a *net* removal — present in `base`, absent from
/// E′ — deduplicated, and the assertions with a *net* addition — added
/// by the ops and still live in E′. Removing an assertion not currently
/// in the store is a no-op, so retract-then-reinsert within one delta
/// produces no net removal and no over-deletion work; symmetrically, an
/// insertion cancelled by a later retraction of the same tuple produces
/// no net addition and must not seed the warm paths.
#[allow(clippy::type_complexity)]
fn apply_ops(
    base: &[(PredId, Vec<Value>)],
    ops: &[ResolvedOp],
) -> (
    Vec<(PredId, Vec<Value>)>,
    Vec<(PredId, Vec<Value>)>,
    Vec<(PredId, Vec<Value>)>,
) {
    let mut entries: Vec<(PredId, Vec<Value>)> = base.to_vec();
    let mut alive = vec![true; entries.len()];
    // Indices of the currently-live copies of each assertion (the base
    // store may hold duplicates).
    let mut live: HashMap<(PredId, Vec<Value>), Vec<usize>> = HashMap::new();
    for (i, entry) in entries.iter().enumerate() {
        live.entry(entry.clone()).or_default().push(i);
    }
    for op in ops {
        let key = (op.pred, op.tuple.clone());
        if op.add {
            let slot = live.entry(key).or_default();
            if slot.is_empty() {
                entries.push((op.pred, op.tuple.clone()));
                alive.push(true);
                slot.push(entries.len() - 1);
            }
        } else if let Some(slot) = live.get_mut(&key) {
            for i in slot.drain(..) {
                alive[i] = false;
            }
        }
    }
    let mut removed = Vec::new();
    let mut seen: HashSet<&(PredId, Vec<Value>)> = HashSet::new();
    for entry in base {
        let gone = live.get(entry).is_none_or(|slot| slot.is_empty());
        if gone && seen.insert(entry) {
            removed.push(entry.clone());
        }
    }
    // Net additions: entries the ops pushed (index past the base) that
    // survived every later op. A push happens only while no live copy of
    // the key exists, so at most one pushed copy per key is alive and no
    // deduplication is needed.
    let added = entries
        .iter()
        .zip(&alive)
        .skip(base.len())
        .filter(|(_, alive)| **alive)
        .map(|(entry, _)| entry.clone())
        .collect();
    let eprime = entries
        .into_iter()
        .zip(alive)
        .filter(|(_, alive)| *alive)
        .map(|(entry, _)| entry)
        .collect();
    (eprime, removed, added)
}

/// Conservative check for the negation fallback: transitively closes the
/// delta-touched predicate set over rule dependencies (a rule whose body
/// reads a dirty predicate dirties its head) and reports whether any
/// negated body atom reads a dirty predicate.
fn negation_reaches(program: &Program, delta_preds: &[bool]) -> bool {
    let mut dirty = delta_preds.to_vec();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if dirty[rule.head_pred.0 as usize] {
                continue;
            }
            let reads = rule.body.iter().any(|item| match item {
                CItem::Atom { pred, .. } | CItem::NegAtom { pred, .. } => dirty[pred.0 as usize],
                _ => false,
            });
            if reads {
                dirty[rule.head_pred.0 as usize] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    program.rules.iter().any(|rule| {
        rule.body
            .iter()
            .any(|item| matches!(item, CItem::NegAtom { pred, .. } if dirty[pred.0 as usize]))
    })
}

/// Builds the warm-start `∆` for one stratum: the pending changes of
/// every predicate the stratum's rules read positively. Relational rows
/// pass through as-is; lattice keys are deduplicated and re-read from
/// the database so the delta row carries the *current* cell value
/// (intermediate values a cell climbed through in earlier strata must
/// not leak into this stratum's witnesses — a from-scratch solve would
/// only ever see the settled value).
fn seed_delta(
    program: &Program,
    db: &Database,
    group: &[usize],
    pending: &[Vec<Row>],
    npreds: usize,
) -> Vec<Vec<Row>> {
    let mut read_preds = vec![false; npreds];
    for &r in group {
        for item in &program.rules[r].body {
            if let CItem::Atom { pred, .. } = item {
                read_preds[pred.0 as usize] = true;
            }
        }
    }
    let mut seed: Vec<Vec<Row>> = vec![Vec::new(); npreds];
    for (pred, rows) in pending.iter().enumerate() {
        if !read_preds[pred] || rows.is_empty() {
            continue;
        }
        match db.pred(PredId(pred as u32)) {
            PredData::Rel(_) => seed[pred] = rows.clone(),
            PredData::Lat(lat) => {
                let mut seen: HashSet<&[Value]> = HashSet::new();
                for row in rows {
                    let key = &row[..row.len() - 1];
                    if !seen.insert(key) {
                        continue;
                    }
                    let value = lat
                        .value(key, db.spill())
                        .expect("pending lattice key has a stored cell");
                    let mut full = key.to_vec();
                    full.push(value.clone());
                    seed[pred].push(full.into());
                }
            }
        }
    }
    seed
}

/// Builds a full re-evaluation `∆` for one stratum: the complete current
/// contents of the *first* delta-variant predicate of each rule. One
/// variant with a full delta joins against full relations everywhere
/// else, so every rule is evaluated completely in the first round;
/// subsequent rounds proceed semi-naïvely over genuine changes.
fn full_seed(program: &Program, db: &Database, group: &[usize], npreds: usize) -> Vec<Vec<Row>> {
    let mut want = vec![false; npreds];
    for &r in group {
        if let Some((pred, _)) = program.rules[r].delta_variants.first() {
            want[pred.0 as usize] = true;
        }
    }
    let mut seed: Vec<Vec<Row>> = vec![Vec::new(); npreds];
    for (pred, wanted) in want.iter().enumerate() {
        if !*wanted {
            continue;
        }
        match db.pred(PredId(pred as u32)) {
            PredData::Rel(rel) => {
                seed[pred] = rel.rows().map(|row| Row::from(row.to_vec())).collect();
            }
            PredData::Lat(lat) => {
                for (key, cell) in lat.iter() {
                    let mut full = key.to_vec();
                    full.push(cell.clone());
                    seed[pred].push(full.into());
                }
            }
        }
    }
    seed
}

/// Does any tuple in `set` match the (possibly wildcarded) premise
/// pattern? Ground patterns are a hash lookup; wildcards scan.
fn pattern_hits(pattern: &[Option<Value>], set: &HashSet<Vec<Value>>) -> bool {
    if set.is_empty() {
        return false;
    }
    if pattern.iter().all(|col| col.is_some()) {
        let tuple: Vec<Value> = pattern.iter().map(|col| col.clone().unwrap()).collect();
        return set.contains(&tuple);
    }
    set.iter().any(|tuple| pattern_matches(pattern, tuple))
}

/// Does any lattice *key* in `keys` match the key columns of the
/// premise pattern? The pattern spans the full tuple (key plus
/// element); the element column is ignored — any event of a dead cell
/// contaminates its consumers regardless of the value read.
fn key_pattern_hits(pattern: &[Option<Value>], keys: &HashSet<Vec<Value>>) -> bool {
    if keys.is_empty() {
        return false;
    }
    let key_pat = &pattern[..pattern.len() - 1];
    if key_pat.iter().all(|col| col.is_some()) {
        let key: Vec<Value> = key_pat.iter().map(|col| col.clone().unwrap()).collect();
        return keys.contains(&key);
    }
    keys.iter().any(|key| pattern_matches(key_pat, key))
}
