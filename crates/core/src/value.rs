//! The dynamic value representation of the FLIX engine.

use crate::symbol;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A runtime value of the FLIX engine.
///
/// §3.2 of the paper extends the values of Datalog "with enums (tagged
/// unions), tuples, and sets"; `Value` is exactly that universe, plus the
/// primitive integers, booleans and strings of Datalog. Lattice elements
/// are ordinary values (e.g. the parity element `Odd` is
/// `Value::tag("Odd", Value::Unit)`), which is what lets one engine serve
/// both the surface language and Rust-native analyses.
///
/// `Value` has a *total* order ([`Ord`]) used only for indexing and
/// canonical set representation — it is unrelated to any lattice partial
/// order, which is supplied separately via
/// [`LatticeOps`](crate::LatticeOps).
///
/// Values are cheap to clone: strings, tag payloads, tuples and sets are
/// reference-counted.
///
/// # Example
///
/// ```
/// use flix_core::Value;
///
/// let v = Value::tuple([Value::from(1), Value::from("x")]);
/// assert_eq!(v.to_string(), "(1, \"x\")");
/// ```
// The manual `PartialEq` below is observationally the derived one (the
// pointer checks only short-circuit structural equality), so the derived
// `Hash` remains consistent with it.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Value {
    /// The unit value.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A string. Strings built through [`Value::str`] (and the `From`
    /// conversions) are interned in the global [`crate::symbol`] table, so
    /// equal strings share one allocation and compare by pointer. The
    /// variant itself accepts any `Arc<str>`; a non-interned string still
    /// compares correctly (by content), it just skips the fast paths.
    Str(Arc<str>),
    /// A tagged value (an `enum` constructor applied to a payload).
    Tag(Arc<str>, Arc<Value>),
    /// A tuple of values.
    Tuple(Arc<[Value]>),
    /// A finite set of values.
    Set(Arc<BTreeSet<Value>>),
}

// Equality is structural, with pointer-identity fast paths on the
// reference-counted variants: interning makes equal strings (and equal
// rows stored once) share allocations, so the common case is a single
// pointer compare. The fallback compares content, so hand-built
// `Value::Str` values that bypassed the interner still behave.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Tag(an, ap), Value::Tag(bn, bp)) => {
                (Arc::ptr_eq(an, bn) || an == bn) && (Arc::ptr_eq(ap, bp) || ap == bp)
            }
            (Value::Tuple(a), Value::Tuple(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Set(a), Value::Set(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Value {
    /// Creates a string value, interning it in the global
    /// [`crate::symbol`] table: equal strings share one canonical
    /// allocation and a stable `u32` symbol id, which the fact store
    /// uses to encode string columns as a single machine word.
    pub fn str(s: impl AsRef<str>) -> Value {
        let (_, name) = symbol::intern(s.as_ref());
        Value::Str(name)
    }

    /// Creates a tagged value `Tag(payload)`.
    ///
    /// ```
    /// use flix_core::Value;
    /// let odd = Value::tag("Odd", Value::Unit);
    /// assert_eq!(odd.tag_name(), Some("Odd"));
    /// ```
    pub fn tag(name: impl Into<Arc<str>>, payload: Value) -> Value {
        Value::Tag(name.into(), Arc::new(payload))
    }

    /// Creates a nullary tagged value `Tag` (unit payload).
    pub fn tag0(name: impl Into<Arc<str>>) -> Value {
        Value::tag(name, Value::Unit)
    }

    /// Creates a tuple value.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Tuple(items.into_iter().collect())
    }

    /// Creates a set value.
    pub fn set(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(Arc::new(items.into_iter().collect()))
    }

    /// Returns the tag name if this is a tagged value.
    pub fn tag_name(&self) -> Option<&str> {
        match self {
            Value::Tag(name, _) => Some(name),
            _ => None,
        }
    }

    /// Returns the payload if this is a tagged value.
    pub fn tag_payload(&self) -> Option<&Value> {
        match self {
            Value::Tag(_, payload) => Some(payload),
            _ => None,
        }
    }

    /// Returns the integer if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the tuple components if this is a tuple value.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the set elements if this is a set value.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(items) => Some(items),
            _ => None,
        }
    }

    /// Returns `true` if this is `Bool(true)`.
    ///
    /// Used by the engine to interpret the result of a filter function.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Int(n.into())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tag(name, payload) => match &**payload {
                Value::Unit => write!(f, "{name}"),
                Value::Tuple(items) => {
                    write!(f, "{name}(")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    f.write_str(")")
                }
                other => write!(f, "{name}({other})"),
            },
            Value::Tuple(items) => {
                f.write_str("(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
            Value::Set(items) => {
                f.write_str("#{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(String::from("hi")), Value::from("hi"));
    }

    #[test]
    fn accessors_reject_wrong_variants() {
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Bool(true).as_str(), None);
        assert_eq!(Value::Int(1).as_tuple(), None);
        assert_eq!(Value::Int(1).as_set(), None);
    }

    #[test]
    fn tags() {
        let v = Value::tag("Single", Value::from("p"));
        assert_eq!(v.tag_name(), Some("Single"));
        assert_eq!(v.tag_payload(), Some(&Value::from("p")));
        assert_eq!(Value::tag0("Top").tag_payload(), Some(&Value::Unit));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::tag0("Odd").to_string(), "Odd");
        assert_eq!(
            Value::tag("Single", Value::from("p")).to_string(),
            "Single(\"p\")"
        );
        assert_eq!(
            Value::tag("Pair", Value::tuple([Value::from(1), Value::from(2)])).to_string(),
            "Pair(1, 2)"
        );
        assert_eq!(
            Value::set([Value::from(2), Value::from(1)]).to_string(),
            "#{1, 2}"
        );
    }

    #[test]
    fn sets_are_canonical() {
        let a = Value::set([Value::from(1), Value::from(2), Value::from(1)]);
        let b = Value::set([Value::from(2), Value::from(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn total_order_is_consistent() {
        let mut values = vec![
            Value::Unit,
            Value::from(false),
            Value::from(3),
            Value::from("a"),
            Value::tag0("T"),
            Value::tuple([Value::from(1)]),
            Value::set([]),
        ];
        values.sort();
        // Sorting must be stable under equality and not panic; spot-check
        // reflexivity of the derived order.
        for v in &values {
            assert_eq!(v.cmp(v), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn strings_are_interned() {
        let a = Value::from("interned-via-from");
        let b = Value::str(String::from("interned-via-from"));
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => {
                assert!(Arc::ptr_eq(x, y), "equal strings share one allocation")
            }
            _ => unreachable!(),
        }
        assert_eq!(a, b);
        // A hand-built (non-interned) string still compares by content.
        let c = Value::Str(Arc::from("interned-via-from"));
        assert_eq!(a, c);
    }

    #[test]
    fn is_true_only_for_bool_true() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Int(1).is_true());
    }
}
