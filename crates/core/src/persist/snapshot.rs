//! The checksummed snapshot format: one file per saved model, one
//! frame per predicate, written atomically.
//!
//! Layout (all integers little-endian; byte-exact spec in DESIGN.md
//! §14):
//!
//! ```text
//! header   := magic "FLIXSNP\0" (8)  version u32  fingerprint u64
//!             frame_count u32  crc u32          -- CRC-32 of bytes 0..24
//! frame    := len u32  payload (len bytes)  crc u32   -- CRC-32 of payload
//! payload  := name str  kind u8 (0 rel | 1 lat)  arity u32  count u32
//!             row*count
//! row      := value*arity        -- lattice rows: key columns, then cell
//! edb      := count u32  assertion*count       -- version 2: one extra
//! assertion:= pred u32  width u32  value*width --   frame after the rows
//! ```
//!
//! Predicate frames appear in predicate-id order and `frame_count`
//! equals the program's predicate count, so a loaded model always
//! covers exactly the program's declarations. Version 2 appends one
//! more frame carrying the extensional store the model is the fixed
//! point of (the program's facts composed with every absorbed delta) —
//! what makes retracting deltas resumable after a restart. A solution
//! whose store is unknown (itself loaded from a version-1 snapshot)
//! saves as version 1 again, so v1 fixtures round-trip byte-identically
//! and nothing fabricates a store it does not know. Rows are written in
//! database iteration order and re-inserted in that order on load,
//! which is what makes save → load → save byte-identical without any
//! canonicalization pass.

use super::wire::{crc32, program_fingerprint, ByteReader, ByteWriter};
use super::PersistError;
use crate::database::{Database, InsertFault, PredData};
use crate::solver::make_solution;
use crate::{PredId, Program, Solution, SolveStats};
use std::io::Write;
use std::path::{Path, PathBuf};

pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"FLIXSNP\0";

/// The snapshot format version this build writes for solutions with a
/// known extensional store; versions back to [`SNAPSHOT_MIN_VERSION`]
/// are read. Bump it — and regenerate the golden fixture — whenever
/// the wire format changes shape; older snapshots are then rejected
/// with [`PersistError::UnsupportedVersion`] instead of misparsed.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The oldest snapshot format version this build still reads. Version-1
/// snapshots carry no extensional-store frame; solutions loaded from
/// them reject retracting deltas with
/// [`DeltaError::NoExtensionalBase`](crate::DeltaError).
pub const SNAPSHOT_MIN_VERSION: u32 = 1;

/// Header length in bytes: magic + version + fingerprint + frame count
/// + header CRC.
pub(crate) const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 4;

/// Upper bound a frame's declared length is sanity-checked against
/// before any allocation happens, so a corrupt length field cannot
/// trigger a huge allocation.
pub(crate) const MAX_FRAME_LEN: usize = 1 << 30;

/// Serializes a solved model to the snapshot wire format: version 2
/// with an extensional-store frame when the solution knows its store,
/// version 1 (rows only) when it does not.
pub fn snapshot_to_bytes(program: &Program, solution: &Solution) -> Vec<u8> {
    let edb = solution.edb();
    let version = match edb {
        Some(_) => SNAPSHOT_VERSION,
        None => 1,
    };
    let mut out = ByteWriter::new();
    out.bytes(SNAPSHOT_MAGIC);
    out.u32(version);
    out.u64(program_fingerprint(program));
    out.u32(program.num_predicates() as u32);
    let header = out.into_bytes();
    let mut bytes = header;
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let db = solution.database();
    for (pred, decl) in program.predicates() {
        let mut frame = ByteWriter::new();
        frame.string(decl.name());
        match db.pred(pred) {
            PredData::Rel(rel) => {
                frame.u8(0);
                frame.u32(decl.arity() as u32);
                frame.u32(rel.len() as u32);
                for row in rel.rows() {
                    for v in row.iter() {
                        frame.value(v);
                    }
                }
            }
            PredData::Lat(lat) => {
                frame.u8(1);
                frame.u32(decl.arity() as u32);
                frame.u32(lat.len() as u32);
                for (key, cell) in lat.iter() {
                    for v in key.iter() {
                        frame.value(v);
                    }
                    frame.value(cell);
                }
            }
        }
        let payload = frame.into_bytes();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc.to_le_bytes());
    }
    if let Some(edb) = edb {
        let mut frame = ByteWriter::new();
        frame.u32(edb.len() as u32);
        for (pred, tuple) in edb.iter() {
            frame.u32(pred.0);
            frame.u32(tuple.len() as u32);
            for v in tuple {
                frame.value(v);
            }
        }
        let payload = frame.into_bytes();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc.to_le_bytes());
    }
    bytes
}

/// Validates a snapshot's header against `program`, returning the
/// stored format version and the declared frame count. Shared with the
/// WAL, which uses the same header shape (different magic, frame count
/// fixed at 0).
pub(crate) fn check_header(
    bytes: &[u8],
    kind: &'static str,
    magic: &[u8; 8],
    versions: std::ops::RangeInclusive<u32>,
    fingerprint: u64,
) -> Result<(u32, u32), PersistError> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::CorruptHeader { kind });
    }
    if &bytes[..8] != magic {
        return Err(PersistError::BadMagic { kind });
    }
    let stored_crc = u32::from_le_bytes(bytes[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap());
    if crc32(&bytes[..HEADER_LEN - 4]) != stored_crc {
        return Err(PersistError::CorruptHeader { kind });
    }
    let mut r = ByteReader::new(&bytes[8..HEADER_LEN - 4]);
    let found_version = r.u32().expect("header length checked");
    if !versions.contains(&found_version) {
        return Err(PersistError::UnsupportedVersion {
            kind,
            found: found_version,
            supported: *versions.end(),
        });
    }
    let found_fingerprint = r.u64().expect("header length checked");
    if found_fingerprint != fingerprint {
        return Err(PersistError::ProgramMismatch {
            expected: fingerprint,
            found: found_fingerprint,
        });
    }
    Ok((found_version, r.u32().expect("header length checked")))
}

/// Splits one `len + payload + crc` frame off `bytes` at `offset`,
/// verifying the checksum. Returns the payload and the offset just
/// past the frame.
pub(crate) fn check_frame(
    bytes: &[u8],
    offset: usize,
    frame: usize,
) -> Result<(&[u8], usize), PersistError> {
    let corrupt = |reason: &str| PersistError::CorruptFrame {
        frame,
        at: offset,
        reason: reason.to_string(),
    };
    if bytes.len() - offset < 4 {
        return Err(corrupt("truncated before frame length"));
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(corrupt("frame length is implausibly large"));
    }
    if bytes.len() - offset - 4 < len + 4 {
        return Err(corrupt("truncated mid-frame"));
    }
    let payload = &bytes[offset + 4..offset + 4 + len];
    let stored_crc = u32::from_le_bytes(
        bytes[offset + 4 + len..offset + 8 + len]
            .try_into()
            .unwrap(),
    );
    if crc32(payload) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    Ok((payload, offset + 8 + len))
}

/// Deserializes a snapshot, verifying the header, every frame
/// checksum, and that the content fits `program`'s declarations.
///
/// The returned [`Solution`] is built by re-inserting every stored row
/// through the normal database path, so lattice cells go through the
/// declared `lub` — a snapshot cannot smuggle in a cell the lattice
/// would not accept.
pub fn snapshot_from_bytes(program: &Program, bytes: &[u8]) -> Result<Solution, PersistError> {
    let fingerprint = program_fingerprint(program);
    let (version, frame_count) = check_header(
        bytes,
        "snapshot",
        SNAPSHOT_MAGIC,
        SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION,
        fingerprint,
    )?;
    if frame_count as usize != program.num_predicates() {
        return Err(PersistError::CorruptHeader { kind: "snapshot" });
    }

    let mut db = Database::for_program(program, true);
    let mut offset = HEADER_LEN;
    for (frame_idx, (pred, decl)) in program.predicates().enumerate() {
        let (payload, next) = check_frame(bytes, offset, frame_idx)?;
        decode_predicate_frame(program, &mut db, pred, frame_idx, offset, payload).map_err(
            |e| match e {
                FrameFault::Wire(what) => PersistError::CorruptFrame {
                    frame: frame_idx,
                    at: offset,
                    reason: what,
                },
                FrameFault::Cell(fault) => PersistError::BadCell {
                    predicate: decl.name().to_string(),
                    reason: describe_fault(&fault),
                },
            },
        )?;
        offset = next;
    }
    let edb = if version >= 2 {
        let frame_idx = program.num_predicates();
        let (payload, next) = check_frame(bytes, offset, frame_idx)?;
        let entries =
            decode_edb_frame(program, payload).map_err(|reason| PersistError::CorruptFrame {
                frame: frame_idx,
                at: offset,
                reason,
            })?;
        offset = next;
        Some(std::sync::Arc::new(entries))
    } else {
        // A version-1 snapshot does not record the extensional store;
        // the loaded solution must not pretend the program's own facts
        // are it (absorbed deltas would be lost), so it carries None
        // and rejects retracting deltas.
        None
    };
    if offset != bytes.len() {
        return Err(PersistError::TrailingBytes { at: offset });
    }

    let stats = SolveStats {
        total_facts: db.total_facts() as u64,
        ..SolveStats::default()
    };
    let mut solution = make_solution(program, db, stats, None, None);
    solution.set_edb(edb);
    Ok(solution)
}

/// Decodes the version-2 extensional-store frame: the exact set of
/// assertions the stored model is the least fixed point of.
fn decode_edb_frame(
    program: &Program,
    payload: &[u8],
) -> Result<Vec<(PredId, Vec<crate::Value>)>, String> {
    let mut r = ByteReader::new(payload);
    let decode = |e: super::wire::WireError| format!("{} at byte {}", e.what, e.at);
    let count = r.u32().map_err(decode)? as usize;
    if count > r.remaining() && count > 0 {
        return Err("assertion count exceeds frame payload".to_string());
    }
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let pred = r.u32().map_err(decode)? as usize;
        if pred >= program.num_predicates() {
            return Err("assertion names a predicate the program lacks".to_string());
        }
        let pred = PredId(pred as u32);
        let width = r.u32().map_err(decode)? as usize;
        let decl = program.decl(pred);
        if width != decl.arity() {
            return Err("assertion width does not match the predicate's arity".to_string());
        }
        let mut tuple = Vec::with_capacity(width);
        for _ in 0..width {
            tuple.push(r.value().map_err(decode)?);
        }
        entries.push((pred, tuple));
    }
    if !r.is_done() {
        return Err("frame payload has trailing bytes".to_string());
    }
    Ok(entries)
}

enum FrameFault {
    Wire(String),
    Cell(InsertFault),
}

fn describe_fault(fault: &InsertFault) -> String {
    match fault {
        InsertFault::Panic(p) => format!("lattice operation panicked: {p:?}"),
        InsertFault::Safety(v) => format!("safety violation: {v:?}"),
    }
}

fn decode_predicate_frame(
    program: &Program,
    db: &mut Database,
    pred: PredId,
    _frame: usize,
    _offset: usize,
    payload: &[u8],
) -> Result<(), FrameFault> {
    let decl = program.decl(pred);
    let mut r = ByteReader::new(payload);
    let wire = |what: &'static str| FrameFault::Wire(what.to_string());
    let decode =
        |e: super::wire::WireError| FrameFault::Wire(format!("{} at byte {}", e.what, e.at));

    let name = r.string().map_err(decode)?;
    if name != decl.name() {
        return Err(wire("frame predicate name does not match the program"));
    }
    let kind = r.u8().map_err(decode)?;
    if (kind == 1) != decl.is_lattice() || kind > 1 {
        return Err(wire("frame predicate kind does not match the program"));
    }
    let arity = r.u32().map_err(decode)? as usize;
    if arity != decl.arity() {
        return Err(wire("frame arity does not match the program"));
    }
    let count = r.u32().map_err(decode)? as usize;
    if count > r.remaining() && count > 0 {
        // Each row takes at least one byte per column (arity >= 1); a
        // count beyond the remaining payload is a lie.
        return Err(wire("row count exceeds frame payload"));
    }
    for _ in 0..count {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(r.value().map_err(decode)?);
        }
        // Duplicate relational rows and already-subsumed lattice cells
        // are tolerated: insertion is idempotent, exactly like replay.
        db.insert(pred, row).map_err(FrameFault::Cell)?;
    }
    if !r.is_done() {
        return Err(wire("frame payload has trailing bytes"));
    }
    Ok(())
}

/// The sibling temp path an atomic save writes before renaming:
/// `<path>.tmp`, in the same directory so the rename cannot cross a
/// filesystem boundary.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = tmp_path(path);
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| PersistError::io("create temporary snapshot", &tmp, e))?;
    file.write_all(bytes)
        .map_err(|e| PersistError::io("write temporary snapshot", &tmp, e))?;
    file.sync_all()
        .map_err(|e| PersistError::io("sync temporary snapshot", &tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| PersistError::io("rename snapshot into place", path, e))
}

/// Saves a model snapshot atomically: the bytes are written to a
/// sibling `<path>.tmp` file, synced, and renamed over `path`. A crash
/// at any point leaves either the old snapshot or the new one — never
/// a torn file at `path` (a stale `.tmp` may remain; the next save
/// overwrites it).
pub fn save_snapshot(
    path: impl AsRef<Path>,
    program: &Program,
    solution: &Solution,
) -> Result<(), PersistError> {
    write_atomic(path.as_ref(), &snapshot_to_bytes(program, solution))
}

/// Loads and verifies a model snapshot. See [`snapshot_from_bytes`]
/// for the checks performed.
pub fn load_snapshot(path: impl AsRef<Path>, program: &Program) -> Result<Solution, PersistError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| PersistError::io("read snapshot", path, e))?;
    snapshot_from_bytes(program, &bytes)
}
