//! Deterministic fault injection on the persistence write path —
//! test-gated (`test-internals` feature), like
//! `inject_worker_panic_for_tests`.
//!
//! Real storage fails in a handful of shapes; [`Fault`] names the four
//! that matter for a log-structured format, each with a precise
//! contract about (a) what reaches the disk and (b) what the writer is
//! told. The fault-injection sweep in `crates/core/tests/persist.rs`
//! drives every fault kind at every byte offset of the written stream
//! and asserts that [`Solver::recover`](crate::Solver::recover) always
//! lands on a model cell-for-cell equal to a scratch solve of the base
//! program plus the surviving delta prefix.
//!
//! The entry points are [`save_snapshot_with_fault`],
//! [`DeltaLog::append_with_fault`](super::DeltaLog), and — for
//! corrupting files after the fact, e.g. to simulate a crashed foreign
//! process — [`corrupt_file`].

use super::snapshot::{snapshot_to_bytes, tmp_path};
use super::PersistError;
use crate::{Program, Solution};
use std::io::Write;
use std::path::Path;

/// A storage failure shape. `at` in a [`FaultPlan`] is the byte offset
/// within the written stream where the fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The process dies mid-write: the prefix `[..at]` reaches the
    /// disk and the writer observes the failure (it never returns).
    Torn,
    /// A lost write: the prefix `[..at]` reaches the disk but the
    /// writer is told the whole write succeeded. Later appends land at
    /// the post-full-write offset, leaving a zero-filled gap — the
    /// classic mid-file corruption only checksums catch.
    Short,
    /// Silent corruption: the full write lands, with one bit flipped
    /// at offset `at`; the writer is told it succeeded.
    BitFlip,
    /// A clean I/O error after the prefix `[..at]` reached the disk;
    /// the writer observes the error.
    IoError,
}

/// One planned fault: the kind plus the byte offset it strikes at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The failure shape.
    pub fault: Fault,
    /// Byte offset within the written stream.
    pub at: u64,
}

impl FaultPlan {
    /// Applies the plan to an intended write, returning the bytes that
    /// actually reach the disk and the length the writer believes was
    /// written (for [`Fault::Short`] / [`Fault::BitFlip`], the full
    /// length).
    pub(crate) fn apply(&self, intended: &[u8]) -> (Vec<u8>, usize) {
        let cut = (self.at as usize).min(intended.len());
        match self.fault {
            Fault::Torn | Fault::Short | Fault::IoError => {
                (intended[..cut].to_vec(), intended.len())
            }
            Fault::BitFlip => {
                let mut bytes = intended.to_vec();
                if !bytes.is_empty() {
                    let idx = (self.at as usize).min(bytes.len() - 1);
                    bytes[idx] ^= 1 << (self.at % 8);
                }
                (bytes, intended.len())
            }
        }
    }
}

/// [`save_snapshot`](super::save_snapshot) with a deterministic fault
/// injected into the snapshot byte stream.
///
/// Faults the writer observes ([`Fault::Torn`], [`Fault::IoError`])
/// strike the temporary file *before* the rename, so the previous
/// snapshot at `path` survives untouched — that is the atomic-rename
/// guarantee under test. Silent faults ([`Fault::Short`],
/// [`Fault::BitFlip`]) complete the rename, leaving a truncated or
/// corrupted snapshot for load-time validation to catch.
#[doc(hidden)]
pub fn save_snapshot_with_fault(
    path: impl AsRef<Path>,
    program: &Program,
    solution: &Solution,
    plan: FaultPlan,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let bytes = snapshot_to_bytes(program, solution);
    let (on_disk, _) = plan.apply(&bytes);
    let tmp = tmp_path(path);
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| PersistError::io("create temporary snapshot", &tmp, e))?;
    file.write_all(&on_disk)
        .map_err(|e| PersistError::io("write temporary snapshot", &tmp, e))?;
    file.sync_all()
        .map_err(|e| PersistError::io("sync temporary snapshot", &tmp, e))?;
    drop(file);
    match plan.fault {
        Fault::Torn | Fault::IoError => Err(PersistError::Injected { at: plan.at }),
        Fault::Short | Fault::BitFlip => std::fs::rename(&tmp, path)
            .map_err(|e| PersistError::io("rename snapshot into place", path, e)),
    }
}

/// Applies a fault to a file already on disk — simulating a crash or
/// corruption that happened to *someone else's* write. [`Fault::Torn`]
/// and [`Fault::Short`] truncate the file at `at`; [`Fault::BitFlip`]
/// flips one bit; [`Fault::IoError`] leaves the file untouched (the
/// write never happened).
#[doc(hidden)]
pub fn corrupt_file(path: impl AsRef<Path>, plan: FaultPlan) -> std::io::Result<()> {
    let path = path.as_ref();
    match plan.fault {
        Fault::Torn | Fault::Short => {
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            let len = file.metadata()?.len();
            file.set_len(plan.at.min(len))?;
            file.sync_data()
        }
        Fault::BitFlip => {
            let mut bytes = std::fs::read(path)?;
            if !bytes.is_empty() {
                let idx = (plan.at as usize).min(bytes.len() - 1);
                bytes[idx] ^= 1 << (plan.at % 8);
            }
            std::fs::write(path, bytes)
        }
        Fault::IoError => Ok(()),
    }
}
