//! The write-ahead delta log: every [`Delta`] is appended as a
//! checksummed frame *before* it is applied, so a crash mid-resume can
//! always replay it.
//!
//! Layout (little-endian; byte-exact spec in DESIGN.md §14):
//!
//! ```text
//! header  := magic "FLIXWAL\0" (8)  version u32  fingerprint u64
//!            reserved u32 (0)  crc u32          -- CRC-32 of bytes 0..24
//! frame   := len u32  payload (len bytes)  crc u32  -- CRC-32 of payload
//! payload := count u32  entry*count
//! entry   := op u8 (0 insert | 1 retract | 2 raise | 3 lower)
//!            predicate str  width u32  value*width
//!                        -- raise/lower: key columns, then the element
//! ```
//!
//! Version 1 entries had no `op` tag (every entry was an insert); v1
//! logs are still read, and [`DeltaLog::open`] upgrades them to the
//! current version in place (atomically) so that later appends — always
//! current-version frames — stay readable.
//!
//! Opening scans the longest valid frame prefix and **truncates the
//! file** at the first torn or corrupt frame — whatever follows a bad
//! frame is unrecoverable (frame boundaries are only known by walking
//! the lengths) and replay of the intact prefix is exactly the state
//! the writer had durably reached.

use super::snapshot::{check_frame, check_header, save_snapshot, write_atomic, HEADER_LEN};
use super::wire::{crc32, program_fingerprint, ByteReader, ByteWriter};
use super::PersistError;
use crate::incremental::{Delta, DeltaOp};
use crate::{Program, Solution};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub(crate) const WAL_MAGIC: &[u8; 8] = b"FLIXWAL\0";

/// The WAL format version this build writes; versions back to
/// [`WAL_MIN_VERSION`] are read. See [`super::SNAPSHOT_VERSION`] for
/// the bump discipline.
pub const WAL_VERSION: u32 = 2;

/// The oldest WAL format version this build still reads (and upgrades
/// in place on open).
pub const WAL_MIN_VERSION: u32 = 1;

/// What [`DeltaLog::open`] salvaged from an existing log file.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct WalRecovery {
    /// The deltas of the valid frame prefix, in append order.
    pub deltas: Vec<Delta>,
    /// Bytes discarded past the last valid frame (0 for a clean log).
    /// The file itself has been truncated to the valid prefix.
    pub dropped_bytes: u64,
}

/// An append-only, checksummed log of [`Delta`]s tied to one program
/// (by fingerprint) — the durability half of [`crate::incremental`].
///
/// The intended write path is *log, then apply*:
///
/// 1. [`DeltaLog::append`] the delta (durable after this returns);
/// 2. [`Solver::resume`](crate::Solver::resume) it onto the live model;
/// 3. once [`DeltaLog::frames`] crosses the caller's compaction
///    threshold, absorb the log into a fresh snapshot with
///    [`DeltaLog::compact_into`].
///
/// A crash anywhere in that sequence is recoverable by
/// [`Solver::recover`](crate::Solver::recover): replay is idempotent
/// (deltas are monotone), so replaying a delta the snapshot already
/// absorbed — the window between compaction's snapshot write and log
/// truncation — is harmless.
#[derive(Debug)]
pub struct DeltaLog {
    path: PathBuf,
    file: File,
    /// Offset one past the last valid frame; appends write here.
    end: u64,
    /// Valid frames currently in the log.
    frames: u64,
}

fn header_bytes(fingerprint: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(WAL_MAGIC);
    w.u32(WAL_VERSION);
    w.u64(fingerprint);
    w.u32(0); // reserved; keeps the header shape shared with snapshots
    let mut bytes = w.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// The op tag of a version-2 entry.
fn op_tag(op: &DeltaOp) -> u8 {
    match op {
        DeltaOp::Insert { .. } => 0,
        DeltaOp::Retract { .. } => 1,
        DeltaOp::Raise { .. } => 2,
        DeltaOp::Lower { .. } => 3,
    }
}

fn encode_frame(delta: &Delta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(delta.len() as u32);
    for op in delta.ops() {
        w.u8(op_tag(op));
        match op {
            DeltaOp::Insert { predicate, tuple } | DeltaOp::Retract { predicate, tuple } => {
                w.string(predicate);
                w.u32(tuple.len() as u32);
                for v in tuple {
                    w.value(v);
                }
            }
            DeltaOp::Raise {
                predicate,
                key,
                element,
            }
            | DeltaOp::Lower {
                predicate,
                key,
                element,
            } => {
                w.string(predicate);
                w.u32(key.len() as u32 + 1);
                for v in key {
                    w.value(v);
                }
                w.value(element);
            }
        }
    }
    let payload = w.into_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame
}

fn decode_frame(payload: &[u8]) -> Result<Delta, String> {
    let mut r = ByteReader::new(payload);
    let fail = |e: super::wire::WireError| format!("{} at byte {}", e.what, e.at);
    let count = r.u32().map_err(fail)? as usize;
    if count > r.remaining() && count > 0 {
        return Err("entry count exceeds frame payload".to_string());
    }
    let mut delta = Delta::new();
    for _ in 0..count {
        let tag = r.u8().map_err(fail)?;
        if tag > 3 {
            return Err("entry has an unknown op tag".to_string());
        }
        let name = r.string().map_err(fail)?.to_string();
        let width = r.u32().map_err(fail)? as usize;
        if width > r.remaining() && width > 0 {
            return Err("entry width exceeds frame payload".to_string());
        }
        let mut tuple = Vec::with_capacity(width);
        for _ in 0..width {
            tuple.push(r.value().map_err(fail)?);
        }
        let op = match tag {
            0 => DeltaOp::Insert {
                predicate: name,
                tuple,
            },
            1 => DeltaOp::Retract {
                predicate: name,
                tuple,
            },
            _ => {
                let Some(element) = tuple.pop() else {
                    return Err("lattice entry has no element column".to_string());
                };
                if tag == 2 {
                    DeltaOp::Raise {
                        predicate: name,
                        key: tuple,
                        element,
                    }
                } else {
                    DeltaOp::Lower {
                        predicate: name,
                        key: tuple,
                        element,
                    }
                }
            }
        };
        delta.push_op(op);
    }
    if !r.is_done() {
        return Err("frame payload has trailing bytes".to_string());
    }
    Ok(delta)
}

/// Decodes a version-1 frame: untagged entries, every one an insert.
fn decode_frame_v1(payload: &[u8]) -> Result<Delta, String> {
    let mut r = ByteReader::new(payload);
    let fail = |e: super::wire::WireError| format!("{} at byte {}", e.what, e.at);
    let count = r.u32().map_err(fail)? as usize;
    if count > r.remaining() && count > 0 {
        return Err("entry count exceeds frame payload".to_string());
    }
    let mut delta = Delta::new();
    for _ in 0..count {
        let name = r.string().map_err(fail)?.to_string();
        let width = r.u32().map_err(fail)? as usize;
        if width > r.remaining() && width > 0 {
            return Err("entry width exceeds frame payload".to_string());
        }
        let mut tuple = Vec::with_capacity(width);
        for _ in 0..width {
            tuple.push(r.value().map_err(fail)?);
        }
        delta.push(name, tuple);
    }
    if !r.is_done() {
        return Err("frame payload has trailing bytes".to_string());
    }
    Ok(delta)
}

impl DeltaLog {
    /// Opens (or creates) the log at `path` for `program`.
    ///
    /// A missing file is created with a fresh header. An existing file
    /// has its header verified (magic, version, CRC, program
    /// fingerprint — any failure is returned as an error, since
    /// nothing in such a file is trustworthy) and its frames scanned:
    /// the valid prefix comes back in [`WalRecovery::deltas`] and the
    /// file is truncated at the first torn or corrupt frame.
    pub fn open(
        path: impl AsRef<Path>,
        program: &Program,
    ) -> Result<(DeltaLog, WalRecovery), PersistError> {
        let path = path.as_ref();
        let fingerprint = program_fingerprint(program);
        if !path.exists() {
            return Ok((DeltaLog::create(path, fingerprint)?, WalRecovery::default()));
        }

        let bytes =
            std::fs::read(path).map_err(|e| PersistError::io("read write-ahead log", path, e))?;
        let (version, _) = check_header(
            &bytes,
            "write-ahead log",
            WAL_MAGIC,
            WAL_MIN_VERSION..=WAL_VERSION,
            fingerprint,
        )?;

        let mut deltas = Vec::new();
        let mut offset = HEADER_LEN;
        while offset < bytes.len() {
            let parsed = check_frame(&bytes, offset, deltas.len()).and_then(|(payload, next)| {
                let decoded = if version < 2 {
                    decode_frame_v1(payload)
                } else {
                    decode_frame(payload)
                };
                match decoded {
                    Ok(delta) => Ok((delta, next)),
                    Err(reason) => Err(PersistError::CorruptFrame {
                        frame: deltas.len(),
                        at: offset,
                        reason,
                    }),
                }
            });
            match parsed {
                Ok((delta, next)) => {
                    deltas.push(delta);
                    offset = next;
                }
                // First bad frame: everything from here on is the
                // crash/corruption tail. Stop and truncate.
                Err(_) => break,
            }
        }
        let dropped_bytes = (bytes.len() - offset) as u64;

        if version < WAL_VERSION {
            // Upgrade in place: appends always write current-version
            // frames, which a stale header would mislabel. The rewrite
            // (re-encoded valid prefix under a fresh header) is atomic,
            // so a crash leaves either the old v1 log or the new one —
            // and it drops the corruption tail as a side effect.
            let mut upgraded = header_bytes(fingerprint);
            for delta in &deltas {
                upgraded.extend_from_slice(&encode_frame(delta));
            }
            write_atomic(path, &upgraded)?;
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)
                .map_err(|e| PersistError::io("open write-ahead log", path, e))?;
            let frames = deltas.len() as u64;
            return Ok((
                DeltaLog {
                    path: path.to_path_buf(),
                    file,
                    end: upgraded.len() as u64,
                    frames,
                },
                WalRecovery {
                    deltas,
                    dropped_bytes,
                },
            ));
        }

        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| PersistError::io("open write-ahead log", path, e))?;
        if dropped_bytes > 0 {
            file.set_len(offset as u64)
                .map_err(|e| PersistError::io("truncate write-ahead log", path, e))?;
            file.sync_data()
                .map_err(|e| PersistError::io("sync write-ahead log", path, e))?;
        }
        let frames = deltas.len() as u64;
        Ok((
            DeltaLog {
                path: path.to_path_buf(),
                file,
                end: offset as u64,
                frames,
            },
            WalRecovery {
                deltas,
                dropped_bytes,
            },
        ))
    }

    /// Creates a fresh, empty log at `path` for `program`,
    /// **discarding** any existing file — the recovery move when
    /// [`DeltaLog::open`] rejects a log whose header is beyond repair.
    pub fn create_truncated(
        path: impl AsRef<Path>,
        program: &Program,
    ) -> Result<DeltaLog, PersistError> {
        DeltaLog::create(path.as_ref(), program_fingerprint(program))
    }

    fn create(path: &Path, fingerprint: u64) -> Result<DeltaLog, PersistError> {
        let header = header_bytes(fingerprint);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| PersistError::io("create write-ahead log", path, e))?;
        file.write_all(&header)
            .map_err(|e| PersistError::io("write write-ahead log header", path, e))?;
        file.sync_all()
            .map_err(|e| PersistError::io("sync write-ahead log", path, e))?;
        Ok(DeltaLog {
            path: path.to_path_buf(),
            file,
            end: header.len() as u64,
            frames: 0,
        })
    }

    /// Appends one delta as a checksummed frame and syncs it to disk;
    /// when this returns, the delta is durable. Empty deltas are
    /// short-circuited — they change nothing, so they earn no frame.
    pub fn append(&mut self, delta: &Delta) -> Result<(), PersistError> {
        if delta.is_empty() {
            return Ok(());
        }
        let frame = encode_frame(delta);
        self.write_at_end(&frame)?;
        self.end += frame.len() as u64;
        self.frames += 1;
        Ok(())
    }

    fn write_at_end(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        self.file
            .seek(SeekFrom::Start(self.end))
            .map_err(|e| PersistError::io("seek write-ahead log", &self.path, e))?;
        self.file
            .write_all(bytes)
            .map_err(|e| PersistError::io("append to write-ahead log", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| PersistError::io("sync write-ahead log", &self.path, e))
    }

    /// Valid frames currently in the log — the compaction policy input
    /// (`flixr --compact-every N` compacts once this reaches `N`).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Compacts the log into `snapshot`: saves `solution` (which must
    /// already reflect every logged delta) as a snapshot, then resets
    /// the log to empty.
    ///
    /// Crash-safe in both windows: the snapshot write is atomic, and a
    /// crash *between* the snapshot landing and the log truncating
    /// leaves absorbed deltas in the log — replaying them on recovery
    /// is a no-op because replay is idempotent.
    pub fn compact_into(
        &mut self,
        snapshot: impl AsRef<Path>,
        program: &Program,
        solution: &Solution,
    ) -> Result<(), PersistError> {
        save_snapshot(snapshot, program, solution)?;
        self.file
            .set_len(HEADER_LEN as u64)
            .map_err(|e| PersistError::io("truncate write-ahead log", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| PersistError::io("sync write-ahead log", &self.path, e))?;
        self.end = HEADER_LEN as u64;
        self.frames = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fault-injected variants of the write path, test-gated exactly like
// `inject_worker_panic_for_tests`. Implemented here because they need
// the log's internals; the fault vocabulary lives in `faultfs`.
// ---------------------------------------------------------------------

#[cfg(any(test, feature = "test-internals"))]
impl DeltaLog {
    /// [`DeltaLog::append`] with a deterministic fault injected at a
    /// byte offset *within the appended frame*. See
    /// [`Fault`](super::Fault) for the disk-state/caller-visibility
    /// contract of each fault kind.
    #[doc(hidden)]
    pub fn append_with_fault(
        &mut self,
        delta: &Delta,
        plan: super::FaultPlan,
    ) -> Result<(), PersistError> {
        use super::Fault;
        if delta.is_empty() {
            return Ok(());
        }
        let frame = encode_frame(delta);
        let (on_disk, full_len) = plan.apply(&frame);
        self.write_at_end(&on_disk)?;
        match plan.fault {
            // The writer observed the crash/error: the log object does
            // not advance, exactly like a process that died here.
            Fault::Torn | Fault::IoError => Err(PersistError::Injected { at: plan.at }),
            // The writer believes the append succeeded: the log
            // advances past bytes that never hit the disk (the gap
            // reads back as zeros — a real lost write) or past a
            // silently corrupted frame.
            Fault::Short | Fault::BitFlip => {
                self.end += full_len as u64;
                self.frames += 1;
                Ok(())
            }
        }
    }
}
