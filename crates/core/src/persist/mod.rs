//! Crash-safe model persistence: checksummed snapshots, a write-ahead
//! delta log, and the recovery path that stitches them back into a
//! [`Solution`].
//!
//! The ROADMAP's resident fixed-point service keeps solved models live
//! across batched updates; this module is what makes that durable. The
//! design follows the shape of the incremental engine
//! ([`crate::incremental`]): a model is a *base fixed point* plus a
//! *log of deltas*, so durability decomposes into
//!
//! 1. a **snapshot** of the base model ([`save_snapshot`] /
//!    [`load_snapshot`]): a versioned binary file with a CRC-32 per
//!    frame, written atomically (temp file + rename) so a crash during
//!    a save can never destroy the previous snapshot;
//! 2. a **write-ahead log** ([`DeltaLog`]): each [`Delta`] is appended
//!    as a checksummed, length-prefixed frame *before*
//!    [`Solver::resume`] runs, so a crash mid-resume loses no update;
//! 3. **recovery** ([`Solver::recover`]): load the snapshot, replay
//!    the valid WAL prefix through `resume`, and degrade gracefully —
//!    a corrupt snapshot falls back to a scratch solve, a corrupt WAL
//!    tail is truncated and only the intact prefix replays, and every
//!    degradation is reported in a [`RecoveryReport`].
//!
//! Replay is *idempotent* because every delta op — insert, retract,
//! raise, or lower ([`crate::incremental::DeltaOp`]) — is a set
//! operation on the extensional store: applying an op the store
//! already reflects is a no-op. That is what makes the crash windows
//! safe — in particular, a crash between writing the compaction
//! snapshot and truncating the log merely replays absorbed deltas on
//! the next recovery. Retracting deltas additionally need the snapshot
//! to record the extensional store (snapshot format version 2); when a
//! version-1 snapshot is recovered under a WAL containing retractions,
//! recovery degrades to a scratch solve of the program with the
//! combined delta applied, reported in
//! [`RecoveryReport::scratch_solve`].
//!
//! Both formats embed a [`program_fingerprint`] of the program they
//! were produced against, and loading rejects a mismatch: replaying
//! deltas against the wrong program would silently compute the wrong
//! model. The fingerprint covers program *identity* (declarations,
//! rules, base facts) — a snapshot taken after resuming over deltas
//! still carries its base program's fingerprint, which is exactly
//! right: such a model is a valid warm-start for that program.
//!
//! The wire formats are specified byte-for-byte in DESIGN.md §14 and
//! pinned by a committed golden fixture; changing them requires a
//! deliberate version bump. The fault-injection harness behind the
//! `test-internals` feature (`faultfs::Fault`, written up in the same DESIGN
//! section) interposes on the write path so tests can prove recovery
//! survives torn writes, lost writes, bit flips, and injected I/O
//! errors at every byte boundary.
//!
//! # Example
//!
//! ```
//! use flix_core::incremental::Delta;
//! use flix_core::persist::{load_snapshot, save_snapshot, DeltaLog};
//! use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Solver, Term};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let edge = b.relation("Edge", 2);
//! let path = b.relation("Path", 2);
//! b.fact(edge, vec![1.into(), 2.into()]);
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
//!     [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
//! );
//! b.rule(
//!     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
//!     [
//!         BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
//!         BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
//!     ],
//! );
//! let program = b.build()?;
//! let solver = Solver::new();
//!
//! let dir = std::env::temp_dir().join(format!("flix-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let snap = dir.join("model.snap");
//! let wal = dir.join("model.wal");
//!
//! // Solve, snapshot, and log one update ahead of applying it.
//! let initial = solver.solve(&program)?;
//! save_snapshot(&snap, &program, &initial)?;
//! let (mut log, _) = DeltaLog::open(&wal, &program)?;
//! let delta = Delta::new().insert("Edge", vec![2.into(), 3.into()]);
//! log.append(&delta)?;
//! let updated = solver.resume(&program, &initial, &delta)?;
//! assert!(updated.contains("Path", &[1.into(), 3.into()]));
//!
//! // ... the process dies here; a fresh one recovers the same model.
//! let (recovered, report) = solver.recover(&program, &snap, &wal)?;
//! assert!(report.clean());
//! assert!(recovered.contains("Path", &[1.into(), 3.into()]));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

use crate::database::Database;
use crate::incremental::Delta;
use crate::solver::make_solution;
use crate::{Program, Solution, SolveFailure, SolveStats, Solver};
use std::fmt;
use std::path::{Path, PathBuf};

#[cfg(any(test, feature = "test-internals"))]
mod faultfs;
mod snapshot;
mod wal;
mod wire;

#[cfg(any(test, feature = "test-internals"))]
pub use faultfs::{corrupt_file, save_snapshot_with_fault, Fault, FaultPlan};
pub use snapshot::{
    load_snapshot, save_snapshot, snapshot_from_bytes, snapshot_to_bytes, SNAPSHOT_MIN_VERSION,
    SNAPSHOT_VERSION,
};
pub use wal::{DeltaLog, WalRecovery, WAL_MIN_VERSION, WAL_VERSION};
pub use wire::program_fingerprint;

/// A persistence failure: file I/O, or a corruption the checksums and
/// structural validation caught.
///
/// Corruption variants are *expected* outcomes — [`Solver::recover`]
/// treats them as degradation signals, never panics. I/O variants
/// always carry the path and the operation that failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// A file operation failed.
    Io {
        /// What was being done, e.g. `"read snapshot"`.
        op: &'static str,
        /// The file it was being done to.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with the expected magic bytes — it is
    /// not a snapshot / WAL at all (or its header was destroyed).
    BadMagic {
        /// Which format was expected: `"snapshot"` or `"write-ahead log"`.
        kind: &'static str,
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Which format: `"snapshot"` or `"write-ahead log"`.
        kind: &'static str,
        /// The version found in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The header failed its CRC or is structurally invalid.
    CorruptHeader {
        /// Which format: `"snapshot"` or `"write-ahead log"`.
        kind: &'static str,
    },
    /// The file was produced against a different program (fingerprint
    /// mismatch); replaying it here would compute the wrong model.
    ProgramMismatch {
        /// The fingerprint of the program being loaded against.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
    /// A data frame failed its CRC or would not decode.
    CorruptFrame {
        /// Zero-based frame index within the file.
        frame: usize,
        /// Byte offset of the frame within the file.
        at: usize,
        /// What the validation found.
        reason: String,
    },
    /// Bytes follow the last frame a snapshot's header declared.
    TrailingBytes {
        /// Byte offset where the unexpected bytes begin.
        at: usize,
    },
    /// A decoded fact was rejected by the database (a lattice operation
    /// faulted on the stored cell value).
    BadCell {
        /// The predicate whose fact was rejected.
        predicate: String,
        /// What the database reported.
        reason: String,
    },
    /// A fault injected by the test-gated harness (`faultfs::Fault`); never
    /// produced outside tests.
    Injected {
        /// The byte offset (within the written stream) the fault struck.
        at: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "cannot {op} {}: {source}", path.display())
            }
            PersistError::BadMagic { kind } => {
                write!(f, "not a {kind} file (bad magic)")
            }
            PersistError::UnsupportedVersion {
                kind,
                found,
                supported,
            } => write!(
                f,
                "{kind} format version {found} is not supported (this build reads version {supported})"
            ),
            PersistError::CorruptHeader { kind } => write!(f, "corrupt {kind} header"),
            PersistError::ProgramMismatch { expected, found } => write!(
                f,
                "file was produced against a different program \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            PersistError::CorruptFrame { frame, at, reason } => {
                write!(f, "corrupt frame {frame} at byte {at}: {reason}")
            }
            PersistError::TrailingBytes { at } => {
                write!(f, "unexpected trailing bytes at offset {at}")
            }
            PersistError::BadCell { predicate, reason } => {
                write!(f, "stored fact for {predicate} was rejected: {reason}")
            }
            PersistError::Injected { at } => {
                write!(f, "injected fault at byte {at}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PersistError {
    pub(crate) fn io(op: &'static str, path: &Path, source: std::io::Error) -> PersistError {
        PersistError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

/// What [`Solver::recover`] found on disk and what it did about it.
///
/// Recovery *degrades* instead of failing: every field here describes a
/// degradation the caller may want to surface (a daemon would log
/// them), while the returned [`Solution`] is always a correct model of
/// the program plus the surviving delta prefix.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// The snapshot loaded and verified cleanly.
    pub snapshot_loaded: bool,
    /// Why the snapshot was unusable (absent when it loaded).
    pub snapshot_error: Option<PersistError>,
    /// Why the WAL was unusable beyond tail truncation (a corrupt
    /// header, say); absent when the log opened.
    pub wal_error: Option<PersistError>,
    /// Checksummed frames replayed from the WAL.
    pub wal_frames_replayed: usize,
    /// Individual delta entries those frames carried.
    pub wal_entries_replayed: usize,
    /// Bytes dropped from the corrupt tail of the WAL (0 for a clean
    /// log). The log file itself is truncated to the valid prefix.
    pub wal_bytes_dropped: u64,
    /// The base model came from a scratch solve because the snapshot
    /// was unusable.
    pub scratch_solve: bool,
}

impl RecoveryReport {
    /// `true` when recovery found nothing wrong: the snapshot loaded
    /// and the WAL replayed completely.
    pub fn clean(&self) -> bool {
        self.snapshot_loaded
            && self.snapshot_error.is_none()
            && self.wal_error.is_none()
            && self.wal_bytes_dropped == 0
    }
}

impl Solver {
    /// Recovers a model from a snapshot plus a write-ahead log, the
    /// crash-restart path of a persistent solver:
    ///
    /// 1. load `snapshot` (corrupt or missing → scratch-solve `program`
    ///    instead, reported in [`RecoveryReport::scratch_solve`]);
    /// 2. open `log`, truncating any corrupt tail to the longest valid
    ///    frame prefix (reported in
    ///    [`RecoveryReport::wal_bytes_dropped`]);
    /// 3. replay the surviving deltas through [`Solver::resume`] in a
    ///    single combined application — exactly the model a scratch
    ///    solve of `program` + surviving deltas would produce.
    ///
    /// Neither file is created: a missing WAL simply replays nothing.
    /// Corruption never makes this method fail — it degrades and
    /// reports. The only errors are genuine solve failures (budget,
    /// panicking functions, …), returned exactly as [`Solver::solve`]
    /// returns them.
    pub fn recover(
        &self,
        program: &Program,
        snapshot: impl AsRef<Path>,
        log: impl AsRef<Path>,
    ) -> Result<(Solution, RecoveryReport), Box<SolveFailure>> {
        let mut report = RecoveryReport::default();

        let base = match load_snapshot(snapshot.as_ref(), program) {
            Ok(solution) => {
                report.snapshot_loaded = true;
                Some(solution)
            }
            Err(e) => {
                report.snapshot_error = Some(e);
                None
            }
        };

        let mut combined = Delta::new();
        if log.as_ref().exists() {
            match DeltaLog::open(log.as_ref(), program) {
                Ok((_log, recovery)) => {
                    report.wal_frames_replayed = recovery.deltas.len();
                    report.wal_bytes_dropped = recovery.dropped_bytes;
                    for delta in &recovery.deltas {
                        combined.extend_from(delta);
                    }
                }
                Err(e) => report.wal_error = Some(e),
            }
        }
        report.wal_entries_replayed = combined.len();

        let delta_failure = |e: crate::incremental::DeltaError| {
            // Unreachable when the fingerprint matched (the entries
            // were validated when appended), but a recovery path does
            // not get to assume that.
            let stats = SolveStats::default();
            let partial = make_solution(
                program,
                Database::for_program(program, self.config.use_indexes),
                stats.clone(),
                None,
                None,
            );
            Box::new(SolveFailure {
                error: e.into(),
                partial,
                stats,
            })
        };
        let scratch = |report: &mut RecoveryReport| -> Result<Solution, Box<SolveFailure>> {
            report.scratch_solve = true;
            if combined.is_empty() {
                self.solve(program)
            } else {
                let extended = program.with_delta(&combined).map_err(delta_failure)?;
                self.solve(&extended)
            }
        };
        let solution = match base {
            Some(prior) => match self.resume(program, &prior, &combined) {
                Ok(solution) => solution,
                // A pre-version-2 snapshot records no extensional store,
                // so a WAL that retracts facts cannot be replayed against
                // it exactly; the sound degradation is a scratch solve of
                // the program with the combined delta applied.
                Err(failure)
                    if matches!(
                        failure.error,
                        crate::SolveError::Delta(crate::incremental::DeltaError::NoExtensionalBase)
                    ) =>
                {
                    scratch(&mut report)?
                }
                Err(failure) => return Err(failure),
            },
            None => scratch(&mut report)?,
        };
        Ok((solution, report))
    }
}
