//! Byte-level primitives shared by the snapshot and WAL formats: a
//! little-endian writer/reader pair, the CRC-32 frame checksum, the
//! [`Value`] codec, and the program fingerprint.
//!
//! Everything here is hand-rolled: the workspace is offline and takes no
//! serialization dependency. The encoding is deliberately boring —
//! little-endian fixed-width integers, length-prefixed UTF-8 strings,
//! one tag byte per [`Value`] variant — so that DESIGN.md §14 can
//! specify it exactly and the golden-snapshot fixture can pin it.

use crate::program::{CHead, CItem, CTerm, Program};
use crate::Value;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

/// Maximum [`Value`] nesting the decoder accepts. Honest encoders never
/// get near this; a corrupt or adversarial frame must not be able to
/// recurse the decoder off the stack.
pub(crate) const MAX_VALUE_DEPTH: usize = 64;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the frame
/// checksum of both persistence formats.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a 64-bit — the hash behind [`program_fingerprint`]. Not a frame
/// checksum (CRC-32 plays that role); this one only needs to make
/// distinct programs collide with negligible probability.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Little-endian byte writer over a growable buffer.
#[derive(Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub(crate) fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// A `u32` byte length followed by the UTF-8 bytes.
    pub(crate) fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// One tag byte per variant, then the payload. Sets iterate in
    /// `BTreeSet` order, so equal values encode to equal bytes.
    pub(crate) fn value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(n) => {
                self.u8(2);
                self.i64(*n);
            }
            Value::Str(s) => {
                self.u8(3);
                self.string(s);
            }
            Value::Tag(name, payload) => {
                self.u8(4);
                self.string(name);
                self.value(payload);
            }
            Value::Tuple(items) => {
                self.u8(5);
                self.u32(items.len() as u32);
                for item in items.iter() {
                    self.value(item);
                }
            }
            Value::Set(items) => {
                self.u8(6);
                self.u32(items.len() as u32);
                for item in items.iter() {
                    self.value(item);
                }
            }
        }
    }
}

/// A structural decoding failure: the byte offset it was detected at
/// plus a static description. Callers wrap it into the containing
/// frame's corruption error.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WireError {
    pub(crate) at: usize,
    pub(crate) what: &'static str,
}

/// Little-endian byte reader over a borrowed slice. Every read is
/// bounds-checked; a reader never panics on garbage input.
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn err(&self, what: &'static str) -> WireError {
        WireError { at: self.pos, what }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.err("unexpected end of input"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn string(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(self.err("string length exceeds input"));
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError {
            at: self.pos - len,
            what: "string is not valid UTF-8",
        })
    }

    pub(crate) fn value(&mut self) -> Result<Value, WireError> {
        self.value_at_depth(0)
    }

    fn value_at_depth(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(self.err("value nesting too deep"));
        }
        match self.u8()? {
            0 => Ok(Value::Unit),
            1 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(self.err("boolean byte is neither 0 nor 1")),
            },
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Str(self.string()?.into())),
            4 => {
                let name: Arc<str> = self.string()?.into();
                let payload = self.value_at_depth(depth + 1)?;
                Ok(Value::Tag(name, Arc::new(payload)))
            }
            5 => {
                let count = self.u32()? as usize;
                // Every element takes at least its tag byte, so a count
                // beyond the remaining bytes is corruption, not work.
                if count > self.remaining() {
                    return Err(self.err("tuple length exceeds input"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value_at_depth(depth + 1)?);
                }
                Ok(Value::Tuple(items.into()))
            }
            6 => {
                let count = self.u32()? as usize;
                if count > self.remaining() {
                    return Err(self.err("set length exceeds input"));
                }
                let mut items = BTreeSet::new();
                for _ in 0..count {
                    items.insert(self.value_at_depth(depth + 1)?);
                }
                Ok(Value::Set(Arc::new(items)))
            }
            _ => Err(WireError {
                at: self.pos - 1,
                what: "unknown value tag",
            }),
        }
    }
}

/// A 64-bit fingerprint of a program's *identity*: predicate
/// declarations (names, arities, lattice names and bottoms), rule
/// shapes, and ground facts.
///
/// A snapshot or WAL records the fingerprint of the program it was
/// produced against, and loading rejects a file whose fingerprint does
/// not match — replaying deltas against the wrong program would
/// silently compute the wrong model. Index requests and other purely
/// operational settings are excluded: they change the evaluation plan,
/// never the model.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut w = ByteWriter::new();
    w.bytes(b"flix-program-v1");
    w.u32(program.num_predicates() as u32);
    for (_, decl) in program.predicates() {
        w.string(decl.name());
        w.u32(decl.arity() as u32);
        match decl.lattice_ops() {
            None => w.u8(0),
            Some(ops) => {
                w.u8(1);
                w.string(ops.name());
                w.value(ops.bottom());
            }
        }
    }
    w.u32(program.rules.len() as u32);
    for rule in &program.rules {
        w.u32(rule.head_pred.0);
        w.u32(rule.head.len() as u32);
        for head in &rule.head {
            write_head(&mut w, program, head);
        }
        w.u32(rule.body.len() as u32);
        for item in &rule.body {
            write_item(&mut w, program, item);
        }
    }
    w.u32(program.facts.len() as u32);
    for (pred, tuple) in program.facts() {
        w.u32(pred.0);
        w.u32(tuple.len() as u32);
        for v in tuple {
            w.value(v);
        }
    }
    fnv1a64(&w.into_bytes())
}

/// Functions are opaque closures; their registered name is the best
/// identity available. Deliberately *not* the registration index:
/// `flix_lang` assigns function ids in hash-map iteration order, so
/// the index permutes between two compilations of identical source,
/// and the fingerprint must not.
fn write_func(w: &mut ByteWriter, program: &Program, func: usize) {
    w.string(&program.funcs[func].name);
}

fn write_term(w: &mut ByteWriter, term: &CTerm) {
    match term {
        CTerm::Var(slot) => {
            w.u8(0);
            w.u32(*slot as u32);
        }
        CTerm::Lit(v) => {
            w.u8(1);
            w.value(v);
        }
        CTerm::Wild => w.u8(2),
    }
}

fn write_head(w: &mut ByteWriter, program: &Program, head: &CHead) {
    match head {
        CHead::Var(slot) => {
            w.u8(0);
            w.u32(*slot as u32);
        }
        CHead::Lit(v) => {
            w.u8(1);
            w.value(v);
        }
        CHead::App(func, args) => {
            w.u8(2);
            write_func(w, program, *func);
            w.u32(args.len() as u32);
            for arg in args {
                write_term(w, arg);
            }
        }
    }
}

fn write_item(w: &mut ByteWriter, program: &Program, item: &CItem) {
    match item {
        // `index_cols` is an evaluation plan, not program identity.
        CItem::Atom { pred, terms, .. } => {
            w.u8(0);
            w.u32(pred.0);
            w.u32(terms.len() as u32);
            for t in terms {
                write_term(w, t);
            }
        }
        CItem::NegAtom { pred, terms } => {
            w.u8(1);
            w.u32(pred.0);
            w.u32(terms.len() as u32);
            for t in terms {
                write_term(w, t);
            }
        }
        CItem::Filter { func, args } => {
            w.u8(2);
            write_func(w, program, *func);
            w.u32(args.len() as u32);
            for a in args {
                write_term(w, a);
            }
        }
        CItem::Choose { func, args, binds } => {
            w.u8(3);
            write_func(w, program, *func);
            w.u32(args.len() as u32);
            for a in args {
                write_term(w, a);
            }
            w.u32(binds.len() as u32);
            for b in binds {
                w.u32(*b as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_round_trips() {
        let values = [
            Value::Unit,
            Value::Bool(true),
            Value::Int(-42),
            Value::str("hello"),
            Value::tag("Some", Value::Int(7)),
            Value::tuple([Value::Int(1), Value::str("x")]),
            Value::set([Value::Int(3), Value::Int(1), Value::Int(2)]),
            Value::tag("Deep", Value::tuple([Value::set([Value::Unit])])),
        ];
        for v in &values {
            let mut w = ByteWriter::new();
            w.value(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&r.value().expect("decodes"), v);
            assert!(r.is_done());
        }
    }

    #[test]
    fn decoder_rejects_garbage_without_panicking() {
        // Every prefix of a valid encoding fails cleanly.
        let mut w = ByteWriter::new();
        w.value(&Value::tag(
            "T",
            Value::tuple([Value::Int(1), Value::str("s")]),
        ));
        let bytes = w.into_bytes();
        for end in 0..bytes.len() {
            assert!(ByteReader::new(&bytes[..end]).value().is_err());
        }
        // Unknown tag byte.
        assert!(ByteReader::new(&[255]).value().is_err());
        // A nesting bomb: deep Tag chain.
        let mut bomb = Vec::new();
        for _ in 0..10_000 {
            bomb.push(4u8); // Tag
            bomb.extend_from_slice(&1u32.to_le_bytes());
            bomb.push(b't');
        }
        bomb.push(0); // innermost Unit
        assert!(ByteReader::new(&bomb).value().is_err());
        // A length lie: tuple claiming u32::MAX elements.
        let mut lie = vec![5u8];
        lie.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(ByteReader::new(&lie).value().is_err());
    }
}
