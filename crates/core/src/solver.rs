//! The fixed-point solvers: naïve and semi-naïve evaluation (§3.2, §3.7).
//!
//! Both strategies compute the minimal model of a program by iterating the
//! immediate consequence operator with per-cell least-upper-bound
//! compaction. The naïve strategy re-evaluates every rule each round; the
//! semi-naïve strategy follows §3.7 of the paper: it maintains, per
//! predicate, an incremental relation `∆P` of ground atoms that *strictly
//! increased* (`ga(P', S) ⊐ ga(P, S)`), and re-evaluates each rule once per
//! body atom, instantiating that atom from `∆P` and the others from the
//! full database.

use crate::ast::{PredKind, ProgramError};
use crate::database::{Database, InsertOutcome, PredData, Row};
use crate::program::{CHead, CItem, CRule, CTerm, Program};
use crate::provenance::{key_matches, pattern_matches, DerivationTree, Event, Premise, Source};
use crate::stratify::stratify;
use crate::{PredId, Value};
use std::fmt;

/// The evaluation strategy for [`Solver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Re-evaluate every rule whenever anything changed (§3.1: "this
    /// strategy is called naïve evaluation"). Correct but slow; kept as the
    /// baseline for the ablation benchmarks.
    Naive,
    /// The incremental strategy of §3.7, adapted for lattices.
    #[default]
    SemiNaive,
}

/// Aggregate statistics of one solver run.
///
/// `facts_derived` counts gross derivations (before deduplication and
/// subsumption); `facts_inserted` counts net database changes. Their ratio,
/// together with `index_probes` vs `scan_fallbacks`, is the work profile
/// reported by the benchmark tables in place of the paper's memory column.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Fixed-point rounds executed (across all strata).
    pub rounds: u64,
    /// Individual rule evaluations.
    pub rule_evaluations: u64,
    /// Head tuples produced by rule evaluation.
    pub facts_derived: u64,
    /// Insertions that changed the database (new tuples or strict lattice
    /// increases).
    pub facts_inserted: u64,
    /// Index probes performed.
    pub index_probes: u64,
    /// Full-scan fallbacks (no usable index).
    pub scan_fallbacks: u64,
    /// Number of strata evaluated.
    pub strata: u64,
    /// Total facts in the final database.
    pub total_facts: u64,
}

/// An error during solving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The program is not stratifiable (§3.5).
    Program(ProgramError),
    /// The configured round limit was exceeded — the symptom of a lattice
    /// of unbounded height or a non-monotone function (§7 "Safety").
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Program(e) => write!(f, "{e}"),
            SolveError::RoundLimitExceeded { limit } => write!(
                f,
                "fixed point not reached within {limit} rounds; check that every lattice has \
                 finite height and every function is monotone"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ProgramError> for SolveError {
    fn from(e: ProgramError) -> SolveError {
        SolveError::Program(e)
    }
}

/// A configurable fixed-point solver.
///
/// # Example
///
/// ```
/// use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Solver, Term, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// let edge = b.relation("Edge", 2);
/// let path = b.relation("Path", 2);
/// b.fact(edge, vec![1.into(), 2.into()]);
/// b.fact(edge, vec![2.into(), 3.into()]);
/// b.rule(
///     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
///     [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
/// );
/// b.rule(
///     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
///     [
///         BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
///         BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
///     ],
/// );
/// let program = b.build()?;
/// let solution = Solver::new().solve(&program)?;
/// assert!(solution.contains("Path", &[1.into(), 3.into()]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    strategy: Strategy,
    threads: usize,
    use_indexes: bool,
    max_rounds: Option<u64>,
    provenance: bool,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration: semi-naïve,
    /// sequential, indexed, no round limit.
    pub fn new() -> Solver {
        Solver {
            strategy: Strategy::SemiNaive,
            threads: 1,
            use_indexes: true,
            max_rounds: None,
            provenance: false,
        }
    }

    /// Records derivation provenance: every database-changing insertion is
    /// logged with its rule and instantiated premises, and the resulting
    /// [`Solution::explain`] reconstructs derivation trees. Costs memory
    /// proportional to the number of insertions.
    pub fn record_provenance(mut self, record: bool) -> Solver {
        self.provenance = record;
        self
    }

    /// Selects the evaluation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Solver {
        self.strategy = strategy;
        self
    }

    /// Evaluates rules within each round on `threads` worker threads
    /// (`1` = sequential). Rule evaluations within a round are independent,
    /// so this changes wall-clock time but never the solution.
    pub fn threads(mut self, threads: usize) -> Solver {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables hash-index construction (the index-selection
    /// ablation; disabling forces full scans on every join).
    pub fn use_indexes(mut self, use_indexes: bool) -> Solver {
        self.use_indexes = use_indexes;
        self
    }

    /// Bounds the number of fixed-point rounds, as a safety net against
    /// lattices of unbounded height.
    pub fn max_rounds(mut self, limit: u64) -> Solver {
        self.max_rounds = Some(limit);
        self
    }

    /// Computes the minimal model of `program`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Program`] if the program is not stratifiable
    /// and [`SolveError::RoundLimitExceeded`] if a configured round limit
    /// is hit before the fixed point.
    pub fn solve(&self, program: &Program) -> Result<Solution, SolveError> {
        let strata = stratify(program)?;
        let mut db = Database::for_program(program, self.use_indexes);
        let mut stats = SolveStats::default();
        let mut events: Option<Vec<Event>> = self.provenance.then(Vec::new);
        let npreds = program.preds.len();

        // Load the extensional facts.
        for (pred, values) in &program.facts {
            match db.insert(*pred, values.clone()) {
                InsertOutcome::Unchanged => {}
                _ => {
                    stats.facts_inserted += 1;
                    if let Some(log) = events.as_mut() {
                        log.push(Event {
                            pred: *pred,
                            tuple: values.clone(),
                            source: Source::Fact,
                        });
                    }
                }
            }
        }

        for group in &strata.rule_groups {
            stats.strata += 1;
            match self.strategy {
                Strategy::Naive => {
                    self.run_naive(program, &mut db, group, &mut stats, &mut events)?;
                }
                Strategy::SemiNaive => {
                    self.run_semi_naive(program, &mut db, group, npreds, &mut stats, &mut events)?;
                }
            }
        }

        stats.index_probes = db.index_probes.load(std::sync::atomic::Ordering::Relaxed);
        stats.scan_fallbacks = db.scan_fallbacks.load(std::sync::atomic::Ordering::Relaxed);
        stats.total_facts = db.total_facts() as u64;
        Ok(Solution {
            names: program
                .preds
                .iter()
                .enumerate()
                .map(|(i, d)| (d.name.to_string(), PredId(i as u32)))
                .collect(),
            kinds: program
                .preds
                .iter()
                .map(|d| matches!(d.kind, PredKind::Lattice(_)))
                .collect(),
            db,
            stats,
            events,
        })
    }

    fn check_round_limit(&self, stats: &SolveStats) -> Result<(), SolveError> {
        if let Some(limit) = self.max_rounds {
            if stats.rounds >= limit {
                return Err(SolveError::RoundLimitExceeded { limit });
            }
        }
        Ok(())
    }

    fn run_naive(
        &self,
        program: &Program,
        db: &mut Database,
        group: &[usize],
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
    ) -> Result<(), SolveError> {
        loop {
            self.check_round_limit(stats)?;
            stats.rounds += 1;
            let tasks: Vec<Task> = group
                .iter()
                .map(|&r| Task {
                    rule: r,
                    variant: None,
                })
                .collect();
            let derived = self.run_tasks(program, db, &tasks, &[], stats);
            let mut changed = false;
            for d in derived {
                stats.facts_derived += 1;
                match db.insert(d.pred, d.tuple.clone()) {
                    InsertOutcome::Unchanged => {}
                    outcome => {
                        stats.facts_inserted += 1;
                        changed = true;
                        log_event(events, &d, outcome);
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_semi_naive(
        &self,
        program: &Program,
        db: &mut Database,
        group: &[usize],
        npreds: usize,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
    ) -> Result<(), SolveError> {
        // Seed round: one full (naïve) evaluation of the stratum's rules.
        self.check_round_limit(stats)?;
        stats.rounds += 1;
        let seed_tasks: Vec<Task> = group
            .iter()
            .map(|&r| Task {
                rule: r,
                variant: None,
            })
            .collect();
        let derived = self.run_tasks(program, db, &seed_tasks, &[], stats);
        let mut delta: Vec<Vec<Row>> = vec![Vec::new(); npreds];
        for d in derived {
            stats.facts_derived += 1;
            record_insert(db, d, &mut delta, stats, events);
        }

        // Incremental rounds.
        while delta.iter().any(|d| !d.is_empty()) {
            self.check_round_limit(stats)?;
            stats.rounds += 1;
            let mut tasks = Vec::new();
            for &r in group {
                let rule = &program.rules[r];
                for (vi, (pred, _)) in rule.delta_variants.iter().enumerate() {
                    if !delta[pred.0 as usize].is_empty() {
                        tasks.push(Task {
                            rule: r,
                            variant: Some(vi),
                        });
                    }
                }
            }
            let derived = self.run_tasks(program, db, &tasks, &delta, stats);
            let mut new_delta: Vec<Vec<Row>> = vec![Vec::new(); npreds];
            for d in derived {
                stats.facts_derived += 1;
                record_insert(db, d, &mut new_delta, stats, events);
            }
            delta = new_delta;
        }
        Ok(())
    }

    fn run_tasks(
        &self,
        program: &Program,
        db: &Database,
        tasks: &[Task],
        delta: &[Vec<Row>],
        stats: &mut SolveStats,
    ) -> Vec<Derived> {
        stats.rule_evaluations += tasks.len() as u64;
        if self.threads <= 1 || tasks.len() <= 1 {
            let mut out = Vec::new();
            for task in tasks {
                eval_rule_prov(
                    program,
                    db,
                    task.rule,
                    task.variant,
                    delta,
                    self.provenance,
                    &mut out,
                );
            }
            return out;
        }
        // Parallel: rule evaluations within a round only read the database,
        // so they can proceed concurrently; outputs are merged afterwards.
        let chunk = tasks.len().div_ceil(self.threads);
        let provenance = self.provenance;
        let mut results: Vec<Vec<Derived>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .chunks(chunk)
                .map(|task_chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for task in task_chunk {
                            eval_rule_prov(
                                program,
                                db,
                                task.rule,
                                task.variant,
                                delta,
                                provenance,
                                &mut out,
                            );
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("solver worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// One rule evaluation within a round: the full body (seed/naïve), or a
/// delta variant (delta atom first).
#[derive(Clone, Copy, Debug)]
struct Task {
    rule: usize,
    variant: Option<usize>,
}

/// One derived head tuple, optionally with instantiated premises.
#[derive(Clone, Debug)]
pub(crate) struct Derived {
    pub(crate) pred: PredId,
    pub(crate) tuple: Vec<Value>,
    pub(crate) rule: usize,
    pub(crate) premises: Option<Vec<Premise>>,
}

fn record_insert(
    db: &mut Database,
    d: Derived,
    delta: &mut [Vec<Row>],
    stats: &mut SolveStats,
    events: &mut Option<Vec<Event>>,
) {
    let pred = d.pred;
    match db.insert(pred, d.tuple.clone()) {
        InsertOutcome::Unchanged => {}
        outcome @ InsertOutcome::NewRow(_) => {
            stats.facts_inserted += 1;
            if let InsertOutcome::NewRow(row) = &outcome {
                delta[pred.0 as usize].push(row.clone());
            }
            log_event(events, &d, outcome);
        }
        outcome @ InsertOutcome::LatIncrease(_, _) => {
            stats.facts_inserted += 1;
            if let InsertOutcome::LatIncrease(key, value) = &outcome {
                // Delta rows carry the full tuple: key columns plus the
                // *new* cell value (§3.7's ga(P', S)).
                let mut full: Vec<Value> = key.to_vec();
                full.push(value.clone());
                delta[pred.0 as usize].push(full.into());
            }
            log_event(events, &d, outcome);
        }
    }
}

/// Appends a provenance event for a database-changing insertion.
fn log_event(events: &mut Option<Vec<Event>>, d: &Derived, outcome: InsertOutcome) {
    let Some(log) = events.as_mut() else {
        return;
    };
    // For lattice increases, log the *joined* cell value so explanations
    // show the state the database actually reached.
    let tuple = match outcome {
        InsertOutcome::LatIncrease(key, value) => {
            let mut full = key.to_vec();
            full.push(value);
            full
        }
        _ => d.tuple.clone(),
    };
    log.push(Event {
        pred: d.pred,
        tuple,
        source: Source::Rule {
            rule: d.rule,
            premises: d.premises.clone().unwrap_or_default(),
        },
    });
}

/// Evaluates a rule by index, producing [`Derived`] records (with
/// premises when `provenance` is set).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_rule_prov(
    program: &Program,
    db: &Database,
    rule_idx: usize,
    variant: Option<usize>,
    delta: &[Vec<Row>],
    provenance: bool,
    out: &mut Vec<Derived>,
) {
    let mut raw: Vec<(PredId, Vec<Value>, Option<Vec<Premise>>)> = Vec::new();
    eval_rule_inner(
        program,
        db,
        &program.rules[rule_idx],
        variant,
        delta,
        provenance,
        &mut raw,
    );
    out.extend(raw.into_iter().map(|(pred, tuple, premises)| Derived {
        pred,
        tuple,
        rule: rule_idx,
        premises,
    }));
}

/// The variable environment of one rule evaluation.
type Env = Vec<Option<Value>>;

/// Undo log of bindings performed while matching one body item.
type Trail = Vec<(usize, Option<Value>)>;

fn bind(env: &mut Env, trail: &mut Trail, slot: usize, value: Value) {
    trail.push((slot, env[slot].take()));
    env[slot] = Some(value);
}

fn unwind(env: &mut Env, trail: &mut Trail, mark: usize) {
    while trail.len() > mark {
        let (slot, old) = trail.pop().expect("trail length checked");
        env[slot] = old;
    }
}

/// Evaluates `rule` against `db` and appends every derived head tuple to
/// `out`. With `variant = Some(i)`, the i-th delta variant body is used:
/// its first atom is instantiated from `delta` instead of the full
/// database (§3.7's incremental evaluation step).
pub(crate) fn eval_rule(
    program: &Program,
    db: &Database,
    rule: &CRule,
    variant: Option<usize>,
    delta: &[Vec<Row>],
    out: &mut Vec<(PredId, Vec<Value>)>,
) {
    let mut raw = Vec::new();
    eval_rule_inner(program, db, rule, variant, delta, false, &mut raw);
    out.extend(raw.into_iter().map(|(pred, tuple, _)| (pred, tuple)));
}

#[allow(clippy::too_many_arguments)]
fn eval_rule_inner(
    program: &Program,
    db: &Database,
    rule: &CRule,
    variant: Option<usize>,
    delta: &[Vec<Row>],
    provenance: bool,
    out: &mut Vec<(PredId, Vec<Value>, Option<Vec<Premise>>)>,
) {
    let (body, delta_pos): (&[CItem], Option<usize>) = match variant {
        None => (&rule.body, None),
        Some(vi) => (&rule.delta_variants[vi].1, Some(0)),
    };
    let mut env: Env = vec![None; rule.num_vars];
    let mut trail: Trail = Vec::new();
    eval_body(
        program, db, rule, body, 0, delta_pos, delta, provenance, &mut env, &mut trail, out,
    );
}

#[allow(clippy::too_many_arguments)]
fn eval_body(
    program: &Program,
    db: &Database,
    rule: &CRule,
    body: &[CItem],
    item_idx: usize,
    delta_pos: Option<usize>,
    delta: &[Vec<Row>],
    provenance: bool,
    env: &mut Env,
    trail: &mut Trail,
    out: &mut Vec<(PredId, Vec<Value>, Option<Vec<Premise>>)>,
) {
    if item_idx == body.len() {
        derive_head(program, rule, body, provenance, env, out);
        return;
    }
    match &body[item_idx] {
        CItem::Atom {
            pred,
            terms,
            index_cols,
        } => {
            let is_lat = program.decl(*pred).is_lattice();
            let ops = program.decl(*pred).lattice_ops();
            let visit = |row: &[Value],
                         env: &mut Env,
                         trail: &mut Trail,
                         out: &mut Vec<(PredId, Vec<Value>, Option<Vec<Premise>>)>| {
                let mark = trail.len();
                if match_tuple(terms, row, is_lat, ops, env, trail) {
                    eval_body(
                        program,
                        db,
                        rule,
                        body,
                        item_idx + 1,
                        delta_pos,
                        delta,
                        provenance,
                        env,
                        trail,
                        out,
                    );
                }
                unwind(env, trail, mark);
            };
            if delta_pos == Some(item_idx) {
                for row in &delta[pred.0 as usize] {
                    visit(row, env, trail, out);
                }
                return;
            }
            match db.pred(*pred) {
                PredData::Rel(rel) => {
                    // Fast path: a fully ground atom (every column a
                    // literal or bound variable, no wildcards) is a plain
                    // membership test — no index needed.
                    if index_cols.len() == terms.len() {
                        // A membership test, not an index probe: available
                        // even with indexes disabled.
                        if let Some(key) = probe_key(index_cols, terms, env) {
                            if rel.contains(&key) {
                                eval_body(
                                    program,
                                    db,
                                    rule,
                                    body,
                                    item_idx + 1,
                                    delta_pos,
                                    delta,
                                    provenance,
                                    env,
                                    trail,
                                    out,
                                );
                            }
                            return;
                        }
                    }
                    if let Some(hits) = probe_key(index_cols, terms, env)
                        .and_then(|key| rel.probe(index_cols, &key))
                    {
                        db.count_probe();
                        let rows = rel.rows();
                        for &i in hits {
                            visit(&rows[i as usize], env, trail, out);
                        }
                    } else {
                        if !index_cols.is_empty() {
                            db.count_scan();
                        }
                        for row in rel.rows() {
                            visit(row, env, trail, out);
                        }
                    }
                }
                PredData::Lat(lat) => {
                    // Fast path: all key columns ground.
                    if let Some(key) = ground_key(terms, env) {
                        if let Some(cell) = lat.value(&key) {
                            let mark = trail.len();
                            if match_lattice_value(
                                terms.last().expect("lattice arity >= 1"),
                                cell,
                                lat.ops(),
                                env,
                                trail,
                            ) {
                                eval_body(
                                    program,
                                    db,
                                    rule,
                                    body,
                                    item_idx + 1,
                                    delta_pos,
                                    delta,
                                    provenance,
                                    env,
                                    trail,
                                    out,
                                );
                            }
                            unwind(env, trail, mark);
                        }
                        return;
                    }
                    if let Some(hits) = probe_key(index_cols, terms, env)
                        .and_then(|key| lat.probe(index_cols, &key))
                    {
                        db.count_probe();
                        let keys = lat.keys();
                        for &i in hits {
                            let key = &keys[i as usize];
                            let cell = lat.value(key).expect("indexed key exists");
                            visit_lat(key, cell, terms, lat.ops(), env, trail, |env, trail| {
                                eval_body(
                                    program,
                                    db,
                                    rule,
                                    body,
                                    item_idx + 1,
                                    delta_pos,
                                    delta,
                                    provenance,
                                    env,
                                    trail,
                                    out,
                                )
                            });
                        }
                    } else {
                        if !index_cols.is_empty() {
                            db.count_scan();
                        }
                        for (key, cell) in lat.iter() {
                            visit_lat(key, cell, terms, lat.ops(), env, trail, |env, trail| {
                                eval_body(
                                    program,
                                    db,
                                    rule,
                                    body,
                                    item_idx + 1,
                                    delta_pos,
                                    delta,
                                    provenance,
                                    env,
                                    trail,
                                    out,
                                )
                            });
                        }
                    }
                }
            }
        }
        CItem::NegAtom { pred, terms } => {
            if !exists_match(program, db, *pred, terms, env) {
                eval_body(
                    program,
                    db,
                    rule,
                    body,
                    item_idx + 1,
                    delta_pos,
                    delta,
                    provenance,
                    env,
                    trail,
                    out,
                );
            }
        }
        CItem::Filter { func, args } => {
            let vals = eval_args(args, env);
            let result = (program.funcs[*func].body)(&vals);
            match result {
                Value::Bool(true) => eval_body(
                    program,
                    db,
                    rule,
                    body,
                    item_idx + 1,
                    delta_pos,
                    delta,
                    provenance,
                    env,
                    trail,
                    out,
                ),
                Value::Bool(false) => {}
                other => panic!(
                    "filter function {} returned non-boolean value {other}",
                    program.funcs[*func].name
                ),
            }
        }
        CItem::Choose { func, args, binds } => {
            let vals = eval_args(args, env);
            let result = (program.funcs[*func].body)(&vals);
            let Value::Set(elems) = &result else {
                panic!(
                    "choice function {} returned non-set value {result}",
                    program.funcs[*func].name
                )
            };
            for elem in elems.iter() {
                let mark = trail.len();
                let ok = if binds.len() == 1 {
                    bind(env, trail, binds[0], elem.clone());
                    true
                } else {
                    match elem.as_tuple() {
                        Some(items) if items.len() == binds.len() => {
                            for (slot, item) in binds.iter().zip(items) {
                                bind(env, trail, *slot, item.clone());
                            }
                            true
                        }
                        _ => panic!(
                            "choice function {} produced element {elem}, expected a \
                             {}-tuple",
                            program.funcs[*func].name,
                            binds.len()
                        ),
                    }
                };
                if ok {
                    eval_body(
                        program,
                        db,
                        rule,
                        body,
                        item_idx + 1,
                        delta_pos,
                        delta,
                        provenance,
                        env,
                        trail,
                        out,
                    );
                }
                unwind(env, trail, mark);
            }
        }
    }
}

/// Matches a lattice (key, cell) pair against atom terms.
fn visit_lat(
    key: &[Value],
    cell: &Value,
    terms: &[CTerm],
    ops: &crate::LatticeOps,
    env: &mut Env,
    trail: &mut Trail,
    mut next: impl FnMut(&mut Env, &mut Trail),
) {
    let mark = trail.len();
    let key_terms = &terms[..terms.len() - 1];
    if match_tuple(key_terms, key, false, None, env, trail)
        && match_lattice_value(terms.last().expect("arity >= 1"), cell, ops, env, trail)
    {
        next(env, trail);
    }
    unwind(env, trail, mark);
}

/// Unifies atom terms against a stored tuple. For lattice atoms
/// (`is_lat`), the last term is matched with [`match_lattice_value`] and
/// the rest positionally.
fn match_tuple(
    terms: &[CTerm],
    row: &[Value],
    is_lat: bool,
    ops: Option<&crate::LatticeOps>,
    env: &mut Env,
    trail: &mut Trail,
) -> bool {
    debug_assert_eq!(terms.len(), row.len());
    let n = terms.len();
    for (i, (term, value)) in terms.iter().zip(row).enumerate() {
        if is_lat && i == n - 1 {
            let ops = ops.expect("lattice atoms carry ops");
            if !match_lattice_value(term, value, ops, env, trail) {
                return false;
            }
            continue;
        }
        match term {
            CTerm::Wild => {}
            CTerm::Lit(l) => {
                if l != value {
                    return false;
                }
            }
            CTerm::Var(slot) => match &env[*slot] {
                Some(bound) => {
                    if bound != value {
                        return false;
                    }
                }
                None => bind(env, trail, *slot, value.clone()),
            },
        }
    }
    true
}

/// Matches the value column of a lattice atom against a cell value.
///
/// This implements the ground-instance semantics of §3.2: the atom
/// `P(k̄, v)` is true when `v ⊑ cell(k̄)`. An unbound variable binds to the
/// cell value (the greatest witness); a variable already bound to `w`
/// rebinds to `w ⊓ cell` — the greatest element witnessing *both*
/// occurrences, per the paper's `R(x) :- A(x), B(x)` example, whose minimal
/// model holds `R(Odd ⊓ Even) = R(⊥)`. A `⊥` witness is dropped: every
/// head derived from it through strict functions is `⊥`, which the
/// database never stores.
fn match_lattice_value(
    term: &CTerm,
    cell: &Value,
    ops: &crate::LatticeOps,
    env: &mut Env,
    trail: &mut Trail,
) -> bool {
    match term {
        CTerm::Wild => true,
        CTerm::Lit(l) => ops.leq(l, cell),
        CTerm::Var(slot) => match &env[*slot] {
            None => {
                bind(env, trail, *slot, cell.clone());
                true
            }
            Some(bound) => {
                let met = ops.glb(bound, cell);
                if ops.is_bottom(&met) {
                    return false;
                }
                if met != *bound {
                    bind(env, trail, *slot, met);
                }
                true
            }
        },
    }
}

/// Builds the probe key for an index lookup; `None` when some index column
/// is not ground (cannot happen for compiled `index_cols`, but kept
/// defensive) or when `index_cols` is empty.
fn probe_key(index_cols: &[usize], terms: &[CTerm], env: &Env) -> Option<Vec<Value>> {
    if index_cols.is_empty() {
        return None;
    }
    let mut key = Vec::with_capacity(index_cols.len());
    for &col in index_cols {
        match &terms[col] {
            CTerm::Lit(v) => key.push(v.clone()),
            CTerm::Var(slot) => key.push(env[*slot].clone()?),
            CTerm::Wild => return None,
        }
    }
    Some(key)
}

/// Returns the fully ground key of a lattice atom, if every key column is
/// a literal or bound variable.
fn ground_key(terms: &[CTerm], env: &Env) -> Option<Vec<Value>> {
    let key_terms = &terms[..terms.len() - 1];
    let mut key = Vec::with_capacity(key_terms.len());
    for t in key_terms {
        match t {
            CTerm::Lit(v) => key.push(v.clone()),
            CTerm::Var(slot) => key.push(env[*slot].clone()?),
            CTerm::Wild => return None,
        }
    }
    Some(key)
}

/// Existence check for negated atoms (all variables are ground by
/// validation; wildcards may remain).
fn exists_match(
    program: &Program,
    db: &Database,
    pred: PredId,
    terms: &[CTerm],
    env: &mut Env,
) -> bool {
    let is_lat = program.decl(pred).is_lattice();
    let ops = program.decl(pred).lattice_ops();
    let mut trail: Trail = Vec::new();
    match db.pred(pred) {
        PredData::Rel(rel) => rel.rows().iter().any(|row| {
            let mark = trail.len();
            let matched = match_tuple(terms, row, false, None, env, &mut trail);
            unwind(env, &mut trail, mark);
            matched
        }),
        PredData::Lat(lat) => {
            if let Some(key) = ground_key(terms, env) {
                if let Some(cell) = lat.value(&key) {
                    let mark = trail.len();
                    let matched = match_lattice_value(
                        terms.last().expect("arity >= 1"),
                        cell,
                        ops.expect("lattice"),
                        env,
                        &mut trail,
                    );
                    unwind(env, &mut trail, mark);
                    return matched;
                }
                return false;
            }
            lat.iter().any(|(key, cell)| {
                let mark = trail.len();
                let matched =
                    match_tuple(terms, &full_row(key, cell), is_lat, ops, env, &mut trail);
                unwind(env, &mut trail, mark);
                matched
            })
        }
    }
}

fn full_row(key: &[Value], cell: &Value) -> Vec<Value> {
    let mut row = key.to_vec();
    row.push(cell.clone());
    row
}

fn eval_args(args: &[CTerm], env: &Env) -> Vec<Value> {
    args.iter()
        .map(|t| match t {
            CTerm::Lit(v) => v.clone(),
            CTerm::Var(slot) => env[*slot]
                .clone()
                .expect("validated: argument variables are bound"),
            CTerm::Wild => panic!("wildcard cannot be a function argument"),
        })
        .collect()
}

fn derive_head(
    program: &Program,
    rule: &CRule,
    body: &[CItem],
    provenance: bool,
    env: &Env,
    out: &mut Vec<(PredId, Vec<Value>, Option<Vec<Premise>>)>,
) {
    let mut tuple = Vec::with_capacity(rule.head.len());
    for h in &rule.head {
        match h {
            CHead::Lit(v) => tuple.push(v.clone()),
            CHead::Var(slot) => {
                tuple.push(env[*slot].clone().expect("validated: head variables bound"))
            }
            CHead::App(func, args) => {
                let vals = eval_args(args, env);
                tuple.push((program.funcs[*func].body)(&vals));
            }
        }
    }
    let premises = provenance.then(|| {
        body.iter()
            .filter_map(|item| match item {
                CItem::Atom { pred, terms, .. } => Some(Premise {
                    pred: *pred,
                    pattern: terms
                        .iter()
                        .map(|t| match t {
                            CTerm::Lit(v) => Some(v.clone()),
                            CTerm::Var(slot) => env[*slot].clone(),
                            CTerm::Wild => None,
                        })
                        .collect(),
                }),
                _ => None,
            })
            .collect()
    });
    out.push((rule.head_pred, tuple, premises));
}

/// The computed minimal model: the final fact database plus run statistics.
///
/// Query by predicate name; relations yield tuples, lattice predicates
/// yield `(key, element)` cells.
#[derive(Debug)]
pub struct Solution {
    names: std::collections::HashMap<String, PredId>,
    kinds: Vec<bool>, // true = lattice
    db: Database,
    stats: SolveStats,
    events: Option<Vec<Event>>,
}

impl Solution {
    /// Looks up a predicate id by name.
    pub fn predicate(&self, name: &str) -> Option<PredId> {
        self.names.get(name).copied()
    }

    /// Iterates the tuples of a relational predicate.
    ///
    /// Returns `None` for unknown names or lattice predicates.
    pub fn relation(&self, name: &str) -> Option<impl Iterator<Item = &[Value]> + '_> {
        let pred = self.predicate(name)?;
        match self.db.pred(pred) {
            PredData::Rel(rel) => Some(rel.rows().iter().map(|r| &r[..])),
            PredData::Lat(_) => None,
        }
    }

    /// Iterates the `(key, element)` cells of a lattice predicate.
    ///
    /// Returns `None` for unknown names or relational predicates.
    pub fn lattice(&self, name: &str) -> Option<impl Iterator<Item = (&[Value], &Value)> + '_> {
        let pred = self.predicate(name)?;
        match self.db.pred(pred) {
            PredData::Lat(lat) => Some(lat.iter().map(|(k, v)| (&k[..], v))),
            PredData::Rel(_) => None,
        }
    }

    /// The lattice element at `key`, or the lattice's `⊥` when the cell
    /// was never derived. Returns `None` for unknown or relational
    /// predicates.
    pub fn lattice_value(&self, name: &str, key: &[Value]) -> Option<Value> {
        let pred = self.predicate(name)?;
        match self.db.pred(pred) {
            PredData::Lat(lat) => Some(
                lat.value(key)
                    .cloned()
                    .unwrap_or_else(|| lat.ops().bottom().clone()),
            ),
            PredData::Rel(_) => None,
        }
    }

    /// Returns `true` if the relational predicate contains the tuple.
    pub fn contains(&self, name: &str, row: &[Value]) -> bool {
        match self.predicate(name).map(|p| self.db.pred(p)) {
            Some(PredData::Rel(rel)) => rel.contains(row),
            _ => false,
        }
    }

    /// The number of facts stored for a predicate (tuples, or non-bottom
    /// cells for lattice predicates).
    pub fn len(&self, name: &str) -> Option<usize> {
        let pred = self.predicate(name)?;
        Some(self.db.len_of(pred))
    }

    /// Returns `true` if a predicate holds no facts.
    pub fn is_empty(&self, name: &str) -> Option<bool> {
        self.len(name).map(|n| n == 0)
    }

    /// Returns `true` if the named predicate is a lattice predicate.
    pub fn is_lattice(&self, name: &str) -> Option<bool> {
        self.predicate(name).map(|p| self.kinds[p.0 as usize])
    }

    /// Total facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.db.total_facts()
    }

    /// The run statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The provenance event log, if the solver ran with
    /// [`Solver::record_provenance`] — one entry per database-changing
    /// insertion, in insertion order.
    pub fn provenance(&self) -> Option<&[Event]> {
        self.events.as_deref()
    }

    /// Reconstructs the derivation tree of a fact.
    ///
    /// For relational predicates, `row` is the full tuple; for lattice
    /// predicates, `row` may be the key columns alone (the explanation
    /// covers the last insertion that changed the cell) or the full tuple
    /// including a cell value (the explanation covers the last insertion
    /// at which the cell held exactly that value).
    ///
    /// Returns `None` when provenance was not recorded, the predicate is
    /// unknown, or no matching insertion exists. Premises blocked behind
    /// filters, negations, or choice bindings appear only through their
    /// positive atoms, per the provenance model documented in
    /// [`crate::provenance`].
    pub fn explain(&self, name: &str, row: &[Value]) -> Option<DerivationTree> {
        let events = self.events.as_deref()?;
        let pred = self.predicate(name)?;
        let is_lattice = self.kinds[pred.0 as usize];
        let idx = events.iter().rposition(|e| {
            e.pred == pred
                && if is_lattice {
                    if row.len() == e.tuple.len() {
                        e.tuple == row
                    } else {
                        row.len() + 1 == e.tuple.len() && e.tuple[..row.len()] == *row
                    }
                } else {
                    e.tuple == row
                }
        })?;
        Some(self.build_tree(events, idx))
    }

    fn build_tree(&self, events: &[Event], idx: usize) -> DerivationTree {
        let event = &events[idx];
        let name = self
            .names
            .iter()
            .find(|(_, &p)| p == event.pred)
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        let (rule, premises) = match &event.source {
            Source::Fact => (None, &[][..]),
            Source::Rule { rule, premises } => (Some(*rule), premises.as_slice()),
        };
        let children = premises
            .iter()
            .filter_map(|premise| {
                let is_lattice = self.kinds[premise.pred.0 as usize];
                // Resolve to the latest earlier event establishing the
                // premise; indices strictly decrease, so this terminates.
                events[..idx]
                    .iter()
                    .rposition(|e| {
                        e.pred == premise.pred
                            && if is_lattice {
                                key_matches(&premise.pattern, &e.tuple)
                            } else {
                                pattern_matches(&premise.pattern, &e.tuple)
                            }
                    })
                    .map(|j| self.build_tree(events, j))
            })
            .collect();
        DerivationTree {
            predicate: name,
            tuple: event.tuple.clone(),
            rule,
            children,
        }
    }

    pub(crate) fn database(&self) -> &Database {
        &self.db
    }
}
