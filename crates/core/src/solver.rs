//! The fixed-point solvers: naïve and semi-naïve evaluation (§3.2, §3.7).
//!
//! Both strategies compute the minimal model of a program by iterating the
//! immediate consequence operator with per-cell least-upper-bound
//! compaction. The naïve strategy re-evaluates every rule each round; the
//! semi-naïve strategy follows §3.7 of the paper: it maintains, per
//! predicate, an incremental relation `∆P` of ground atoms that *strictly
//! increased* (`ga(P', S) ⊐ ga(P, S)`), and re-evaluates each rule once per
//! body atom, instantiating that atom from `∆P` and the others from the
//! full database.

// The error path is terminal and cold: a `SolveError` is built at most
// once per solve, so the large-`Err`-variant lint's copy-cost concern
// does not apply to the internal `Result<_, SolveError>` plumbing. The
// public API already boxes it (`Box<SolveFailure>`).
#![allow(clippy::result_large_err)]

use crate::ast::{PredKind, ProgramError};
use crate::database::{Database, InsertFault, InsertOutcome, PredData, Row};
use crate::guard::{panic_payload, Budget, BudgetKind, EvalGuard, Guard};
use crate::kernel::{self, KernelSet};
use crate::observe::{Observer, RuleEvaluated, RuleStats, StratumStats};
use crate::ops::OpsPanic;
use crate::program::{CHead, CItem, CRule, CTerm, Program};
use crate::provenance::{key_matches, pattern_matches, DerivationTree, Event, Premise, Source};
use crate::stratify::stratify;
use crate::trace::{
    AscentCell, AscentConfig, AscentReport, AscentWarning, ExecutionTrace, Ring, SpanKind,
    TraceConfig, TraceEvent, Tracer,
};
use crate::verify::Violation;
use crate::{PredId, Value};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// The evaluation strategy for [`Solver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Re-evaluate every rule whenever anything changed (§3.1: "this
    /// strategy is called naïve evaluation"). Correct but slow; kept as the
    /// baseline for the ablation benchmarks.
    Naive,
    /// The incremental strategy of §3.7, adapted for lattices.
    #[default]
    SemiNaive,
}

impl Strategy {
    /// The strategy's stable machine-readable name, as used in the
    /// metrics JSON (`"naive"` / `"semi-naive"`).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::SemiNaive => "semi-naive",
        }
    }
}

/// Aggregate statistics of one solver run.
///
/// `facts_derived` counts gross derivations (before deduplication and
/// subsumption); `facts_inserted` counts net database changes. Their ratio,
/// together with `index_probes` vs `scan_fallbacks`, is the work profile
/// reported by the benchmark tables in place of the paper's memory column.
///
/// # Strategy invariance
///
/// The *outcome* fields — `rounds`, `strata`, `facts_inserted`,
/// `total_facts`, the per-rule `inserted` counters in `per_rule`, and the
/// whole of `per_stratum` (rounds and per-round net delta sizes) — are
/// invariant across evaluation strategies: [`Strategy::Naive`],
/// [`Strategy::SemiNaive`], and any thread count produce identical
/// values, because every strategy computes the same sequence of per-round
/// database states and the counters measure *net* changes between round
/// boundaries (the strategy-parity test suite pins this). The *work*
/// fields — `rule_evaluations`, `facts_derived`, `index_probes`,
/// `scan_fallbacks`, `wall_ns`, and the remaining per-rule counters —
/// describe how much work a particular strategy performed and differ
/// between strategies by design.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Fixed-point rounds executed (across all strata).
    pub rounds: u64,
    /// Individual rule evaluations.
    pub rule_evaluations: u64,
    /// Head tuples produced by rule evaluation.
    pub facts_derived: u64,
    /// Net database changes: new tuples plus distinct lattice cells that
    /// strictly increased, counted once per cell per round (a cell
    /// climbing through several intermediate values within one round is
    /// one net change).
    pub facts_inserted: u64,
    /// Index probes performed.
    pub index_probes: u64,
    /// Full-scan fallbacks (no usable index).
    pub scan_fallbacks: u64,
    /// Number of strata evaluated.
    pub strata: u64,
    /// Total facts in the final database.
    pub total_facts: u64,
    /// Wall-clock time of the whole solve, in nanoseconds.
    pub wall_ns: u64,
    /// Per-rule work profile, indexed by rule number.
    pub per_rule: Vec<RuleStats>,
    /// Per-stratum rounds and per-round delta sizes, in evaluation order.
    pub per_stratum: Vec<StratumStats>,
}

/// An error during solving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The program is not stratifiable (§3.5).
    Program(ProgramError),
    /// The configured round limit was exceeded — the symptom of a lattice
    /// of unbounded height or a non-monotone function (§7 "Safety").
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
        /// The stratum (0-based evaluation order) that failed to converge.
        stratum: usize,
        /// Statistics at the moment the limit was hit.
        stats: SolveStats,
    },
    /// A user-supplied function or lattice operation panicked. The solver
    /// catches the panic (`catch_unwind`), names the function and the
    /// context it was invoked from, and returns the facts derived so far.
    /// A panic escaping a parallel worker *outside* the guarded user-code
    /// paths (an internal solver bug) is reported through this variant
    /// too, with `function` set to `"solver worker"`, rather than
    /// aborting the process.
    FunctionPanicked {
        /// The predicate being derived (or matched) when the panic fired.
        predicate: String,
        /// The rule index within the program, when attributable to a rule.
        rule: Option<usize>,
        /// The function that panicked (e.g. `Parity.lub` or a named
        /// transfer function).
        function: String,
        /// The rendered panic payload.
        payload: String,
    },
    /// A runtime safety sentinel caught the user's lattice or functions
    /// violating a required law *during* solving (§7 "Safety") — e.g. a
    /// `lub` whose result is not an upper bound, an irreflexive `leq`, or
    /// a filter returning a non-boolean.
    SafetyViolation {
        /// The predicate being derived when the sentinel tripped.
        predicate: String,
        /// The rule index within the program, when attributable to a rule.
        rule: Option<usize>,
        /// The concrete law violation observed.
        violation: Violation,
    },
    /// A configured [`Budget`] limit was reached before the fixed point.
    BudgetExceeded {
        /// Which limit tripped.
        kind: BudgetKind,
        /// Statistics at the moment the budget tripped.
        stats: SolveStats,
    },
    /// A [`crate::incremental::Delta`] handed to [`Solver::resume`] does
    /// not fit the program or the prior solution (unknown predicate,
    /// arity mismatch, mismatched solution). The partial solution is the
    /// unmodified pre-update model.
    Delta(crate::incremental::DeltaError),
    /// A [`crate::demand::Query`] handed to
    /// [`Solver::solve_query`](crate::Solver::solve_query) does not fit
    /// the program (unknown predicate, wrong pattern width). The partial
    /// solution is empty.
    Demand(crate::demand::DemandError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Program(e) => write!(f, "{e}"),
            SolveError::RoundLimitExceeded {
                limit,
                stratum,
                stats,
            } => write!(
                f,
                "fixed point not reached within {limit} rounds: stratum {stratum} did not \
                 converge after {} derivations; check that every lattice has finite height \
                 and every function is monotone",
                stats.facts_derived
            ),
            SolveError::FunctionPanicked {
                predicate,
                rule,
                function,
                payload,
                ..
            } => {
                write!(f, "function {function} panicked")?;
                if let Some(r) = rule {
                    write!(f, " in rule #{r}")?;
                }
                write!(f, " while deriving {predicate}: {payload}")
            }
            SolveError::SafetyViolation {
                predicate,
                rule,
                violation,
            } => {
                write!(f, "lattice safety violation")?;
                if let Some(r) = rule {
                    write!(f, " in rule #{r}")?;
                }
                write!(f, " while deriving {predicate}: {violation}")
            }
            SolveError::BudgetExceeded { kind, stats } => {
                write!(
                    f,
                    "{kind} after {} rounds and {} derivations",
                    stats.rounds, stats.facts_derived
                )
            }
            SolveError::Delta(e) => write!(f, "{e}"),
            SolveError::Demand(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ProgramError> for SolveError {
    fn from(e: ProgramError) -> SolveError {
        SolveError::Program(e)
    }
}

/// A failed solve, carrying the partial solution computed before failure.
///
/// Every failure mode of [`Solver::solve`] — a panicking user function, a
/// safety violation, an exhausted budget, a round limit — returns this
/// struct rather than discarding the work done: `partial` is a fully
/// queryable [`Solution`] over the facts derived up to the failure point,
/// and `stats` describes the run. The partial solution is *sound but
/// possibly incomplete*: every fact in it is derivable, but facts may be
/// missing (and lattice cells may sit below their fixed-point values).
#[derive(Debug)]
pub struct SolveFailure {
    /// Why the solve stopped.
    pub error: SolveError,
    /// The facts derived before the failure, queryable like any solution.
    pub partial: Solution,
    /// Statistics of the partial run.
    pub stats: SolveStats,
}

impl fmt::Display for SolveFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (partial solution retains {} facts)",
            self.error, self.stats.total_facts
        )
    }
}

impl std::error::Error for SolveFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A configurable fixed-point solver.
///
/// # Example
///
/// ```
/// use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Solver, Term, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// let edge = b.relation("Edge", 2);
/// let path = b.relation("Path", 2);
/// b.fact(edge, vec![1.into(), 2.into()]);
/// b.fact(edge, vec![2.into(), 3.into()]);
/// b.rule(
///     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
///     [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
/// );
/// b.rule(
///     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
///     [
///         BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
///         BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
///     ],
/// );
/// let program = b.build()?;
/// let solution = Solver::new().solve(&program)?;
/// assert!(solution.contains("Path", &[1.into(), 3.into()]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Solver {
    pub(crate) config: SolverConfig,
    /// Test hook: makes every parallel worker panic outside the
    /// `catch_unwind`-guarded user code, simulating an internal solver bug.
    pub(crate) inject_worker_panic: bool,
}

/// The complete set of [`Solver`] knobs, constructible in one place.
///
/// The chained builder methods on [`Solver`] remain thin wrappers over
/// this struct; [`Solver::with_config`] validates a configuration built
/// up front (e.g. from command-line flags) and rejects nonsensical
/// combinations — currently `threads == 0` — *before* any solving
/// starts.
///
/// # Example
///
/// ```
/// use flix_core::{Solver, SolverConfig, Strategy};
///
/// let solver = Solver::with_config(SolverConfig {
///     strategy: Strategy::Naive,
///     threads: 4,
///     ..SolverConfig::default()
/// })
/// .expect("4 threads is a valid configuration");
/// assert_eq!(solver.config().threads, 4);
/// assert!(Solver::with_config(SolverConfig {
///     threads: 0,
///     ..SolverConfig::default()
/// })
/// .is_err());
/// ```
#[derive(Clone)]
pub struct SolverConfig {
    /// The evaluation strategy (default: [`Strategy::SemiNaive`]).
    pub strategy: Strategy,
    /// Worker threads per round; `1` (the default) is sequential. Must be
    /// at least 1 — [`Solver::with_config`] rejects `0`.
    pub threads: usize,
    /// Whether to build hash indexes (default `true`; `false` is the
    /// index-selection ablation forcing full scans on every join).
    pub use_indexes: bool,
    /// Whether to compile specialized join kernels per rule body (default
    /// `true`; `false` forces the generic tuple-at-a-time evaluator, the
    /// kernel ablation). Kernels change evaluation speed, never results:
    /// they derive the same tuples in the same order as the generic path.
    /// Provenance-recording solves always use the generic evaluator.
    pub use_kernels: bool,
    /// Bound on fixed-point rounds, a safety net against lattices of
    /// unbounded height (default: unlimited).
    pub max_rounds: Option<u64>,
    /// Whether to log derivation provenance for [`Solution::explain`]
    /// (default `false`; costs memory proportional to insertions).
    pub record_provenance: bool,
    /// The resource budget: deadline, fact/derivation limits,
    /// cancellation (default: unlimited).
    pub budget: Budget,
    /// A progress observer receiving round/rule/stratum/budget events
    /// (default: none; the event paths are skipped entirely).
    pub observer: Option<Arc<dyn Observer>>,
    /// Execution-span tracing: when set, the solve records hierarchical
    /// spans into bounded per-worker ring buffers and the resulting
    /// [`Solution::trace`] carries an [`ExecutionTrace`] (default: none;
    /// the recording paths collapse to a single branch).
    pub trace: Option<TraceConfig>,
    /// Lattice-ascent telemetry: when set, every lattice cell counts its
    /// joins and strict increases, [`Solution::ascent_report`] becomes
    /// available, and cells crossing
    /// [`AscentConfig::warn_height`] fire
    /// [`Observer::ascent_warning`] (default: none).
    pub ascent: Option<AscentConfig>,
}

impl Default for SolverConfig {
    /// The default configuration: semi-naïve, sequential, indexed, no
    /// round limit, unlimited budget, no provenance, no observer.
    fn default() -> SolverConfig {
        SolverConfig {
            strategy: Strategy::SemiNaive,
            threads: 1,
            use_indexes: true,
            use_kernels: true,
            max_rounds: None,
            record_provenance: false,
            budget: Budget::new(),
            observer: None,
            trace: None,
            ascent: None,
        }
    }
}

impl fmt::Debug for SolverConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverConfig")
            .field("strategy", &self.strategy)
            .field("threads", &self.threads)
            .field("use_indexes", &self.use_indexes)
            .field("use_kernels", &self.use_kernels)
            .field("max_rounds", &self.max_rounds)
            .field("record_provenance", &self.record_provenance)
            .field("budget", &self.budget)
            .field(
                "observer",
                &self.observer.as_ref().map(|_| "<dyn Observer>"),
            )
            .field("trace", &self.trace)
            .field("ascent", &self.ascent)
            .finish()
    }
}

/// An invalid [`SolverConfig`], rejected by [`Solver::with_config`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads` was 0: zero worker threads cannot make progress.
    ZeroThreads,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(
                f,
                "threads must be at least 1 (0 worker threads cannot make progress)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("config", &self.config)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration: semi-naïve,
    /// sequential, indexed, no round limit, unlimited budget.
    pub fn new() -> Solver {
        Solver {
            config: SolverConfig::default(),
            inject_worker_panic: false,
        }
    }

    /// Creates a solver from a fully built [`SolverConfig`], validating
    /// it: `threads == 0` is rejected with [`ConfigError::ZeroThreads`]
    /// instead of being silently clamped.
    pub fn with_config(config: SolverConfig) -> Result<Solver, ConfigError> {
        if config.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(Solver {
            config,
            inject_worker_panic: false,
        })
    }

    /// The solver's current configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Records derivation provenance: every database-changing insertion is
    /// logged with its rule and instantiated premises, and the resulting
    /// [`Solution::explain`] reconstructs derivation trees. Costs memory
    /// proportional to the number of insertions.
    pub fn record_provenance(mut self, record: bool) -> Solver {
        self.config.record_provenance = record;
        self
    }

    /// Selects the evaluation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Solver {
        self.config.strategy = strategy;
        self
    }

    /// Evaluates rules within each round on `threads` worker threads
    /// (`1` = sequential). Rule evaluations within a round are independent,
    /// so this changes wall-clock time but never the solution. `0` is
    /// clamped to `1`; use [`Solver::with_config`] to reject it instead.
    pub fn threads(mut self, threads: usize) -> Solver {
        self.config.threads = threads.max(1);
        self
    }

    /// Enables or disables hash-index construction (the index-selection
    /// ablation; disabling forces full scans on every join).
    pub fn use_indexes(mut self, use_indexes: bool) -> Solver {
        self.config.use_indexes = use_indexes;
        self
    }

    /// Enables or disables per-rule specialized join kernels (the kernel
    /// ablation; disabling forces the generic tuple-at-a-time evaluator).
    /// Either setting produces the same solution, statistics, and traces.
    pub fn kernels(mut self, use_kernels: bool) -> Solver {
        self.config.use_kernels = use_kernels;
        self
    }

    /// Bounds the number of fixed-point rounds, as a safety net against
    /// lattices of unbounded height.
    pub fn max_rounds(mut self, limit: u64) -> Solver {
        self.config.max_rounds = Some(limit);
        self
    }

    /// Attaches a resource [`Budget`] (deadline, fact/derivation limits,
    /// cancellation token). When a limit trips, [`Solver::solve`] returns
    /// [`SolveError::BudgetExceeded`] inside a [`SolveFailure`] carrying
    /// the partial solution.
    pub fn budget(mut self, budget: Budget) -> Solver {
        self.config.budget = budget;
        self
    }

    /// Attaches a progress [`Observer`] that receives round-started,
    /// rule-evaluated, stratum-converged, and budget-checked events during
    /// the solve. All callbacks fire on the thread driving the solve.
    /// With no observer attached (the default), the event paths are
    /// skipped entirely.
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Solver {
        self.config.observer = Some(observer);
        self
    }

    /// Enables execution-span tracing: the solve records solve → stratum
    /// → round → rule-eval spans (plus resume-seed and demand-rewrite
    /// phases) into bounded per-worker ring buffers, merged at solve end
    /// into [`Solution::trace`]. Export with
    /// [`ExecutionTrace::to_chrome_json`] or
    /// [`ExecutionTrace::to_folded`]. Disabled tracing (the default) adds
    /// no hot-path work.
    pub fn trace(mut self, config: TraceConfig) -> Solver {
        self.config.trace = Some(config);
        self
    }

    /// Enables lattice-ascent telemetry: per-cell join counts and
    /// ascending-chain heights, aggregated into
    /// [`Solution::ascent_report`], with optional non-fatal
    /// [`Observer::ascent_warning`]s when a cell crosses
    /// [`AscentConfig::warn_height`].
    pub fn ascent(mut self, config: AscentConfig) -> Solver {
        self.config.ascent = Some(config);
        self
    }

    /// Test hook: makes every parallel worker thread panic outside the
    /// guarded user-code paths, simulating an internal solver bug. Used
    /// by the fault-injection suite to pin that worker panics surface as
    /// a structured [`SolveError`] instead of aborting the process.
    /// Compiled only for the crate's own tests and under the
    /// `test-internals` feature, so it cannot be reached from downstream
    /// code.
    #[doc(hidden)]
    #[cfg(any(test, feature = "test-internals"))]
    pub fn inject_worker_panic_for_tests(mut self) -> Solver {
        self.inject_worker_panic = true;
        self
    }

    /// Computes the minimal model of `program`.
    ///
    /// # Errors
    ///
    /// On failure, returns a [`SolveFailure`] carrying the [`SolveError`]
    /// plus the partial [`Solution`] derived before the failure:
    ///
    /// - [`SolveError::Program`] if the program is not stratifiable;
    /// - [`SolveError::RoundLimitExceeded`] if a configured round limit is
    ///   hit before the fixed point;
    /// - [`SolveError::FunctionPanicked`] if a user-supplied function or
    ///   lattice operation panics (the panic is caught, not propagated);
    /// - [`SolveError::SafetyViolation`] if a runtime sentinel observes a
    ///   lattice-law violation;
    /// - [`SolveError::BudgetExceeded`] if the configured [`Budget`] runs
    ///   out.
    pub fn solve(&self, program: &Program) -> Result<Solution, Box<SolveFailure>> {
        let wall_start = Instant::now();
        let guard = Guard::new(&self.config.budget);
        let tracer = Tracer::new(self.config.trace.as_ref());
        let mut db = Database::for_program(program, self.config.use_indexes);
        if self.config.ascent.is_some() {
            db.enable_ascent();
        }
        let mut stats = SolveStats {
            per_rule: program
                .rules
                .iter()
                .enumerate()
                .map(|(i, r)| RuleStats {
                    rule: i,
                    head: program.decl(r.head_pred).name.to_string(),
                    ..RuleStats::default()
                })
                .collect(),
            ..SolveStats::default()
        };
        let mut events: Option<Vec<Event>> = self.config.record_provenance.then(Vec::new);

        let outcome = self.solve_inner(
            program,
            &guard,
            &mut db,
            FactSource::ProgramPlus(&[]),
            &mut stats,
            &mut events,
            &tracer,
        );

        stats.total_facts = db.total_facts() as u64;
        stats.wall_ns = wall_start.elapsed().as_nanos() as u64;
        tracer.record(0, SpanKind::Solve, 0);
        let trace = tracer.finish(rule_heads(program));
        if let Some(obs) = &self.config.observer {
            obs.solve_finished(&stats);
        }
        let solution = make_solution(program, db, stats.clone(), events, trace);
        match outcome {
            Ok(()) => Ok(solution),
            Err(mut error) => {
                // The stats snapshot embedded at the failure site predates
                // the final counter fold; refresh it.
                if let SolveError::RoundLimitExceeded { stats: s, .. }
                | SolveError::BudgetExceeded { stats: s, .. } = &mut error
                {
                    *s = stats.clone();
                }
                Err(Box::new(SolveFailure {
                    error,
                    partial: solution,
                    stats,
                }))
            }
        }
    }

    /// Runs the full from-scratch fixed point: loads the extensional
    /// store described by `base_facts`, then evaluates every stratum in
    /// order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_inner(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        base_facts: FactSource<'_>,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        let strata = stratify(program)?;
        let npreds = program.preds.len();

        // Load the extensional facts.
        let load_start = tracer.now_ns();
        let (own, extra_facts) = match base_facts {
            FactSource::ProgramPlus(extra) => (program.facts.as_slice(), extra),
            FactSource::Exact(store) => (&[][..], store),
        };
        let program_facts = own.iter().map(|(p, v)| (*p, v));
        let extra = extra_facts.iter().map(|(p, v)| (*p, v));
        for (pred, values) in program_facts.chain(extra) {
            match db.insert(pred, values.clone()) {
                Ok(InsertOutcome::Unchanged) => {}
                Ok(outcome) => {
                    stats.facts_inserted += 1;
                    if let InsertOutcome::LatIncrease(key, _) = &outcome {
                        self.check_ascent(program, db, pred, key);
                    }
                    if let Some(log) = events.as_mut() {
                        log.push(Event {
                            pred,
                            tuple: values.clone(),
                            source: Source::Fact,
                        });
                    }
                }
                Err(fault) => return Err(insert_fault_error(program, pred, None, fault)),
            }
        }
        tracer.record(0, SpanKind::LoadFacts, load_start);

        // Compile the specialized join kernels once per solve, after fact
        // loading (literals in rule bodies are interned here, so their
        // encodings stay canonical for the run). Provenance-recording
        // solves need instantiated premises and stay fully generic.
        let kernels = if self.config.use_kernels && !self.config.record_provenance {
            KernelSet::compile(program, db, self.config.ascent.is_none())
        } else {
            KernelSet::empty()
        };

        for (stratum, group) in strata.rule_groups.iter().enumerate() {
            stats.strata += 1;
            stats.per_stratum.push(StratumStats {
                stratum,
                rounds: 0,
                delta_sizes: Vec::new(),
            });
            let stratum_start = tracer.now_ns();
            let result = match self.config.strategy {
                Strategy::Naive => self.run_naive(
                    program, guard, db, &kernels, group, stratum, stats, events, None, tracer,
                ),
                Strategy::SemiNaive => self.run_semi_naive(
                    program, guard, db, &kernels, group, stratum, npreds, stats, events, tracer,
                ),
            };
            // Record the stratum span even when the stratum failed, so a
            // guarded failure still carries the partial trace.
            tracer.record(0, SpanKind::Stratum { stratum }, stratum_start);
            result?;
        }
        Ok(())
    }

    /// Fires a non-fatal [`AscentWarning`] when the cell at `pred`/`key`
    /// first crosses the configured chain-height threshold.
    pub(crate) fn check_ascent(
        &self,
        program: &Program,
        db: &mut Database,
        pred: PredId,
        key: &[Value],
    ) {
        let Some(threshold) = self.config.ascent.as_ref().and_then(|c| c.warn_height) else {
            return;
        };
        let Some(height) = db.ascent_crossed(pred, key, threshold) else {
            return;
        };
        if let Some(obs) = &self.config.observer {
            obs.ascent_warning(&AscentWarning {
                predicate: program.decl(pred).name.to_string(),
                key: key.to_vec(),
                height,
                threshold,
            });
        }
    }

    pub(crate) fn check_round(
        &self,
        guard: &Guard<'_>,
        db: &Database,
        stratum: usize,
        stats: &SolveStats,
    ) -> Result<(), SolveError> {
        if let Some(limit) = self.config.max_rounds {
            if stats.rounds >= limit {
                return Err(SolveError::RoundLimitExceeded {
                    limit,
                    stratum,
                    stats: stats.clone(),
                });
            }
        }
        let exceeded = guard.exceeded(stats.facts_derived, db.total_facts() as u64);
        if let Some(obs) = &self.config.observer {
            obs.budget_checked(stratum, exceeded.as_ref());
        }
        if let Some(kind) = exceeded {
            return Err(SolveError::BudgetExceeded {
                kind,
                stats: stats.clone(),
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_naive(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        kernels: &KernelSet,
        group: &[usize],
        stratum: usize,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        mut accumulate: Option<&mut Vec<Vec<Row>>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        let mut derived_buf: Vec<Derived> = Vec::new();
        loop {
            self.check_round(guard, db, stratum, stats)?;
            stats.rounds += 1;
            let round = stats.rounds;
            self.note_round_started(stats, stratum, round, db.total_facts() as u64);
            let round_start = tracer.now_ns();
            let tasks: Vec<Task> = group
                .iter()
                .map(|&r| Task {
                    rule: r,
                    variant: None,
                })
                .collect();
            // A labelled block so the round span is recorded on the error
            // paths too (partial traces on guarded failures).
            let outcome: Result<u64, SolveError> = 'round: {
                if let Err(error) = self.run_tasks(
                    program,
                    guard,
                    db,
                    kernels,
                    &tasks,
                    &[],
                    stats,
                    stratum,
                    round,
                    tracer,
                    &mut derived_buf,
                ) {
                    break 'round Err(error);
                }
                let mut changed = 0u64;
                let mut touched = TouchedCells::new();
                for mut d in derived_buf.drain(..) {
                    stats.facts_derived += 1;
                    match insert_derived(db, &mut d, events.is_some()) {
                        Ok(InsertOutcome::Unchanged) => {}
                        Ok(outcome) => {
                            if touched.first_change(&d, &outcome) {
                                stats.facts_inserted += 1;
                                stats.per_rule[d.rule].inserted += 1;
                                changed += 1;
                            }
                            if let InsertOutcome::LatIncrease(key, _) = &outcome {
                                self.check_ascent(program, db, d.pred, key);
                            }
                            if let Some(acc) = accumulate.as_deref_mut() {
                                accumulate_change(acc, d.pred, &outcome);
                            }
                            log_event(events, &d, outcome);
                        }
                        Err(fault) => {
                            break 'round Err(insert_fault_error(
                                program,
                                d.pred,
                                Some(d.rule),
                                fault,
                            ))
                        }
                    }
                }
                Ok(changed)
            };
            tracer.record(0, SpanKind::Round { stratum, round }, round_start);
            let changed = outcome?;
            if let Some(st) = stats.per_stratum.last_mut() {
                st.delta_sizes.push(changed);
            }
            if changed == 0 {
                self.note_stratum_converged(stats, stratum);
                return Ok(());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_semi_naive(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        kernels: &KernelSet,
        group: &[usize],
        stratum: usize,
        npreds: usize,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        // Seed round: one full (naïve) evaluation of the stratum's rules.
        self.check_round(guard, db, stratum, stats)?;
        stats.rounds += 1;
        let round = stats.rounds;
        self.note_round_started(stats, stratum, round, db.total_facts() as u64);
        let round_start = tracer.now_ns();
        let seed_tasks: Vec<Task> = group
            .iter()
            .map(|&r| Task {
                rule: r,
                variant: None,
            })
            .collect();
        let mut derived_buf: Vec<Derived> = Vec::new();
        let outcome: Result<Vec<Vec<Row>>, SolveError> = 'round: {
            if let Err(error) = self.run_tasks(
                program,
                guard,
                db,
                kernels,
                &seed_tasks,
                &[],
                stats,
                stratum,
                round,
                tracer,
                &mut derived_buf,
            ) {
                break 'round Err(error);
            }
            let mut delta: Vec<Vec<Row>> = vec![Vec::new(); npreds];
            let mut changed = 0u64;
            let mut touched = TouchedCells::new();
            for d in derived_buf.drain(..) {
                stats.facts_derived += 1;
                if let Err(error) = self.record_insert(
                    program,
                    db,
                    d,
                    &mut delta,
                    &mut touched,
                    &mut changed,
                    stats,
                    events,
                ) {
                    break 'round Err(error);
                }
            }
            if let Some(st) = stats.per_stratum.last_mut() {
                st.delta_sizes.push(changed);
            }
            Ok(delta)
        };
        tracer.record(0, SpanKind::Round { stratum, round }, round_start);
        let delta = outcome?;

        self.run_semi_naive_rounds(
            program, guard, db, kernels, group, stratum, npreds, stats, events, delta, None, tracer,
        )
    }

    /// The incremental rounds of §3.7, starting from an explicit `∆`.
    ///
    /// [`Solver::run_semi_naive`] enters here after its seed round; the
    /// warm-start path of [`crate::incremental`] enters directly, with
    /// `delta` holding the changed cells of a resumed solve (skipping the
    /// full seed evaluation entirely). When `accumulate` is set, every
    /// net database change is also appended there, so a resume can seed
    /// later strata with this stratum's output.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_semi_naive_rounds(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &mut Database,
        kernels: &KernelSet,
        group: &[usize],
        stratum: usize,
        npreds: usize,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
        mut delta: Vec<Vec<Row>>,
        mut accumulate: Option<&mut Vec<Vec<Row>>>,
        tracer: &Tracer,
    ) -> Result<(), SolveError> {
        let mut derived_buf: Vec<Derived> = Vec::new();
        while delta.iter().any(|d| !d.is_empty()) {
            self.check_round(guard, db, stratum, stats)?;
            stats.rounds += 1;
            let round = stats.rounds;
            self.note_round_started(stats, stratum, round, db.total_facts() as u64);
            let round_start = tracer.now_ns();
            let mut tasks = Vec::new();
            for &r in group {
                let rule = &program.rules[r];
                for (vi, (pred, _)) in rule.delta_variants.iter().enumerate() {
                    if !delta[pred.0 as usize].is_empty() {
                        tasks.push(Task {
                            rule: r,
                            variant: Some(vi),
                        });
                    }
                }
            }
            let outcome: Result<Vec<Vec<Row>>, SolveError> = 'round: {
                if let Err(error) = self.run_tasks(
                    program,
                    guard,
                    db,
                    kernels,
                    &tasks,
                    &delta,
                    stats,
                    stratum,
                    round,
                    tracer,
                    &mut derived_buf,
                ) {
                    break 'round Err(error);
                }
                let mut new_delta: Vec<Vec<Row>> = vec![Vec::new(); npreds];
                let mut changed = 0u64;
                let mut touched = TouchedCells::new();
                for d in derived_buf.drain(..) {
                    stats.facts_derived += 1;
                    if let Err(error) = self.record_insert(
                        program,
                        db,
                        d,
                        &mut new_delta,
                        &mut touched,
                        &mut changed,
                        stats,
                        events,
                    ) {
                        break 'round Err(error);
                    }
                }
                if let Some(st) = stats.per_stratum.last_mut() {
                    st.delta_sizes.push(changed);
                }
                Ok(new_delta)
            };
            tracer.record(0, SpanKind::Round { stratum, round }, round_start);
            let new_delta = outcome?;
            if let Some(acc) = accumulate.as_deref_mut() {
                for (pred, rows) in new_delta.iter().enumerate() {
                    acc[pred].extend(rows.iter().cloned());
                }
            }
            delta = new_delta;
        }
        self.note_stratum_converged(stats, stratum);
        Ok(())
    }

    /// Fires the round-started observer event and counts the round on the
    /// current stratum's profile entry.
    fn note_round_started(&self, stats: &mut SolveStats, stratum: usize, round: u64, facts: u64) {
        if let Some(st) = stats.per_stratum.last_mut() {
            st.rounds += 1;
        }
        if let Some(obs) = &self.config.observer {
            obs.round_started(stratum, round, facts);
        }
    }

    /// Fires the stratum-converged observer event.
    fn note_stratum_converged(&self, stats: &SolveStats, stratum: usize) {
        if let Some(obs) = &self.config.observer {
            let rounds = stats.per_stratum.last().map_or(0, |st| st.rounds);
            obs.stratum_converged(stratum, rounds);
        }
    }

    /// Folds one finished task's counters into the per-rule profile and
    /// the global totals, and fires the rule-evaluated observer event.
    fn note_task(&self, stats: &mut SolveStats, stratum: usize, round: u64, report: &TaskReport) {
        let r = &mut stats.per_rule[report.rule];
        r.evaluations += 1;
        r.derived += report.derived;
        r.probes += report.probes;
        r.scans += report.scans;
        r.eval_ns += report.eval_ns;
        stats.index_probes += report.probes;
        stats.scan_fallbacks += report.scans;
        // Suppressed derivations never reach the per-item counting in the
        // insert loops; credit them here so `facts_derived` matches the
        // generic evaluator.
        stats.facts_derived += report.suppressed;
        if let Some(obs) = &self.config.observer {
            obs.rule_evaluated(&RuleEvaluated {
                stratum,
                round,
                rule: report.rule,
                variant: report.variant,
                derived: report.derived,
                probes: report.probes,
                scans: report.scans,
                eval_ns: report.eval_ns,
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    /// Evaluates one round's tasks, appending their derivations to `out`
    /// — a caller-owned buffer reused across rounds, so the (often tens
    /// of megabytes of) derivation storage is allocated once per stratum
    /// instead of once per round.
    #[allow(clippy::too_many_arguments)]
    fn run_tasks(
        &self,
        program: &Program,
        guard: &Guard<'_>,
        db: &Database,
        kernels: &KernelSet,
        tasks: &[Task],
        delta: &[Vec<Row>],
        stats: &mut SolveStats,
        stratum: usize,
        round: u64,
        tracer: &Tracer,
        out: &mut Vec<Derived>,
    ) -> Result<(), SolveError> {
        out.clear();
        stats.rule_evaluations += tasks.len() as u64;
        if self.config.threads <= 1 || tasks.len() <= 1 {
            let eval_guard = guard.eval_guard();
            let mut ring = tracer.local_ring();
            let mut scratch = kernel::KernelScratch::new();
            let mut failure = None;
            for task in tasks {
                let mut span = TaskSpan {
                    tracer,
                    ring: &mut ring,
                    tid: 0,
                    stratum,
                    round,
                };
                match run_one_task(
                    program,
                    db,
                    kernels,
                    task,
                    delta,
                    self.config.record_provenance,
                    &eval_guard,
                    out,
                    &mut span,
                    &mut scratch,
                ) {
                    Ok(report) => self.note_task(stats, stratum, round, &report),
                    Err(error) => {
                        failure = Some(error);
                        break;
                    }
                }
            }
            // Merge even on failure, so the partial trace keeps the spans
            // recorded before the fault.
            tracer.merge(0, ring);
            return match failure {
                None => Ok(()),
                Some(error) => Err(error),
            };
        }
        // Parallel: rule evaluations within a round only read the database,
        // so they can proceed concurrently; outputs are merged afterwards
        // in chunk order, keeping insertion order (and therefore the
        // solution and the per-rule insertion credit) identical to the
        // sequential path. Each worker gets its own EvalGuard with the
        // poll period divided by the worker count, so the aggregate
        // deadline-check frequency matches the sequential path. A fault in
        // any worker fails the whole round.
        let chunk = tasks.len().div_ceil(self.config.threads);
        let provenance = self.config.record_provenance;
        let inject_panic = self.inject_worker_panic;
        let threads = self.config.threads;
        let mut joined: Vec<std::thread::Result<WorkerResult>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .chunks(chunk)
                .enumerate()
                .map(|(w, task_chunk)| {
                    // Track ids are stable worker *slots* (chunk index + 1;
                    // 0 is the coordinator), so a worker's spans land on
                    // the same Perfetto track every round even though the
                    // scoped threads themselves are re-spawned per round.
                    let tid = (w + 1) as u32;
                    scope.spawn(move || {
                        if inject_panic {
                            panic!("injected worker panic (test hook)");
                        }
                        let eval_guard = guard.eval_guard_scaled(threads);
                        let mut out = Vec::new();
                        let mut reports = Vec::with_capacity(task_chunk.len());
                        let mut ring = tracer.local_ring();
                        let mut scratch = kernel::KernelScratch::new();
                        let mut failure = None;
                        for task in task_chunk {
                            let mut span = TaskSpan {
                                tracer,
                                ring: &mut ring,
                                tid,
                                stratum,
                                round,
                            };
                            match run_one_task(
                                program,
                                db,
                                kernels,
                                task,
                                delta,
                                provenance,
                                &eval_guard,
                                &mut out,
                                &mut span,
                                &mut scratch,
                            ) {
                                Ok(report) => reports.push(report),
                                Err(error) => {
                                    failure = Some(error);
                                    break;
                                }
                            }
                        }
                        // Worker-local ring merges into the shared slot
                        // exactly once per round, off the evaluation path.
                        tracer.merge(tid, ring);
                        match failure {
                            None => Ok((out, reports)),
                            Some(error) => Err(error),
                        }
                    })
                })
                .collect();
            // Every handle must be joined — an unjoined panicked thread
            // would re-raise its panic when the scope exits, aborting the
            // process and losing the partial model. Result *draining*
            // stops at the first failure instead (see below).
            for h in handles {
                joined.push(h.join());
            }
        });
        let mut failure: Option<SolveError> = None;
        for result in joined {
            if failure.is_some() {
                // A worker already failed: drop the remaining chunks
                // rather than merging derivations past the fault.
                continue;
            }
            match result {
                Ok(Ok((chunk_out, reports))) => {
                    for report in &reports {
                        self.note_task(stats, stratum, round, report);
                    }
                    out.extend(chunk_out);
                }
                Ok(Err(error)) => failure = Some(error),
                // A panic that escaped the worker's guarded paths is an
                // internal solver bug; convert it into the structured
                // error instead of aborting the process, preserving the
                // PR-1 guarantee that failures return a partial model.
                Err(payload) => {
                    failure = Some(SolveError::FunctionPanicked {
                        predicate: "<internal>".to_string(),
                        rule: None,
                        function: "solver worker".to_string(),
                        payload: panic_payload(payload),
                    })
                }
            }
        }
        match failure {
            None => Ok(()),
            Some(error) => Err(error),
        }
    }
}

/// What one parallel worker returns: its derivations plus one
/// [`TaskReport`] per task it ran.
type WorkerResult = Result<(Vec<Derived>, Vec<TaskReport>), SolveError>;

/// Counters for one rule evaluation, reported back to the coordinating
/// thread (which owns the [`SolveStats`] and the [`Observer`]).
#[derive(Clone, Copy, Debug)]
struct TaskReport {
    rule: usize,
    variant: Option<usize>,
    /// All derivations of this evaluation, including kernel-suppressed
    /// ones — the same count the generic evaluator would report.
    derived: u64,
    /// The suppressed subset of `derived`: counted into `facts_derived`
    /// here because those tuples never reach the insert loop's counter.
    suppressed: u64,
    probes: u64,
    scans: u64,
    eval_ns: u64,
}

/// Where one task records its rule-eval span: the worker's local ring
/// (`None` when tracing is disabled) plus the coordinates the span needs.
struct TaskSpan<'a, 'b> {
    tracer: &'a Tracer,
    ring: &'b mut Option<Ring>,
    tid: u32,
    stratum: usize,
    round: u64,
}

/// Evaluates one task, converting an [`EvalFault`] into a [`SolveError`]
/// attributed to the task's rule. Returns the task's work counters (time,
/// derivations, probe/scan counts) for the per-rule profile.
#[allow(clippy::too_many_arguments)]
fn run_one_task(
    program: &Program,
    db: &Database,
    kernels: &KernelSet,
    task: &Task,
    delta: &[Vec<Row>],
    provenance: bool,
    eval_guard: &EvalGuard<'_>,
    out: &mut Vec<Derived>,
    span: &mut TaskSpan<'_, '_>,
    scratch: &mut kernel::KernelScratch,
) -> Result<TaskReport, SolveError> {
    eval_guard
        .check_now()
        .map_err(|kind| SolveError::BudgetExceeded {
            kind,
            stats: SolveStats::default(),
        })?;
    let before = out.len();
    let mut counters = EvalCounters::default();
    let start = Instant::now();
    let result = match kernels.plan(task.rule, task.variant) {
        Some(plan) => kernel::run_plan(
            program,
            db,
            plan,
            task.rule,
            delta,
            eval_guard,
            &mut counters,
            out,
            scratch,
        ),
        None => eval_rule_prov(
            program,
            db,
            task.rule,
            task.variant,
            delta,
            provenance,
            eval_guard,
            &mut counters,
            out,
        ),
    };
    let eval_ns = start.elapsed().as_nanos() as u64;
    if let Some(ring) = span.ring.as_mut() {
        // Reuses the timing this function already takes for the profile;
        // recorded before the error check so a faulting evaluation still
        // shows up in the partial trace.
        ring.push(TraceEvent {
            kind: SpanKind::RuleEval {
                stratum: span.stratum,
                round: span.round,
                rule: task.rule,
                variant: task.variant,
                derived: (out.len() - before) as u64 + counters.suppressed,
            },
            tid: span.tid,
            start_ns: span.tracer.at_ns(start),
            dur_ns: eval_ns,
        });
    }
    result.map_err(|fault| eval_fault_error(program, task.rule, fault))?;
    Ok(TaskReport {
        rule: task.rule,
        variant: task.variant,
        derived: (out.len() - before) as u64 + counters.suppressed,
        suppressed: counters.suppressed,
        probes: counters.probes,
        scans: counters.scans,
        eval_ns,
    })
}

/// Attributes an [`InsertFault`] (from [`Database::insert`]) to the
/// predicate and rule it happened under.
/// The extensional store a from-scratch run loads before the strata.
pub(crate) enum FactSource<'a> {
    /// The program's own facts plus extras: plain solves, and the resume
    /// fallback when the prior's extensional store is unknown (the extras
    /// are then the delta's insertions).
    ProgramPlus(&'a [(PredId, Vec<Value>)]),
    /// An explicit store replacing the program's facts entirely — the
    /// retraction paths of [`Solver::resume`](crate::incremental) solve
    /// from the updated store E′, where a retracted program fact must
    /// *not* be re-loaded.
    Exact(&'a [(PredId, Vec<Value>)]),
}

pub(crate) fn insert_fault_error(
    program: &Program,
    pred: PredId,
    rule: Option<usize>,
    fault: InsertFault,
) -> SolveError {
    let predicate = program.decl(pred).name.to_string();
    match fault {
        InsertFault::Panic(OpsPanic { function, payload }) => SolveError::FunctionPanicked {
            predicate,
            rule,
            function,
            payload,
        },
        InsertFault::Safety(violation) => SolveError::SafetyViolation {
            predicate,
            rule,
            violation,
        },
    }
}

/// Attributes an [`EvalFault`] (raised during rule-body evaluation) to the
/// rule's head predicate.
fn eval_fault_error(program: &Program, rule: usize, fault: EvalFault) -> SolveError {
    let predicate = program.decl(program.rules[rule].head_pred).name.to_string();
    match fault {
        EvalFault::Panic { function, payload } => SolveError::FunctionPanicked {
            predicate,
            rule: Some(rule),
            function,
            payload,
        },
        EvalFault::Safety(violation) => SolveError::SafetyViolation {
            predicate,
            rule: Some(rule),
            violation,
        },
        EvalFault::Budget(kind) => SolveError::BudgetExceeded {
            kind,
            stats: SolveStats::default(),
        },
    }
}

/// Assembles the queryable [`Solution`] from the (possibly partial)
/// database.
pub(crate) fn make_solution(
    program: &Program,
    db: impl Into<Arc<Database>>,
    stats: SolveStats,
    events: Option<Vec<Event>>,
    trace: Option<ExecutionTrace>,
) -> Solution {
    Solution {
        names: program
            .preds
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.to_string(), PredId(i as u32)))
            .collect(),
        kinds: program
            .preds
            .iter()
            .map(|d| matches!(d.kind, PredKind::Lattice(_)))
            .collect(),
        db: db.into(),
        stats,
        events_complete: events.is_some(),
        events,
        edb: Some(Arc::new(program.facts.clone())),
        trace,
    }
}

/// The head-predicate name of every rule, indexed by rule — the label
/// table an [`ExecutionTrace`] renders rule spans with.
pub(crate) fn rule_heads(program: &Program) -> Vec<String> {
    program
        .rules
        .iter()
        .map(|r| program.decl(r.head_pred).name.to_string())
        .collect()
}

/// One rule evaluation within a round: the full body (seed/naïve), or a
/// delta variant (delta atom first).
#[derive(Clone, Copy, Debug)]
struct Task {
    rule: usize,
    variant: Option<usize>,
}

/// One derived head tuple, optionally with instantiated premises.
#[derive(Clone, Debug)]
pub(crate) struct Derived {
    pub(crate) pred: PredId,
    pub(crate) payload: Payload,
    pub(crate) rule: usize,
    pub(crate) premises: Option<Vec<Premise>>,
}

/// Width of the inline encoded-key representation shared by the kernel's
/// shadow tables and the [`Payload::LatEnc`] fast path. Wider heads fall
/// back to materialized tuples.
pub(crate) const ENC_KEY: usize = 4;

/// The content of a [`Derived`] fact: a materialized head tuple, or — on
/// the kernel fast path — a lattice head kept in encoded form so the
/// insert loop can skip re-materializing and re-encoding the key columns.
#[derive(Clone, Debug)]
pub(crate) enum Payload {
    /// A fully materialized head tuple (lattice heads carry the cell
    /// value as the last column).
    Tuple(Vec<Value>),
    /// A lattice head whose key slots are canonical encodings against the
    /// database the kernel probed; only the cell value is materialized.
    LatEnc {
        /// Number of live slots in `key`.
        arity: u8,
        /// Row id of the target cell when the kernel resolved it
        /// ([`crate::kernel::NO_ID`] otherwise). Ids are append-only, so
        /// a resolved id is still the same cell at insert time; the
        /// insert skips the hash lookup and joins the cell directly.
        id: u32,
        /// Encoded key columns, zero-padded past `arity`.
        key: [u64; ENC_KEY],
        /// The candidate cell value.
        cell: Value,
    },
}

/// Feeds a derived fact into the database, consuming the payload unless
/// the event log will still need it (`keep_for_events`). Encoded lattice
/// payloads never need keeping: a database change is always a
/// `LatIncrease`, and [`log_event`] rebuilds the logged tuple from that
/// outcome.
fn insert_derived(
    db: &mut Database,
    d: &mut Derived,
    keep_for_events: bool,
) -> Result<InsertOutcome, InsertFault> {
    match &mut d.payload {
        Payload::Tuple(t) => {
            let tuple = if keep_for_events {
                t.clone()
            } else {
                std::mem::take(t)
            };
            db.insert(d.pred, tuple)
        }
        Payload::LatEnc {
            arity,
            id,
            key,
            cell,
        } => {
            let value = std::mem::replace(cell, Value::Unit);
            db.insert_lat_encoded(d.pred, &key[..*arity as usize], *id, value)
        }
    }
}

/// Lattice cells already credited with a net change in the current
/// round.
///
/// Within one round a lattice cell can climb through several
/// intermediate values, and *how many* strict increases it takes depends
/// on the order candidate values are merged — which differs between
/// naïve and semi-naïve evaluation. Counting only the first increase per
/// cell per round makes `facts_inserted`, the per-rule `inserted`
/// credit, and the per-round `delta_sizes` *net* quantities (distinct
/// facts changed between round boundaries), which are strategy-invariant
/// (see the "Strategy invariance" section on [`SolveStats`]). Relational
/// tuples change at most once ever, so only lattice increases are
/// tracked.
pub(crate) struct TouchedCells(crate::fxhash::FxHashSet<(PredId, Row)>);

impl TouchedCells {
    pub(crate) fn new() -> TouchedCells {
        TouchedCells(crate::fxhash::FxHashSet::default())
    }

    /// Returns `true` when `outcome` is the first net change of its fact
    /// in this round (always true for new relational rows).
    fn first_change(&mut self, d: &Derived, outcome: &InsertOutcome) -> bool {
        match outcome {
            InsertOutcome::LatIncrease(key, _) => self.0.insert((d.pred, key.clone())),
            _ => true,
        }
    }
}

impl Solver {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_insert(
        &self,
        program: &Program,
        db: &mut Database,
        mut d: Derived,
        delta: &mut [Vec<Row>],
        touched: &mut TouchedCells,
        changed: &mut u64,
        stats: &mut SolveStats,
        events: &mut Option<Vec<Event>>,
    ) -> Result<(), SolveError> {
        let pred = d.pred;
        match insert_derived(db, &mut d, events.is_some())
            .map_err(|fault| insert_fault_error(program, pred, Some(d.rule), fault))?
        {
            InsertOutcome::Unchanged => {}
            outcome => {
                if touched.first_change(&d, &outcome) {
                    stats.facts_inserted += 1;
                    stats.per_rule[d.rule].inserted += 1;
                    *changed += 1;
                }
                match &outcome {
                    InsertOutcome::NewRow(row) => {
                        delta[pred.0 as usize].push(row.clone());
                    }
                    InsertOutcome::LatIncrease(key, value) => {
                        self.check_ascent(program, db, pred, key);
                        // Delta rows carry the full tuple: key columns plus
                        // the *new* cell value (§3.7's ga(P', S)).
                        let mut full: Vec<Value> = key.to_vec();
                        full.push(value.clone());
                        delta[pred.0 as usize].push(full.into());
                    }
                    InsertOutcome::Unchanged => unreachable!("outer match excludes Unchanged"),
                }
                log_event(events, &d, outcome);
            }
        }
        Ok(())
    }
}

/// Appends one net database change to a per-predicate accumulator, in
/// the same row format [`record_insert`] uses for `∆` rows: the full
/// tuple, with a lattice increase carrying the new cell value.
pub(crate) fn accumulate_change(acc: &mut [Vec<Row>], pred: PredId, outcome: &InsertOutcome) {
    match outcome {
        InsertOutcome::NewRow(row) => acc[pred.0 as usize].push(row.clone()),
        InsertOutcome::LatIncrease(key, value) => {
            let mut full: Vec<Value> = key.to_vec();
            full.push(value.clone());
            acc[pred.0 as usize].push(full.into());
        }
        InsertOutcome::Unchanged => {}
    }
}

/// Appends a provenance event for a database-changing insertion.
fn log_event(events: &mut Option<Vec<Event>>, d: &Derived, outcome: InsertOutcome) {
    let Some(log) = events.as_mut() else {
        return;
    };
    // For lattice increases, log the *joined* cell value so explanations
    // show the state the database actually reached.
    let tuple = match outcome {
        InsertOutcome::LatIncrease(key, value) => {
            let mut full = key.to_vec();
            full.push(value);
            full
        }
        _ => match &d.payload {
            Payload::Tuple(t) => t.clone(),
            // A lattice insert that changed the database is always a
            // `LatIncrease`, handled above.
            Payload::LatEnc { .. } => unreachable!("lattice changes are logged from the outcome"),
        },
    };
    log.push(Event {
        pred: d.pred,
        tuple,
        source: Source::Rule {
            rule: d.rule,
            premises: d.premises.clone().unwrap_or_default(),
        },
    });
}

/// A fault raised while evaluating one rule body: a caught panic in user
/// code, a tripped safety sentinel, or a budget limit hit mid-evaluation.
#[derive(Clone, Debug)]
pub(crate) enum EvalFault {
    /// A user function or lattice operation panicked.
    Panic {
        /// The function that panicked.
        function: String,
        /// The rendered panic payload.
        payload: String,
    },
    /// A runtime sentinel tripped.
    Safety(Violation),
    /// A budget limit tripped during evaluation.
    Budget(BudgetKind),
}

impl From<OpsPanic> for EvalFault {
    fn from(p: OpsPanic) -> EvalFault {
        EvalFault::Panic {
            function: p.function,
            payload: p.payload,
        }
    }
}

/// Index-probe / scan-fallback counters for one rule evaluation. Local to
/// the evaluating thread (no shared atomics on the hot path); the solver
/// folds them into the per-rule profile after the task finishes.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EvalCounters {
    pub(crate) probes: u64,
    pub(crate) scans: u64,
    /// Derivations a kernel suppressed at emit time because the database
    /// already subsumed them (the insert loop would have dropped them as
    /// `Unchanged`). Counted back into `facts_derived` so the statistics
    /// match the generic evaluator exactly. Always 0 on the generic path.
    pub(crate) suppressed: u64,
}

/// Evaluates a rule by index, producing [`Derived`] records (with
/// premises when `provenance` is set). Probe/scan counts are accumulated
/// into `counters`, including on the error path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_rule_prov(
    program: &Program,
    db: &Database,
    rule_idx: usize,
    variant: Option<usize>,
    delta: &[Vec<Row>],
    provenance: bool,
    guard: &EvalGuard<'_>,
    counters: &mut EvalCounters,
    out: &mut Vec<Derived>,
) -> Result<(), EvalFault> {
    let raw = eval_rule_inner(
        program,
        db,
        &program.rules[rule_idx],
        variant,
        delta,
        provenance,
        guard,
        counters,
    )?;
    out.extend(raw.into_iter().map(|(pred, tuple, premises)| Derived {
        pred,
        payload: Payload::Tuple(tuple),
        rule: rule_idx,
        premises,
    }));
    Ok(())
}

/// The variable environment of one rule evaluation.
type Env = Vec<Option<Value>>;

/// Undo log of bindings performed while matching one body item.
type Trail = Vec<(usize, Option<Value>)>;

fn bind(env: &mut Env, trail: &mut Trail, slot: usize, value: Value) {
    trail.push((slot, env[slot].take()));
    env[slot] = Some(value);
}

fn unwind(env: &mut Env, trail: &mut Trail, mark: usize) {
    while trail.len() > mark {
        let (slot, old) = trail.pop().expect("trail length checked");
        env[slot] = old;
    }
}

/// Evaluates `rule` against `db` and appends every derived head tuple to
/// `out`. With `variant = Some(i)`, the i-th delta variant body is used:
/// its first atom is instantiated from `delta` instead of the full
/// database (§3.7's incremental evaluation step).
///
/// This is the unguarded entry point used by the model checker; it runs
/// with no budget and assumes total user functions.
///
/// # Panics
///
/// Re-raises (as a plain panic) any fault the guarded evaluator would
/// report structurally — the model checker has no partial result to
/// salvage.
pub(crate) fn eval_rule(
    program: &Program,
    db: &Database,
    rule: &CRule,
    variant: Option<usize>,
    delta: &[Vec<Row>],
    out: &mut Vec<(PredId, Vec<Value>)>,
) {
    let guard = EvalGuard::unlimited();
    let mut counters = EvalCounters::default();
    match eval_rule_inner(
        program,
        db,
        rule,
        variant,
        delta,
        false,
        &guard,
        &mut counters,
    ) {
        Ok(raw) => out.extend(raw.into_iter().map(|(pred, tuple, _)| (pred, tuple))),
        Err(EvalFault::Panic { function, payload }) => {
            panic!("function {function} panicked during model check: {payload}")
        }
        Err(EvalFault::Safety(v)) => panic!("lattice safety violation during model check: {v}"),
        Err(EvalFault::Budget(_)) => unreachable!("unlimited guard never trips"),
    }
}

/// A derived head tuple before insertion: target predicate, values, and
/// the rule premises when provenance recording is on.
type RawDerivation = (PredId, Vec<Value>, Option<Vec<Premise>>);

/// Per-evaluation mutable state: the output accumulator, the first fault
/// observed (evaluation short-circuits once set), the budget guard, and
/// the thread-local probe/scan counters.
struct EvalCx<'a> {
    guard: &'a EvalGuard<'a>,
    provenance: bool,
    out: Vec<RawDerivation>,
    fault: Option<EvalFault>,
    probes: u64,
    scans: u64,
}

impl EvalCx<'_> {
    fn fail(&mut self, fault: impl Into<EvalFault>) {
        if self.fault.is_none() {
            self.fault = Some(fault.into());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_rule_inner(
    program: &Program,
    db: &Database,
    rule: &CRule,
    variant: Option<usize>,
    delta: &[Vec<Row>],
    provenance: bool,
    guard: &EvalGuard<'_>,
    counters: &mut EvalCounters,
) -> Result<Vec<RawDerivation>, EvalFault> {
    let (body, delta_pos): (&[CItem], Option<usize>) = match variant {
        None => (&rule.body, None),
        Some(vi) => (&rule.delta_variants[vi].1, Some(0)),
    };
    let mut env: Env = vec![None; rule.num_vars];
    let mut trail: Trail = Vec::new();
    let mut cx = EvalCx {
        guard,
        provenance,
        out: Vec::new(),
        fault: None,
        probes: 0,
        scans: 0,
    };
    eval_body(
        program, db, rule, body, 0, delta_pos, delta, &mut env, &mut trail, &mut cx,
    );
    counters.probes += cx.probes;
    counters.scans += cx.scans;
    match cx.fault {
        None => Ok(cx.out),
        Some(fault) => Err(fault),
    }
}

/// Invokes a user-defined function body with panic isolation; on a caught
/// panic the fault is recorded in `cx` and `None` returned.
fn call_user_fn(
    program: &Program,
    func: usize,
    vals: &[Value],
    cx: &mut EvalCx<'_>,
) -> Option<Value> {
    let fdef = &program.funcs[func];
    match catch_unwind(AssertUnwindSafe(|| (fdef.body)(vals))) {
        Ok(v) => Some(v),
        Err(payload) => {
            cx.fail(EvalFault::Panic {
                function: fdef.name.to_string(),
                payload: panic_payload(payload),
            });
            None
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_body(
    program: &Program,
    db: &Database,
    rule: &CRule,
    body: &[CItem],
    item_idx: usize,
    delta_pos: Option<usize>,
    delta: &[Vec<Row>],
    env: &mut Env,
    trail: &mut Trail,
    cx: &mut EvalCx<'_>,
) {
    if cx.fault.is_some() {
        return;
    }
    if let Err(kind) = cx.guard.poll() {
        cx.fail(EvalFault::Budget(kind));
        return;
    }
    if item_idx == body.len() {
        derive_head(program, rule, body, env, cx);
        return;
    }
    match &body[item_idx] {
        CItem::Atom {
            pred,
            terms,
            index_cols,
        } => {
            let is_lat = program.decl(*pred).is_lattice();
            let ops = program.decl(*pred).lattice_ops();
            let visit = |row: &[Value], env: &mut Env, trail: &mut Trail, cx: &mut EvalCx<'_>| {
                if cx.fault.is_some() {
                    return;
                }
                let mark = trail.len();
                match match_tuple(terms, row, is_lat, ops, env, trail) {
                    Ok(true) => eval_body(
                        program,
                        db,
                        rule,
                        body,
                        item_idx + 1,
                        delta_pos,
                        delta,
                        env,
                        trail,
                        cx,
                    ),
                    Ok(false) => {}
                    Err(p) => cx.fail(p),
                }
                unwind(env, trail, mark);
            };
            if delta_pos == Some(item_idx) {
                for row in &delta[pred.0 as usize] {
                    visit(row, env, trail, cx);
                }
                return;
            }
            match db.pred(*pred) {
                PredData::Rel(rel) => {
                    // Fast path: a fully ground atom (every column a
                    // literal or bound variable, no wildcards) is a plain
                    // membership test — no index needed.
                    if index_cols.len() == terms.len() {
                        // A membership test, not an index probe: available
                        // even with indexes disabled.
                        if let Some(key) = probe_key(index_cols, terms, env) {
                            if rel.contains(&key, db.spill()) {
                                eval_body(
                                    program,
                                    db,
                                    rule,
                                    body,
                                    item_idx + 1,
                                    delta_pos,
                                    delta,
                                    env,
                                    trail,
                                    cx,
                                );
                            }
                            return;
                        }
                    }
                    if let Some(hits) = probe_key(index_cols, terms, env)
                        .and_then(|key| rel.probe(index_cols, &key, db.spill()))
                    {
                        cx.probes += 1;
                        for &i in hits {
                            visit(rel.row(i), env, trail, cx);
                        }
                    } else {
                        if !index_cols.is_empty() {
                            cx.scans += 1;
                        }
                        for row in rel.rows() {
                            visit(row, env, trail, cx);
                        }
                    }
                }
                PredData::Lat(lat) => {
                    // Fast path: all key columns ground.
                    if let Some(key) = ground_key(terms, env) {
                        if let Some(cell) = lat.value(&key, db.spill()) {
                            let mark = trail.len();
                            match match_lattice_value(
                                terms.last().expect("lattice arity >= 1"),
                                cell,
                                lat.ops(),
                                env,
                                trail,
                            ) {
                                Ok(true) => eval_body(
                                    program,
                                    db,
                                    rule,
                                    body,
                                    item_idx + 1,
                                    delta_pos,
                                    delta,
                                    env,
                                    trail,
                                    cx,
                                ),
                                Ok(false) => {}
                                Err(p) => cx.fail(p),
                            }
                            unwind(env, trail, mark);
                        }
                        return;
                    }
                    if let Some(hits) = probe_key(index_cols, terms, env)
                        .and_then(|key| lat.probe(index_cols, &key, db.spill()))
                    {
                        cx.probes += 1;
                        for &i in hits {
                            let key = lat.key(i);
                            let cell = lat.cell(i);
                            visit_lat(
                                key,
                                cell,
                                terms,
                                lat.ops(),
                                env,
                                trail,
                                cx,
                                |env, trail, cx| {
                                    eval_body(
                                        program,
                                        db,
                                        rule,
                                        body,
                                        item_idx + 1,
                                        delta_pos,
                                        delta,
                                        env,
                                        trail,
                                        cx,
                                    )
                                },
                            );
                        }
                    } else {
                        if !index_cols.is_empty() {
                            cx.scans += 1;
                        }
                        for (key, cell) in lat.iter() {
                            visit_lat(
                                key,
                                cell,
                                terms,
                                lat.ops(),
                                env,
                                trail,
                                cx,
                                |env, trail, cx| {
                                    eval_body(
                                        program,
                                        db,
                                        rule,
                                        body,
                                        item_idx + 1,
                                        delta_pos,
                                        delta,
                                        env,
                                        trail,
                                        cx,
                                    )
                                },
                            );
                        }
                    }
                }
            }
        }
        CItem::NegAtom { pred, terms } => match exists_match(program, db, *pred, terms, env) {
            Ok(false) => eval_body(
                program,
                db,
                rule,
                body,
                item_idx + 1,
                delta_pos,
                delta,
                env,
                trail,
                cx,
            ),
            Ok(true) => {}
            Err(p) => cx.fail(p),
        },
        CItem::Filter { func, args } => {
            let vals = eval_args(args, env);
            let Some(result) = call_user_fn(program, *func, &vals, cx) else {
                return;
            };
            match result {
                Value::Bool(true) => eval_body(
                    program,
                    db,
                    rule,
                    body,
                    item_idx + 1,
                    delta_pos,
                    delta,
                    env,
                    trail,
                    cx,
                ),
                Value::Bool(false) => {}
                other => cx.fail(EvalFault::Safety(Violation::FilterNotBoolean(vals, other))),
            }
        }
        CItem::Choose { func, args, binds } => {
            let vals = eval_args(args, env);
            let Some(result) = call_user_fn(program, *func, &vals, cx) else {
                return;
            };
            let Value::Set(elems) = &result else {
                cx.fail(EvalFault::Safety(Violation::ChoiceMalformed(
                    vals,
                    result.clone(),
                )));
                return;
            };
            for elem in elems.iter() {
                if cx.fault.is_some() {
                    return;
                }
                let mark = trail.len();
                let ok = if binds.len() == 1 {
                    bind(env, trail, binds[0], elem.clone());
                    true
                } else {
                    match elem.as_tuple() {
                        Some(items) if items.len() == binds.len() => {
                            for (slot, item) in binds.iter().zip(items) {
                                bind(env, trail, *slot, item.clone());
                            }
                            true
                        }
                        _ => {
                            cx.fail(EvalFault::Safety(Violation::ChoiceMalformed(
                                vals.clone(),
                                elem.clone(),
                            )));
                            false
                        }
                    }
                };
                if ok {
                    eval_body(
                        program,
                        db,
                        rule,
                        body,
                        item_idx + 1,
                        delta_pos,
                        delta,
                        env,
                        trail,
                        cx,
                    );
                }
                unwind(env, trail, mark);
            }
        }
    }
}

/// Matches a lattice (key, cell) pair against atom terms.
#[allow(clippy::too_many_arguments)]
fn visit_lat(
    key: &[Value],
    cell: &Value,
    terms: &[CTerm],
    ops: &crate::LatticeOps,
    env: &mut Env,
    trail: &mut Trail,
    cx: &mut EvalCx<'_>,
    mut next: impl FnMut(&mut Env, &mut Trail, &mut EvalCx<'_>),
) {
    if cx.fault.is_some() {
        return;
    }
    let mark = trail.len();
    let key_terms = &terms[..terms.len() - 1];
    let matched = match_tuple(key_terms, key, false, None, env, trail).and_then(|key_ok| {
        if !key_ok {
            return Ok(false);
        }
        match_lattice_value(terms.last().expect("arity >= 1"), cell, ops, env, trail)
    });
    match matched {
        Ok(true) => next(env, trail, cx),
        Ok(false) => {}
        Err(p) => cx.fail(p),
    }
    unwind(env, trail, mark);
}

/// Unifies atom terms against a stored tuple. For lattice atoms
/// (`is_lat`), the last term is matched with [`match_lattice_value`] and
/// the rest positionally. Fails when a lattice operation panics.
fn match_tuple(
    terms: &[CTerm],
    row: &[Value],
    is_lat: bool,
    ops: Option<&crate::LatticeOps>,
    env: &mut Env,
    trail: &mut Trail,
) -> Result<bool, OpsPanic> {
    debug_assert_eq!(terms.len(), row.len());
    let n = terms.len();
    for (i, (term, value)) in terms.iter().zip(row).enumerate() {
        if is_lat && i == n - 1 {
            let ops = ops.expect("lattice atoms carry ops");
            if !match_lattice_value(term, value, ops, env, trail)? {
                return Ok(false);
            }
            continue;
        }
        match term {
            CTerm::Wild => {}
            CTerm::Lit(l) => {
                if l != value {
                    return Ok(false);
                }
            }
            CTerm::Var(slot) => match &env[*slot] {
                Some(bound) => {
                    if bound != value {
                        return Ok(false);
                    }
                }
                None => bind(env, trail, *slot, value.clone()),
            },
        }
    }
    Ok(true)
}

/// Matches the value column of a lattice atom against a cell value.
///
/// This implements the ground-instance semantics of §3.2: the atom
/// `P(k̄, v)` is true when `v ⊑ cell(k̄)`. An unbound variable binds to the
/// cell value (the greatest witness); a variable already bound to `w`
/// rebinds to `w ⊓ cell` — the greatest element witnessing *both*
/// occurrences, per the paper's `R(x) :- A(x), B(x)` example, whose minimal
/// model holds `R(Odd ⊓ Even) = R(⊥)`. A `⊥` witness is dropped: every
/// head derived from it through strict functions is `⊥`, which the
/// database never stores.
fn match_lattice_value(
    term: &CTerm,
    cell: &Value,
    ops: &crate::LatticeOps,
    env: &mut Env,
    trail: &mut Trail,
) -> Result<bool, OpsPanic> {
    match term {
        CTerm::Wild => Ok(true),
        CTerm::Lit(l) => ops.try_leq(l, cell),
        CTerm::Var(slot) => match &env[*slot] {
            None => {
                bind(env, trail, *slot, cell.clone());
                Ok(true)
            }
            Some(bound) => {
                let met = ops.try_glb(bound, cell)?;
                if ops.is_bottom(&met) {
                    return Ok(false);
                }
                if met != *bound {
                    bind(env, trail, *slot, met);
                }
                Ok(true)
            }
        },
    }
}

/// Builds the probe key for an index lookup; `None` when some index column
/// is not ground (cannot happen for compiled `index_cols`, but kept
/// defensive) or when `index_cols` is empty.
fn probe_key(index_cols: &[usize], terms: &[CTerm], env: &Env) -> Option<Vec<Value>> {
    if index_cols.is_empty() {
        return None;
    }
    let mut key = Vec::with_capacity(index_cols.len());
    for &col in index_cols {
        match &terms[col] {
            CTerm::Lit(v) => key.push(v.clone()),
            CTerm::Var(slot) => key.push(env[*slot].clone()?),
            CTerm::Wild => return None,
        }
    }
    Some(key)
}

/// Returns the fully ground key of a lattice atom, if every key column is
/// a literal or bound variable.
fn ground_key(terms: &[CTerm], env: &Env) -> Option<Vec<Value>> {
    let key_terms = &terms[..terms.len() - 1];
    let mut key = Vec::with_capacity(key_terms.len());
    for t in key_terms {
        match t {
            CTerm::Lit(v) => key.push(v.clone()),
            CTerm::Var(slot) => key.push(env[*slot].clone()?),
            CTerm::Wild => return None,
        }
    }
    Some(key)
}

/// Existence check for negated atoms (all variables are ground by
/// validation; wildcards may remain).
fn exists_match(
    program: &Program,
    db: &Database,
    pred: PredId,
    terms: &[CTerm],
    env: &mut Env,
) -> Result<bool, OpsPanic> {
    let is_lat = program.decl(pred).is_lattice();
    let ops = program.decl(pred).lattice_ops();
    let mut trail: Trail = Vec::new();
    match db.pred(pred) {
        PredData::Rel(rel) => {
            for row in rel.rows() {
                let mark = trail.len();
                let matched = match_tuple(terms, row, false, None, env, &mut trail);
                unwind(env, &mut trail, mark);
                if matched? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        PredData::Lat(lat) => {
            if let Some(key) = ground_key(terms, env) {
                if let Some(cell) = lat.value(&key, db.spill()) {
                    let mark = trail.len();
                    let matched = match_lattice_value(
                        terms.last().expect("arity >= 1"),
                        cell,
                        ops.expect("lattice"),
                        env,
                        &mut trail,
                    );
                    unwind(env, &mut trail, mark);
                    return matched;
                }
                return Ok(false);
            }
            for (key, cell) in lat.iter() {
                let mark = trail.len();
                let matched =
                    match_tuple(terms, &full_row(key, cell), is_lat, ops, env, &mut trail);
                unwind(env, &mut trail, mark);
                if matched? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

fn full_row(key: &[Value], cell: &Value) -> Vec<Value> {
    let mut row = key.to_vec();
    row.push(cell.clone());
    row
}

fn eval_args(args: &[CTerm], env: &Env) -> Vec<Value> {
    args.iter()
        .map(|t| match t {
            CTerm::Lit(v) => v.clone(),
            CTerm::Var(slot) => env[*slot]
                .clone()
                .expect("validated: argument variables are bound"),
            CTerm::Wild => panic!("wildcard cannot be a function argument"),
        })
        .collect()
}

fn derive_head(program: &Program, rule: &CRule, body: &[CItem], env: &Env, cx: &mut EvalCx<'_>) {
    let mut tuple = Vec::with_capacity(rule.head.len());
    for h in &rule.head {
        match h {
            CHead::Lit(v) => tuple.push(v.clone()),
            CHead::Var(slot) => {
                tuple.push(env[*slot].clone().expect("validated: head variables bound"))
            }
            CHead::App(func, args) => {
                let vals = eval_args(args, env);
                let Some(v) = call_user_fn(program, *func, &vals, cx) else {
                    return;
                };
                tuple.push(v);
            }
        }
    }
    let premises = cx.provenance.then(|| {
        body.iter()
            .filter_map(|item| match item {
                CItem::Atom { pred, terms, .. } => Some(Premise {
                    pred: *pred,
                    pattern: terms
                        .iter()
                        .map(|t| match t {
                            CTerm::Lit(v) => Some(v.clone()),
                            CTerm::Var(slot) => env[*slot].clone(),
                            CTerm::Wild => None,
                        })
                        .collect(),
                }),
                _ => None,
            })
            .collect()
    });
    cx.out.push((rule.head_pred, tuple, premises));
}

/// The extensional store E a model is the least fixed point of: every
/// asserted relation tuple and lattice contribution, program facts
/// composed with absorbed deltas.
pub(crate) type ExtensionalStore = Arc<Vec<(PredId, Vec<Value>)>>;

/// The computed minimal model: the final fact database plus run statistics.
///
/// Query by predicate name; relations yield tuples, lattice predicates
/// yield `(key, element)` cells.
// Clone shares the database (it is behind an `Arc`), so cloning a
// solution is cheap even for large models; only the stats and any
// recorded provenance/trace are deep-copied.
#[derive(Clone, Debug)]
pub struct Solution {
    names: std::collections::HashMap<String, PredId>,
    kinds: Vec<bool>, // true = lattice
    // Shared, not owned: an empty-delta resume and a persistence
    // round-trip both hand back the same database without copying it.
    db: Arc<Database>,
    stats: SolveStats,
    events: Option<Vec<Event>>,
    // Whether `events` covers every insertion since the empty database —
    // the precondition for exact retraction handling in `resume`. False
    // when a recording resume extended a prior that had no log.
    events_complete: bool,
    // The extensional store E this model is the least fixed point of:
    // the program's facts composed with every delta absorbed by resumes.
    // `None` when unknown (solutions loaded from version-1 snapshots),
    // in which case retracting deltas are rejected.
    edb: Option<ExtensionalStore>,
    trace: Option<ExecutionTrace>,
}

impl Solution {
    /// Looks up a predicate id by name.
    pub fn predicate(&self, name: &str) -> Option<PredId> {
        self.names.get(name).copied()
    }

    /// Iterates the tuples of a relational predicate.
    ///
    /// Returns `None` for unknown names or lattice predicates.
    pub fn relation(&self, name: &str) -> Option<RelationIter<'_>> {
        let pred = self.predicate(name)?;
        match self.db.pred(pred) {
            PredData::Rel(rel) => Some(RelationIter { rows: rel.rows() }),
            PredData::Lat(_) => None,
        }
    }

    /// Iterates the `(key, element)` cells of a lattice predicate.
    ///
    /// Returns `None` for unknown names or relational predicates.
    pub fn lattice(&self, name: &str) -> Option<LatticeIter<'_>> {
        let pred = self.predicate(name)?;
        match self.db.pred(pred) {
            PredData::Lat(lat) => Some(LatticeIter {
                lat,
                ids: 0..lat.len() as u32,
            }),
            PredData::Rel(_) => None,
        }
    }

    /// Iterates every fact of a predicate, relational or lattice, as a
    /// uniform [`Fact`] view.
    ///
    /// This is the one enumeration that works regardless of predicate
    /// kind — model printing and the model-theory checker go through it.
    /// Returns `None` for unknown names.
    pub fn facts(&self, name: &str) -> Option<FactsIter<'_>> {
        let pred = self.predicate(name)?;
        let inner = match self.db.pred(pred) {
            PredData::Rel(rel) => FactsInner::Rel(RelationIter { rows: rel.rows() }),
            PredData::Lat(lat) => FactsInner::Lat(LatticeIter {
                lat,
                ids: 0..lat.len() as u32,
            }),
        };
        Some(FactsIter { inner })
    }

    /// The lattice element at `key`, or the lattice's `⊥` when the cell
    /// was never derived. Returns `None` for unknown or relational
    /// predicates.
    pub fn lattice_value(&self, name: &str, key: &[Value]) -> Option<Value> {
        let pred = self.predicate(name)?;
        match self.db.pred(pred) {
            PredData::Lat(lat) => Some(
                lat.value(key, self.db.spill())
                    .cloned()
                    .unwrap_or_else(|| lat.ops().bottom().clone()),
            ),
            PredData::Rel(_) => None,
        }
    }

    /// Returns `true` if the relational predicate contains the tuple.
    pub fn contains(&self, name: &str, row: &[Value]) -> bool {
        match self.predicate(name).map(|p| self.db.pred(p)) {
            Some(PredData::Rel(rel)) => rel.contains(row, self.db.spill()),
            _ => false,
        }
    }

    /// The number of facts stored for a predicate (tuples, or non-bottom
    /// cells for lattice predicates).
    pub fn len(&self, name: &str) -> Option<usize> {
        let pred = self.predicate(name)?;
        Some(self.db.len_of(pred))
    }

    /// Returns `true` if a predicate holds no facts.
    pub fn is_empty(&self, name: &str) -> Option<bool> {
        self.len(name).map(|n| n == 0)
    }

    /// Returns `true` if the named predicate is a lattice predicate.
    pub fn is_lattice(&self, name: &str) -> Option<bool> {
        self.predicate(name).map(|p| self.kinds[p.0 as usize])
    }

    /// Total facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.db.total_facts()
    }

    /// The run statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The provenance event log, if the solver ran with
    /// [`Solver::record_provenance`] — one entry per database-changing
    /// insertion, in insertion order.
    pub fn provenance(&self) -> Option<&[Event]> {
        self.events.as_deref()
    }

    /// The merged execution trace, if the solver ran with
    /// [`Solver::trace`]. Present on partial solutions from guarded
    /// failures too (the spans recorded before the fault).
    pub fn trace(&self) -> Option<&ExecutionTrace> {
        self.trace.as_ref()
    }

    /// Aggregates the per-cell ascent counters into an [`AscentReport`],
    /// if the solver ran with [`Solver::ascent`]. `top_k` bounds the
    /// hottest-cells list (by join count).
    pub fn ascent_report(&self, top_k: usize) -> Option<AscentReport> {
        if !self.db.ascent_enabled() {
            return None;
        }
        let mut by_pred: std::collections::HashMap<PredId, &str> = std::collections::HashMap::new();
        for (name, &pred) in &self.names {
            by_pred.insert(pred, name);
        }
        let cells = self.db.ascent_cells();
        let mut histogram: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut per_lattice: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        let mut max_height = 0u64;
        for (_, _, _, height, lattice) in &cells {
            *histogram.entry(*height).or_insert(0) += 1;
            let entry = per_lattice.entry((*lattice).to_string()).or_insert(0);
            *entry = (*entry).max(*height);
            max_height = max_height.max(*height);
        }
        let mut ranked: Vec<_> = cells.iter().collect();
        ranked.sort_by(|a, b| {
            b.2.cmp(&a.2) // joins, descending
                .then(b.3.cmp(&a.3)) // height, descending
                .then(a.0.cmp(&b.0)) // predicate id
                .then(a.1.cmp(&b.1)) // key, for determinism
        });
        let hottest = ranked
            .into_iter()
            .take(top_k)
            .map(|(pred, key, joins, height, _)| AscentCell {
                predicate: by_pred.get(pred).copied().unwrap_or("?").to_string(),
                key: format!(
                    "({})",
                    key.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                joins: *joins,
                height: *height,
            })
            .collect();
        Some(AscentReport {
            cells: cells.len() as u64,
            max_height,
            histogram: histogram.into_iter().collect(),
            hottest,
            per_lattice: per_lattice.into_iter().collect(),
        })
    }

    /// Reconstructs the derivation tree of a fact.
    ///
    /// For relational predicates, `row` is the full tuple; for lattice
    /// predicates, `row` may be the key columns alone (the explanation
    /// covers the last insertion that changed the cell) or the full tuple
    /// including a cell value (the explanation covers the last insertion
    /// at which the cell held exactly that value).
    ///
    /// Returns `None` when provenance was not recorded, the predicate is
    /// unknown, or no matching insertion exists. Premises blocked behind
    /// filters, negations, or choice bindings appear only through their
    /// positive atoms, per the provenance model documented in
    /// [`crate::provenance`].
    pub fn explain(&self, name: &str, row: &[Value]) -> Option<DerivationTree> {
        let events = self.events.as_deref()?;
        let pred = self.predicate(name)?;
        let is_lattice = self.kinds[pred.0 as usize];
        let idx = events.iter().rposition(|e| {
            e.pred == pred
                && if is_lattice {
                    if row.len() == e.tuple.len() {
                        e.tuple == row
                    } else {
                        row.len() + 1 == e.tuple.len() && e.tuple[..row.len()] == *row
                    }
                } else {
                    e.tuple == row
                }
        })?;
        Some(self.build_tree(events, idx))
    }

    fn build_tree(&self, events: &[Event], idx: usize) -> DerivationTree {
        let event = &events[idx];
        let name = self
            .names
            .iter()
            .find(|(_, &p)| p == event.pred)
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        let (rule, premises) = match &event.source {
            Source::Fact => (None, &[][..]),
            Source::Rule { rule, premises } => (Some(*rule), premises.as_slice()),
        };
        let children = premises
            .iter()
            .filter_map(|premise| {
                let is_lattice = self.kinds[premise.pred.0 as usize];
                // Resolve to the latest earlier event establishing the
                // premise; indices strictly decrease, so this terminates.
                events[..idx]
                    .iter()
                    .rposition(|e| {
                        e.pred == premise.pred
                            && if is_lattice {
                                key_matches(&premise.pattern, &e.tuple)
                            } else {
                                pattern_matches(&premise.pattern, &e.tuple)
                            }
                    })
                    .map(|j| self.build_tree(events, j))
            })
            .collect();
        DerivationTree {
            predicate: name,
            tuple: event.tuple.clone(),
            rule,
            children,
        }
    }

    pub(crate) fn database(&self) -> &Database {
        &self.db
    }

    /// The database behind this solution, shared. The empty-delta
    /// short-circuit in [`Solver::resume`](crate::incremental) returns a
    /// new [`Solution`] over the same allocation instead of cloning.
    pub(crate) fn database_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    pub(crate) fn events(&self) -> Option<&Vec<Event>> {
        self.events.as_ref()
    }

    /// The number of predicates this solution was solved over, used by
    /// [`crate::incremental`] to reject a prior solution whose program
    /// does not match the one being resumed.
    pub(crate) fn num_predicates(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the event log covers every insertion since the empty
    /// database (see the field). Meaningful only when `events` is some.
    pub(crate) fn events_complete(&self) -> bool {
        self.events_complete
    }

    pub(crate) fn set_events_complete(&mut self, complete: bool) {
        self.events_complete = complete;
    }

    /// The extensional store this model is the fixed point of, or `None`
    /// when unknown (version-1 snapshot loads).
    pub(crate) fn edb(&self) -> Option<&ExtensionalStore> {
        self.edb.as_ref()
    }

    pub(crate) fn set_edb(&mut self, edb: Option<ExtensionalStore>) {
        self.edb = edb;
    }

    /// A cheap, immutable, shareable read view of this solution's fact
    /// database — the handle a resident service publishes per epoch.
    ///
    /// # Cost model
    ///
    /// The fact data itself is **never copied**: the snapshot bumps the
    /// reference count on the `Arc`-shared database and copies only the
    /// predicate name table (one `String` + id per declared predicate,
    /// `O(#predicates)`, independent of fact count). Contrast with
    /// cloning the whole [`Solution`], which additionally deep-copies
    /// the run statistics, any recorded provenance event log (one entry
    /// per insertion — easily larger than the model itself), and any
    /// execution trace. Cloning the returned [`Snapshot`] is `O(1)`:
    /// two `Arc` bumps.
    ///
    /// The view is immutable: the solver never mutates a database behind
    /// a published [`Solution`] (updates build a new database and a new
    /// solution), so a snapshot taken before an update keeps observing
    /// the pre-update model — the snapshot-isolation primitive of the
    /// `flixd` service.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            names: Arc::new(self.names.clone()),
            kinds: Arc::new(self.kinds.clone()),
            db: Arc::clone(&self.db),
        }
    }
}

/// An immutable, cheaply cloneable read view of a solved model's facts,
/// produced by [`Solution::snapshot`].
///
/// Offers the read-only query surface of [`Solution`] (facts, membership,
/// lattice cells) without the statistics, provenance, or trace baggage —
/// see [`Solution::snapshot`] for the cost model. `Clone` is `O(1)`
/// (reference-count bumps only), and the type is `Send + Sync`, so many
/// reader threads can serve queries from one snapshot while a writer
/// computes the next fixed point.
#[derive(Clone, Debug)]
pub struct Snapshot {
    names: Arc<std::collections::HashMap<String, PredId>>,
    kinds: Arc<Vec<bool>>,
    db: Arc<Database>,
}

impl Snapshot {
    /// Looks up a predicate id by name.
    pub fn predicate(&self, name: &str) -> Option<PredId> {
        self.names.get(name).copied()
    }

    /// The declared predicate names, in declaration order.
    pub fn predicate_names(&self) -> Vec<&str> {
        let mut names: Vec<(&str, PredId)> =
            self.names.iter().map(|(n, &p)| (n.as_str(), p)).collect();
        names.sort_by_key(|(_, p)| p.0);
        names.into_iter().map(|(n, _)| n).collect()
    }

    /// Iterates every fact of a predicate, relational or lattice, as a
    /// uniform [`Fact`] view. Returns `None` for unknown names.
    pub fn facts(&self, name: &str) -> Option<FactsIter<'_>> {
        let pred = self.predicate(name)?;
        let inner = match self.db.pred(pred) {
            PredData::Rel(rel) => FactsInner::Rel(RelationIter { rows: rel.rows() }),
            PredData::Lat(lat) => FactsInner::Lat(LatticeIter {
                lat,
                ids: 0..lat.len() as u32,
            }),
        };
        Some(FactsIter { inner })
    }

    /// The lattice element at `key`, or `⊥` when the cell was never
    /// derived. Returns `None` for unknown or relational predicates.
    pub fn lattice_value(&self, name: &str, key: &[Value]) -> Option<Value> {
        let pred = self.predicate(name)?;
        match self.db.pred(pred) {
            PredData::Lat(lat) => Some(
                lat.value(key, self.db.spill())
                    .cloned()
                    .unwrap_or_else(|| lat.ops().bottom().clone()),
            ),
            PredData::Rel(_) => None,
        }
    }

    /// Returns `true` if the relational predicate contains the tuple.
    pub fn contains(&self, name: &str, row: &[Value]) -> bool {
        match self.predicate(name).map(|p| self.db.pred(p)) {
            Some(PredData::Rel(rel)) => rel.contains(row, self.db.spill()),
            _ => false,
        }
    }

    /// The number of facts stored for a predicate (tuples, or non-bottom
    /// cells for lattice predicates).
    pub fn len(&self, name: &str) -> Option<usize> {
        let pred = self.predicate(name)?;
        Some(self.db.len_of(pred))
    }

    /// Returns `true` if a predicate holds no facts.
    pub fn is_empty(&self, name: &str) -> Option<bool> {
        self.len(name).map(|n| n == 0)
    }

    /// Returns `true` if the named predicate is a lattice predicate.
    pub fn is_lattice(&self, name: &str) -> Option<bool> {
        self.predicate(name).map(|p| self.kinds[p.0 as usize])
    }

    /// Total facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.db.total_facts()
    }
}

// The service shares solutions and snapshots across reader and writer
// threads; losing either bound is an API break, caught at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Solution>();
    assert_send_sync::<Snapshot>();
};

/// Iterator over the tuples of a relational predicate, returned by
/// [`Solution::relation`]. Tuples come back in insertion order, which is
/// deterministic for a given program and solver configuration.
#[derive(Clone, Debug)]
pub struct RelationIter<'a> {
    rows: crate::database::RowsIter<'a>,
}

impl<'a> Iterator for RelationIter<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        self.rows.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.rows.size_hint()
    }
}

impl ExactSizeIterator for RelationIter<'_> {}

/// Iterator over the `(key, element)` cells of a lattice predicate,
/// returned by [`Solution::lattice`]. Cells come back in first-derived
/// key order; `⊥` cells are never stored, so never yielded.
#[derive(Clone, Debug)]
pub struct LatticeIter<'a> {
    lat: &'a crate::database::LatticeData,
    ids: std::ops::Range<u32>,
}

impl<'a> Iterator for LatticeIter<'a> {
    type Item = (&'a [Value], &'a Value);

    fn next(&mut self) -> Option<(&'a [Value], &'a Value)> {
        let id = self.ids.next()?;
        Some((self.lat.key(id), self.lat.cell(id)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl ExactSizeIterator for LatticeIter<'_> {}

/// One fact of a [`Solution`], as yielded by [`Solution::facts`]: either
/// a relational tuple or a lattice cell.
///
/// `Display` renders the comma-separated column list (key columns plus
/// the cell element for lattice facts), so `format!("{name}({fact})")`
/// reproduces the canonical `Pred(a, b, c)` form used by flixr.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fact<'a> {
    /// A relational tuple.
    Row(&'a [Value]),
    /// A lattice cell: the key columns and the cell's element.
    Cell(&'a [Value], &'a Value),
}

impl Fact<'_> {
    /// The key columns: the full tuple for relational facts, the key
    /// columns (without the element) for lattice cells.
    pub fn key(&self) -> &[Value] {
        match self {
            Fact::Row(row) => row,
            Fact::Cell(key, _) => key,
        }
    }

    /// The lattice element, for lattice cells.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Fact::Row(_) => None,
            Fact::Cell(_, value) => Some(value),
        }
    }
}

impl fmt::Display for Fact<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.key().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if let Some(value) = self.value() {
            if self.key().is_empty() {
                write!(f, "{value}")?;
            } else {
                write!(f, ", {value}")?;
            }
        }
        Ok(())
    }
}

/// Iterator over every fact of one predicate, returned by
/// [`Solution::facts`]; works uniformly for relations and lattices.
#[derive(Clone, Debug)]
pub struct FactsIter<'a> {
    inner: FactsInner<'a>,
}

#[derive(Clone, Debug)]
enum FactsInner<'a> {
    Rel(RelationIter<'a>),
    Lat(LatticeIter<'a>),
}

impl<'a> Iterator for FactsIter<'a> {
    type Item = Fact<'a>;

    fn next(&mut self) -> Option<Fact<'a>> {
        match &mut self.inner {
            FactsInner::Rel(rel) => rel.next().map(Fact::Row),
            FactsInner::Lat(lat) => lat.next().map(|(k, v)| Fact::Cell(k, v)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            FactsInner::Rel(rel) => rel.size_hint(),
            FactsInner::Lat(lat) => lat.size_hint(),
        }
    }
}

impl ExactSizeIterator for FactsIter<'_> {}
