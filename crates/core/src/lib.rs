//! The FLIX fixed-point engine: Datalog extended with lattices, monotone
//! transfer functions, and monotone filter functions.
//!
//! This crate is the primary contribution of the reproduced paper (Madsen,
//! Yee, Lhoták: *From Datalog to FLIX: A Declarative Language for Fixed
//! Points on Lattices*, PLDI 2016) as an embeddable Rust library:
//!
//! * [`Value`] — the dynamic value universe (ints, strings, booleans,
//!   tagged unions, tuples, sets);
//! * [`LatticeOps`] / [`ValueLattice`] — runtime lattice operations over
//!   values, bridging the statically typed lattices of
//!   [`flix_lattice`];
//! * [`ProgramBuilder`] — declare `rel` and `lat` predicates, register
//!   functions, add facts and rules (with head transfer functions, body
//!   filters, `<-` choice bindings, and stratified negation);
//! * [`Solver`] — naïve and semi-naïve evaluation (§3.7), optionally
//!   parallel and optionally index-free (for the ablation benchmarks),
//!   configured via [`SolverConfig`] or chained builder methods,
//!   producing a [`Solution`];
//! * [`incremental`] — monotone update deltas and [`Solver::resume`],
//!   warm-starting the semi-naïve fixed point from a prior model;
//! * [`demand`] — point queries and [`Solver::solve_query`], a
//!   magic-set-style rewrite restricting evaluation to the tuples and
//!   lattice cells a query demands;
//! * [`persist`] — crash-safe model persistence: checksummed snapshots,
//!   a write-ahead delta log, and [`Solver::recover`];
//! * [`model`] — the model-theoretic checker used to cross-validate
//!   solver output against the declarative semantics of §3.2.
//!
//! # Quickstart
//!
//! The shortest-paths program of §4.4 of the paper:
//!
//! ```
//! use flix_core::{
//!     BodyItem, Head, HeadTerm, LatticeOps, ProgramBuilder, Solver, Term, Value, ValueLattice,
//! };
//! use flix_lattice::MinCost;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let edge = b.relation("Edge", 3);
//! let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
//!
//! // Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
//! let extend = b.function("extend", |args| {
//!     let d = MinCost::expect_from(&args[0]);
//!     let c = args[1].as_int().expect("edge weight") as u64;
//!     d.add_weight(c).to_value()
//! });
//! b.fact(dist, vec![Value::from("a"), MinCost::finite(0).to_value()]);
//! b.fact(edge, vec!["a".into(), "b".into(), 4.into()]);
//! b.fact(edge, vec!["b".into(), "c".into(), 3.into()]);
//! b.fact(edge, vec!["a".into(), "c".into(), 9.into()]);
//! b.rule(
//!     Head::new(dist, [
//!         HeadTerm::var("y"),
//!         HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
//!     ]),
//!     [
//!         BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
//!         BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
//!     ],
//! );
//!
//! let solution = Solver::new().solve(&b.build()?)?;
//! assert_eq!(
//!     solution.lattice_value("Dist", &[Value::from("c")]),
//!     Some(MinCost::finite(7).to_value()),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod database;
pub mod demand;
mod fxhash;
mod guard;
pub mod incremental;
mod kernel;
pub mod model;
pub mod observe;
mod ops;
pub mod persist;
mod program;
pub mod provenance;
mod solver;
mod stratify;
pub mod symbol;
pub mod trace;
mod value;
pub mod verify;

pub use ast::{
    BodyItem, FuncId, Head, HeadTerm, PredDecl, PredId, PredKind, ProgramBuilder, ProgramError,
    Term,
};
pub use demand::{DemandError, Query, QueryResult};
pub use guard::{Budget, BudgetKind, CancelToken};
pub use incremental::{Delta, DeltaError, DeltaOp};
pub use observe::{
    render_metrics_json, render_profile_table, write_metrics_json, MetricsReport, Observer,
    OwnedMetricsReport, RuleEvaluated, RuleStats, StratumStats, METRICS_SCHEMA,
};
pub use ops::{LatticeOps, ValueLattice};
pub use persist::{
    load_snapshot, program_fingerprint, save_snapshot, DeltaLog, PersistError, RecoveryReport,
    WalRecovery,
};
pub use program::Program;
pub use solver::{
    ConfigError, Fact, FactsIter, LatticeIter, RelationIter, Snapshot, Solution, SolveError,
    SolveFailure, SolveStats, Solver, SolverConfig, Strategy,
};
pub use trace::{
    render_ascent_report, AscentCell, AscentConfig, AscentReport, AscentWarning, ExecutionTrace,
    SpanKind, TraceConfig, TraceEvent,
};
pub use value::Value;
