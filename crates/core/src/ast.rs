//! Program representation: predicates, terms, rules, and the builder.
//!
//! This module is the Rust rendering of the FLIX program grammar (§3.1,
//! Figure 3, extended per §3.2–§3.3): a program is a set of predicate
//! declarations (`rel` and `lat`), registered functions, facts, and rules
//! whose bodies may contain positive atoms, *stratified* negated atoms,
//! monotone filter applications, and `<-` choice bindings, and whose head
//! may apply a monotone transfer function in its last term.

use crate::{LatticeOps, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies a declared predicate within one [`Program`](crate::Program).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PredId(pub(crate) u32);

/// Identifies a registered function within one [`Program`](crate::Program).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FuncId(pub(crate) u32);

/// A term in a rule body atom: a variable, a literal value, or a wildcard.
///
/// Variables are rule-scoped and identified by name, as in the paper's
/// concrete syntax; [`ProgramBuilder::rule`] interns them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A named variable.
    Var(Arc<str>),
    /// A literal value.
    Lit(Value),
    /// The anonymous wildcard `_`, matching anything without binding.
    Wildcard,
}

impl Term {
    /// Creates a variable term.
    pub fn var(name: impl Into<Arc<str>>) -> Term {
        Term::Var(name.into())
    }

    /// Creates a literal term.
    pub fn lit(v: impl Into<Value>) -> Term {
        Term::Lit(v.into())
    }
}

impl<V: Into<Value>> From<V> for Term {
    fn from(v: V) -> Term {
        Term::Lit(v.into())
    }
}

/// A term in a rule head: a variable, a literal, or — in the last position
/// only — a transfer function application (§3.3: "we only allow non-filter
/// functions to appear in the last term of the head predicate of a rule").
#[derive(Clone, Debug)]
pub enum HeadTerm {
    /// A named variable (must be bound by the body).
    Var(Arc<str>),
    /// A literal value.
    Lit(Value),
    /// A transfer function applied to body-bound terms.
    App(FuncId, Vec<Term>),
}

impl HeadTerm {
    /// Creates a variable head term.
    pub fn var(name: impl Into<Arc<str>>) -> HeadTerm {
        HeadTerm::Var(name.into())
    }

    /// Creates a literal head term.
    pub fn lit(v: impl Into<Value>) -> HeadTerm {
        HeadTerm::Lit(v.into())
    }

    /// Creates a transfer-function application head term.
    pub fn app(func: FuncId, args: impl IntoIterator<Item = Term>) -> HeadTerm {
        HeadTerm::App(func, args.into_iter().collect())
    }
}

/// The head of a rule: a predicate applied to head terms.
#[derive(Clone, Debug)]
pub struct Head {
    pub(crate) pred: PredId,
    pub(crate) terms: Vec<HeadTerm>,
}

impl Head {
    /// Creates a rule head.
    pub fn new(pred: PredId, terms: impl IntoIterator<Item = HeadTerm>) -> Head {
        Head {
            pred,
            terms: terms.into_iter().collect(),
        }
    }
}

/// One item of a rule body.
#[derive(Clone, Debug)]
pub enum BodyItem {
    /// A positive atom `P(t1, ..., tn)`.
    Atom {
        /// The predicate.
        pred: PredId,
        /// The argument terms.
        terms: Vec<Term>,
    },
    /// A negated atom `!P(t1, ..., tn)` (requires stratification; every
    /// variable must be bound by an earlier positive item).
    NegAtom {
        /// The predicate.
        pred: PredId,
        /// The argument terms (all ground at evaluation time).
        terms: Vec<Term>,
    },
    /// A monotone filter application `f(t1, ..., tn)` (§3.3). The function
    /// must return a boolean [`Value`]; the body item succeeds when it
    /// returns `true`.
    Filter {
        /// The filter function.
        func: FuncId,
        /// The argument terms (bound by earlier items).
        args: Vec<Term>,
    },
    /// A choice binding `(x1, ..., xk) <- f(t1, ..., tn)`, as used by the
    /// IFDS and IDE rules of Figures 5 and 6 (`d3 <- eshIntra(n, d2)`).
    /// The function must return a set [`Value`]; the item succeeds once per
    /// element, binding the element (destructured as a tuple when `binds`
    /// names more than one variable).
    Choose {
        /// The set-returning function.
        func: FuncId,
        /// The argument terms (bound by earlier items).
        args: Vec<Term>,
        /// The variables bound by each element of the returned set.
        binds: Vec<Arc<str>>,
    },
}

impl BodyItem {
    /// Creates a positive atom.
    pub fn atom(pred: PredId, terms: impl IntoIterator<Item = Term>) -> BodyItem {
        BodyItem::Atom {
            pred,
            terms: terms.into_iter().collect(),
        }
    }

    /// Creates a negated atom.
    pub fn not(pred: PredId, terms: impl IntoIterator<Item = Term>) -> BodyItem {
        BodyItem::NegAtom {
            pred,
            terms: terms.into_iter().collect(),
        }
    }

    /// Creates a filter application.
    pub fn filter(func: FuncId, args: impl IntoIterator<Item = Term>) -> BodyItem {
        BodyItem::Filter {
            func,
            args: args.into_iter().collect(),
        }
    }

    /// Creates a choice binding of one variable.
    pub fn choose(
        func: FuncId,
        args: impl IntoIterator<Item = Term>,
        bind: impl Into<Arc<str>>,
    ) -> BodyItem {
        BodyItem::Choose {
            func,
            args: args.into_iter().collect(),
            binds: vec![bind.into()],
        }
    }

    /// Creates a choice binding destructuring each element as a tuple.
    pub fn choose_tuple(
        func: FuncId,
        args: impl IntoIterator<Item = Term>,
        binds: impl IntoIterator<Item = &'static str>,
    ) -> BodyItem {
        BodyItem::Choose {
            func,
            args: args.into_iter().collect(),
            binds: binds.into_iter().map(Arc::from).collect(),
        }
    }
}

/// How a predicate interprets its tuples.
#[derive(Clone, Debug)]
pub enum PredKind {
    /// A Datalog relation: a set of tuples.
    Relation,
    /// A FLIX lattice predicate: the first `arity - 1` columns are a key,
    /// the last column holds a lattice element, and the cells of §3.2 are
    /// the tuples sharing a key.
    Lattice(LatticeOps),
}

/// A predicate declaration.
#[derive(Clone, Debug)]
pub struct PredDecl {
    pub(crate) name: Arc<str>,
    pub(crate) arity: usize,
    pub(crate) kind: PredKind,
}

impl PredDecl {
    /// The predicate name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Returns the lattice operations for a `lat` predicate.
    pub fn lattice_ops(&self) -> Option<&LatticeOps> {
        match &self.kind {
            PredKind::Relation => None,
            PredKind::Lattice(ops) => Some(ops),
        }
    }

    /// Returns `true` for a `lat` predicate.
    pub fn is_lattice(&self) -> bool {
        matches!(self.kind, PredKind::Lattice(_))
    }
}

/// The shared closure type of registered functions.
pub(crate) type FuncBody = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A registered function (transfer, filter, or choice).
#[derive(Clone)]
pub(crate) struct FuncDef {
    pub(crate) name: Arc<str>,
    pub(crate) body: FuncBody,
}

impl fmt::Debug for FuncDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FuncDef({})", self.name)
    }
}

/// A rule before compilation.
#[derive(Clone, Debug)]
pub(crate) struct RawRule {
    pub(crate) head: Head,
    pub(crate) body: Vec<BodyItem>,
}

/// An error rejected by [`ProgramBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// An atom's term count does not match the predicate's declared arity.
    ArityMismatch {
        /// The predicate name.
        predicate: String,
        /// The declared arity.
        declared: usize,
        /// The arity found in the rule.
        found: usize,
    },
    /// A head variable is not bound by any positive body item.
    UnboundHeadVariable {
        /// The variable name.
        variable: String,
        /// The head predicate name.
        predicate: String,
    },
    /// A transfer-function application appears in a non-final head term.
    AppNotLast {
        /// The head predicate name.
        predicate: String,
    },
    /// A filter, choice, or negated atom uses a variable not bound by an
    /// earlier positive item.
    UnboundBodyVariable {
        /// The variable name.
        variable: String,
        /// The head predicate name of the offending rule.
        predicate: String,
    },
    /// The program cannot be stratified: a negation occurs in a recursive
    /// cycle (§3.5).
    NotStratifiable {
        /// A predicate on the offending cycle.
        predicate: String,
    },
    /// A fact's values do not match the predicate's arity.
    FactArityMismatch {
        /// The predicate name.
        predicate: String,
        /// The declared arity.
        declared: usize,
        /// The number of values supplied.
        found: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ProgramError::*;
        match self {
            ArityMismatch {
                predicate,
                declared,
                found,
            } => write!(
                f,
                "predicate {predicate} declared with arity {declared} but used with {found} terms"
            ),
            UnboundHeadVariable {
                variable,
                predicate,
            } => write!(
                f,
                "head variable {variable} of a {predicate} rule is not bound by the body"
            ),
            AppNotLast { predicate } => write!(
                f,
                "function application in a non-final head term of a {predicate} rule"
            ),
            UnboundBodyVariable {
                variable,
                predicate,
            } => write!(
                f,
                "variable {variable} in a {predicate} rule is used by a filter, choice, or \
                 negation before any positive atom binds it"
            ),
            NotStratifiable { predicate } => write!(
                f,
                "program is not stratifiable: predicate {predicate} occurs in a cycle through \
                 negation"
            ),
            FactArityMismatch {
                predicate,
                declared,
                found,
            } => write!(
                f,
                "fact for {predicate} supplies {found} values but the predicate has arity \
                 {declared}"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Builds a FLIX [`Program`](crate::Program): declare predicates and
/// functions, add facts
/// and rules, then [`build`](ProgramBuilder::build).
///
/// # Example
///
/// The transitive-closure program of §3.7 of the paper:
///
/// ```
/// use flix_core::{BodyItem, Head, HeadTerm, ProgramBuilder, Term};
///
/// # fn main() -> Result<(), flix_core::ProgramError> {
/// let mut b = ProgramBuilder::new();
/// let edge = b.relation("Edge", 2);
/// let path = b.relation("Path", 2);
///
/// b.fact(edge, vec![1.into(), 2.into()]);
/// b.fact(edge, vec![2.into(), 3.into()]);
///
/// // Path(x, y) :- Edge(x, y).
/// b.rule(
///     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("y")]),
///     [BodyItem::atom(edge, [Term::var("x"), Term::var("y")])],
/// );
/// // Path(x, z) :- Path(x, y), Edge(y, z).
/// b.rule(
///     Head::new(path, [HeadTerm::var("x"), HeadTerm::var("z")]),
///     [
///         BodyItem::atom(path, [Term::var("x"), Term::var("y")]),
///         BodyItem::atom(edge, [Term::var("y"), Term::var("z")]),
///     ],
/// );
///
/// let program = b.build()?;
/// assert_eq!(program.num_rules(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Default, Debug)]
pub struct ProgramBuilder {
    preds: Vec<PredDecl>,
    pred_names: HashMap<Arc<str>, PredId>,
    funcs: Vec<FuncDef>,
    rules: Vec<RawRule>,
    facts: Vec<(PredId, Vec<Value>)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declares a relation (`rel`) predicate.
    ///
    /// Redeclaring a name with the same arity and kind returns the
    /// existing id, which is what makes programs *compositional* (§3.4):
    /// the union of two programs sharing predicate declarations is formed
    /// by replaying both into one builder.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously declared with a different arity or
    /// as a lattice — a programming error, not recoverable input.
    pub fn relation(&mut self, name: impl Into<Arc<str>>, arity: usize) -> PredId {
        self.declare(name.into(), arity, PredKind::Relation)
    }

    /// Declares a lattice (`lat`) predicate whose last column holds
    /// elements of the given lattice.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously declared with a different arity or
    /// as a relation.
    pub fn lattice(&mut self, name: impl Into<Arc<str>>, arity: usize, ops: LatticeOps) -> PredId {
        self.declare(name.into(), arity, PredKind::Lattice(ops))
    }

    fn declare(&mut self, name: Arc<str>, arity: usize, kind: PredKind) -> PredId {
        if let Some(&id) = self.pred_names.get(&name) {
            let existing = &self.preds[id.0 as usize];
            let kind_matches = matches!(
                (&existing.kind, &kind),
                (PredKind::Relation, PredKind::Relation)
                    | (PredKind::Lattice(_), PredKind::Lattice(_))
            );
            assert!(
                existing.arity == arity && kind_matches,
                "predicate {name} redeclared with conflicting arity or kind"
            );
            return id;
        }
        let id = PredId(u32::try_from(self.preds.len()).expect("too many predicates"));
        self.pred_names.insert(name.clone(), id);
        self.preds.push(PredDecl { name, arity, kind });
        id
    }

    /// Registers a function usable as a transfer function (in heads), a
    /// filter (returning `Value::Bool`), or a choice source (returning
    /// `Value::Set`).
    pub fn function(
        &mut self,
        name: impl Into<Arc<str>>,
        body: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> FuncId {
        let id = FuncId(u32::try_from(self.funcs.len()).expect("too many functions"));
        self.funcs.push(FuncDef {
            name: name.into(),
            body: Arc::new(body),
        });
        id
    }

    /// Adds a ground fact.
    pub fn fact(&mut self, pred: PredId, values: Vec<Value>) {
        self.facts.push((pred, values));
    }

    /// Adds many ground facts for one predicate.
    pub fn facts<I>(&mut self, pred: PredId, rows: I)
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for row in rows {
            self.fact(pred, row);
        }
    }

    /// Adds a rule.
    pub fn rule(&mut self, head: Head, body: impl IntoIterator<Item = BodyItem>) {
        self.rules.push(RawRule {
            head,
            body: body.into_iter().collect(),
        });
    }

    /// Validates and compiles the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first violated
    /// well-formedness condition: arity mismatches, unbound head
    /// variables (range restriction), function applications outside the
    /// last head term, or unbound variables in filters, choices, and
    /// negated atoms. Stratifiability is checked later, by the solver,
    /// because it is a property of the whole rule set.
    pub fn build(self) -> Result<crate::Program, ProgramError> {
        crate::Program::from_parts(self.preds, self.funcs, self.rules, self.facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redeclaration_is_idempotent() {
        let mut b = ProgramBuilder::new();
        let p1 = b.relation("P", 2);
        let p2 = b.relation("P", 2);
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "conflicting arity")]
    fn conflicting_redeclaration_panics() {
        let mut b = ProgramBuilder::new();
        b.relation("P", 2);
        b.relation("P", 3);
    }

    #[test]
    fn term_conversions() {
        assert_eq!(Term::from(3), Term::Lit(Value::Int(3)));
        assert_eq!(Term::lit("x"), Term::Lit(Value::from("x")));
        assert_eq!(Term::var("x"), Term::Var("x".into()));
    }

    #[test]
    fn arity_mismatch_in_rule_is_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 2);
        let q = b.relation("Q", 1);
        b.rule(
            Head::new(q, [HeadTerm::var("x")]),
            [BodyItem::atom(p, [Term::var("x")])], // P used with arity 1
        );
        let err = b.build().expect_err("must reject");
        assert!(matches!(err, ProgramError::ArityMismatch { .. }));
    }

    #[test]
    fn unbound_head_variable_is_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 1);
        let q = b.relation("Q", 1);
        b.rule(
            Head::new(q, [HeadTerm::var("y")]),
            [BodyItem::atom(p, [Term::var("x")])],
        );
        let err = b.build().expect_err("must reject");
        assert!(matches!(err, ProgramError::UnboundHeadVariable { .. }));
    }

    #[test]
    fn fact_arity_is_checked() {
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 2);
        b.fact(p, vec![Value::Int(1)]);
        let err = b.build().expect_err("must reject");
        assert!(matches!(err, ProgramError::FactArityMismatch { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProgramError::ArityMismatch {
            predicate: "P".into(),
            declared: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity 2"));
    }
}
