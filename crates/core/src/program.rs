//! The compiled program: interned variables, validated rules, and the
//! index requirements derived from rule bodies.

use crate::ast::{BodyItem, FuncDef, HeadTerm, PredDecl, ProgramError, RawRule, Term};
use crate::{PredId, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A compiled body or head term: variables are slot indices.
#[derive(Clone, Debug)]
pub(crate) enum CTerm {
    Var(usize),
    Lit(Value),
    Wild,
}

/// A compiled head term.
#[derive(Clone, Debug)]
pub(crate) enum CHead {
    Var(usize),
    Lit(Value),
    App(usize, Vec<CTerm>),
}

/// A compiled body item.
#[derive(Clone, Debug)]
pub(crate) enum CItem {
    Atom {
        pred: PredId,
        terms: Vec<CTerm>,
        /// Columns usable for an index lookup: literal columns plus
        /// variable columns bound by earlier body items. For lattice
        /// predicates only key columns (all but the last) are included.
        index_cols: Vec<usize>,
    },
    NegAtom {
        pred: PredId,
        terms: Vec<CTerm>,
    },
    Filter {
        func: usize,
        args: Vec<CTerm>,
    },
    Choose {
        func: usize,
        args: Vec<CTerm>,
        binds: Vec<usize>,
    },
}

/// A compiled rule.
#[derive(Clone, Debug)]
pub(crate) struct CRule {
    pub(crate) head_pred: PredId,
    pub(crate) head: Vec<CHead>,
    pub(crate) body: Vec<CItem>,
    pub(crate) num_vars: usize,
    /// Variable names by slot; the demand rewrite uses them to decompile
    /// compiled rules back to surface syntax.
    pub(crate) var_names: Vec<Arc<str>>,
    /// Semi-naïve delta variants, one per positive body atom (§3.7: "the
    /// rule is evaluated as many times as there are atoms in its body").
    /// Each variant permutes the body so the delta atom comes *first*,
    /// driving the join from the (small) delta instead of re-scanning the
    /// full relations, with index columns recomputed for the new order.
    pub(crate) delta_variants: Vec<(PredId, Vec<CItem>)>,
}

/// A validated, compiled FLIX program, ready to be solved.
///
/// Produced by [`ProgramBuilder::build`](crate::ProgramBuilder::build);
/// consumed by [`Solver::solve`](crate::Solver::solve).
#[derive(Debug)]
pub struct Program {
    pub(crate) preds: Vec<PredDecl>,
    pub(crate) pred_names: HashMap<Arc<str>, PredId>,
    pub(crate) funcs: Vec<FuncDef>,
    pub(crate) rules: Vec<CRule>,
    pub(crate) facts: Vec<(PredId, Vec<Value>)>,
    /// Index requests: for each predicate, the distinct bound-column sets
    /// occurring in rule bodies (the index-selection strategy of DESIGN.md
    /// decision 4).
    pub(crate) index_requests: HashMap<PredId, HashSet<Vec<usize>>>,
}

impl Program {
    /// The number of declared predicates.
    pub fn num_predicates(&self) -> usize {
        self.preds.len()
    }

    /// The number of compiled rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// The number of ground facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Iterates the ground facts as `(predicate, tuple)` pairs, in
    /// declaration order. Lattice facts carry the element as the last
    /// column. This is how [`crate::incremental::Delta::from_facts`]
    /// turns a standalone update program into a delta.
    pub fn facts(&self) -> impl Iterator<Item = (PredId, &[Value])> {
        self.facts.iter().map(|(p, v)| (*p, v.as_slice()))
    }

    /// Looks up a predicate id by name.
    pub fn predicate(&self, name: &str) -> Option<PredId> {
        self.pred_names.get(name).copied()
    }

    /// The declaration of a predicate.
    pub fn decl(&self, pred: PredId) -> &PredDecl {
        &self.preds[pred.0 as usize]
    }

    /// Iterates all predicate declarations with their ids.
    pub fn predicates(&self) -> impl Iterator<Item = (PredId, &PredDecl)> {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, d)| (PredId(i as u32), d))
    }

    pub(crate) fn from_parts(
        preds: Vec<PredDecl>,
        funcs: Vec<FuncDef>,
        raw_rules: Vec<RawRule>,
        facts: Vec<(PredId, Vec<Value>)>,
    ) -> Result<Program, ProgramError> {
        let pred_names: HashMap<Arc<str>, PredId> = preds
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), PredId(i as u32)))
            .collect();

        for (pred, values) in &facts {
            let decl = &preds[pred.0 as usize];
            if values.len() != decl.arity {
                return Err(ProgramError::FactArityMismatch {
                    predicate: decl.name.to_string(),
                    declared: decl.arity,
                    found: values.len(),
                });
            }
        }

        let mut rules = Vec::with_capacity(raw_rules.len());
        let mut index_requests: HashMap<PredId, HashSet<Vec<usize>>> = HashMap::new();
        for raw in &raw_rules {
            rules.push(compile_rule(raw, &preds, &mut index_requests)?);
        }

        Ok(Program {
            preds,
            pred_names,
            funcs,
            rules,
            facts,
            index_requests,
        })
    }
}

/// Interns variable names to slots within one rule.
struct VarScope {
    names: Vec<Arc<str>>,
    slots: HashMap<Arc<str>, usize>,
}

impl VarScope {
    fn new() -> VarScope {
        VarScope {
            names: Vec::new(),
            slots: HashMap::new(),
        }
    }

    fn intern(&mut self, name: &Arc<str>) -> usize {
        if let Some(&slot) = self.slots.get(name) {
            return slot;
        }
        let slot = self.names.len();
        self.names.push(name.clone());
        self.slots.insert(name.clone(), slot);
        slot
    }
}

/// Orders body items so that filters, choices, and negated atoms run only
/// after the positive atoms that bind their variables, preserving the
/// relative order of the positive atoms.
///
/// The paper's own example (§3.7) writes
/// `R(x) :- isMaybeZero(x), A(x).` with the filter first; a rule is a
/// logical conjunction, so the engine is free to pick an evaluation order,
/// and this greedy schedule is the minimal "query planning" needed to
/// evaluate such rules left to right. Items whose variables never become
/// bound are appended in source order so validation reports them.
fn schedule_body(items: &[BodyItem]) -> Vec<&BodyItem> {
    fn term_vars<'a>(terms: &'a [Term], out: &mut Vec<&'a str>) {
        for t in terms {
            if let Term::Var(name) = t {
                out.push(name);
            }
        }
    }

    let mut scheduled: Vec<&BodyItem> = Vec::with_capacity(items.len());
    let mut pending: Vec<&BodyItem> = items.iter().collect();
    let mut bound: HashSet<&str> = HashSet::new();
    while !pending.is_empty() {
        let ready = pending.iter().position(|item| {
            let mut needed = Vec::new();
            match item {
                BodyItem::Atom { .. } => return true,
                BodyItem::NegAtom { terms, .. } => term_vars(terms, &mut needed),
                BodyItem::Filter { args, .. } | BodyItem::Choose { args, .. } => {
                    term_vars(args, &mut needed)
                }
            }
            needed.iter().all(|v| bound.contains(v))
        });
        let Some(i) = ready else {
            // No progress possible: emit the rest as-is so that
            // compilation reports the first genuinely unbound variable.
            scheduled.extend(pending);
            break;
        };
        let item = pending.remove(i);
        match item {
            BodyItem::Atom { terms, .. } => {
                let mut vars = Vec::new();
                term_vars(terms, &mut vars);
                bound.extend(vars);
            }
            BodyItem::Choose { binds, .. } => {
                bound.extend(binds.iter().map(|b| &**b));
            }
            BodyItem::NegAtom { .. } | BodyItem::Filter { .. } => {}
        }
        scheduled.push(item);
    }
    scheduled
}

fn compile_rule(
    raw: &RawRule,
    preds: &[PredDecl],
    index_requests: &mut HashMap<PredId, HashSet<Vec<usize>>>,
) -> Result<CRule, ProgramError> {
    let head_decl = &preds[raw.head.pred.0 as usize];
    let head_name = head_decl.name.to_string();
    if raw.head.terms.len() != head_decl.arity {
        return Err(ProgramError::ArityMismatch {
            predicate: head_name,
            declared: head_decl.arity,
            found: raw.head.terms.len(),
        });
    }

    let mut scope = VarScope::new();
    // `bound[slot]` tracks whether a positive item has bound the slot,
    // processing the body left to right.
    let mut bound: Vec<bool> = Vec::new();

    let intern_term = |scope: &mut VarScope, bound: &mut Vec<bool>, t: &Term| match t {
        Term::Var(name) => {
            let slot = scope.intern(name);
            if slot >= bound.len() {
                bound.push(false);
            }
            CTerm::Var(slot)
        }
        Term::Lit(v) => CTerm::Lit(v.clone()),
        Term::Wildcard => CTerm::Wild,
    };

    let ordered_body = schedule_body(&raw.body);
    let mut body = Vec::with_capacity(ordered_body.len());
    let mut atom_positions = Vec::new();
    for (pos, item) in ordered_body.iter().copied().enumerate() {
        match item {
            BodyItem::Atom { pred, terms } => {
                let decl = &preds[pred.0 as usize];
                if terms.len() != decl.arity {
                    return Err(ProgramError::ArityMismatch {
                        predicate: decl.name.to_string(),
                        declared: decl.arity,
                        found: terms.len(),
                    });
                }
                let cterms: Vec<CTerm> = terms
                    .iter()
                    .map(|t| intern_term(&mut scope, &mut bound, t))
                    .collect();
                // Index columns: literals plus already-bound variables.
                // For lattice predicates the value column is excluded.
                let indexable_cols = if decl.is_lattice() {
                    decl.arity - 1
                } else {
                    decl.arity
                };
                let mut index_cols = Vec::new();
                for (col, t) in cterms.iter().enumerate().take(indexable_cols) {
                    match t {
                        CTerm::Lit(_) => index_cols.push(col),
                        CTerm::Var(slot) if bound[*slot] => index_cols.push(col),
                        _ => {}
                    }
                }
                if !index_cols.is_empty() && index_cols.len() < indexable_cols {
                    index_requests
                        .entry(*pred)
                        .or_default()
                        .insert(index_cols.clone());
                }
                // After matching, every variable of the atom is bound.
                for t in &cterms {
                    if let CTerm::Var(slot) = t {
                        bound[*slot] = true;
                    }
                }
                atom_positions.push(pos);
                body.push(CItem::Atom {
                    pred: *pred,
                    terms: cterms,
                    index_cols,
                });
            }
            BodyItem::NegAtom { pred, terms } => {
                let decl = &preds[pred.0 as usize];
                if terms.len() != decl.arity {
                    return Err(ProgramError::ArityMismatch {
                        predicate: decl.name.to_string(),
                        declared: decl.arity,
                        found: terms.len(),
                    });
                }
                let cterms: Vec<CTerm> = terms
                    .iter()
                    .map(|t| intern_term(&mut scope, &mut bound, t))
                    .collect();
                // Safety: every variable must already be bound.
                for (t, raw_t) in cterms.iter().zip(terms) {
                    if let (CTerm::Var(slot), Term::Var(name)) = (t, raw_t) {
                        if !bound[*slot] {
                            return Err(ProgramError::UnboundBodyVariable {
                                variable: name.to_string(),
                                predicate: head_name,
                            });
                        }
                    }
                }
                body.push(CItem::NegAtom {
                    pred: *pred,
                    terms: cterms,
                });
            }
            BodyItem::Filter { func, args } => {
                let cargs: Vec<CTerm> = args
                    .iter()
                    .map(|t| intern_term(&mut scope, &mut bound, t))
                    .collect();
                for (t, raw_t) in cargs.iter().zip(args) {
                    if let (CTerm::Var(slot), Term::Var(name)) = (t, raw_t) {
                        if !bound[*slot] {
                            return Err(ProgramError::UnboundBodyVariable {
                                variable: name.to_string(),
                                predicate: head_name,
                            });
                        }
                    }
                }
                body.push(CItem::Filter {
                    func: func.0 as usize,
                    args: cargs,
                });
            }
            BodyItem::Choose { func, args, binds } => {
                let cargs: Vec<CTerm> = args
                    .iter()
                    .map(|t| intern_term(&mut scope, &mut bound, t))
                    .collect();
                for (t, raw_t) in cargs.iter().zip(args) {
                    if let (CTerm::Var(slot), Term::Var(name)) = (t, raw_t) {
                        if !bound[*slot] {
                            return Err(ProgramError::UnboundBodyVariable {
                                variable: name.to_string(),
                                predicate: head_name,
                            });
                        }
                    }
                }
                let bind_slots: Vec<usize> = binds
                    .iter()
                    .map(|name| {
                        let slot = scope.intern(name);
                        if slot >= bound.len() {
                            bound.push(false);
                        }
                        bound[slot] = true;
                        slot
                    })
                    .collect();
                body.push(CItem::Choose {
                    func: func.0 as usize,
                    args: cargs,
                    binds: bind_slots,
                });
            }
        }
    }

    // Compile the head; check range restriction and app placement.
    let mut head = Vec::with_capacity(raw.head.terms.len());
    let last = raw.head.terms.len().saturating_sub(1);
    for (i, t) in raw.head.terms.iter().enumerate() {
        match t {
            HeadTerm::Var(name) => {
                let slot = scope.intern(name);
                if slot >= bound.len() {
                    bound.push(false);
                }
                if !bound[slot] {
                    return Err(ProgramError::UnboundHeadVariable {
                        variable: name.to_string(),
                        predicate: head_name,
                    });
                }
                head.push(CHead::Var(slot));
            }
            HeadTerm::Lit(v) => head.push(CHead::Lit(v.clone())),
            HeadTerm::App(func, args) => {
                if i != last {
                    return Err(ProgramError::AppNotLast {
                        predicate: head_name,
                    });
                }
                let mut cargs = Vec::with_capacity(args.len());
                for arg in args {
                    let ct = intern_term(&mut scope, &mut bound, arg);
                    if let (CTerm::Var(slot), Term::Var(name)) = (&ct, arg) {
                        if !bound[*slot] {
                            return Err(ProgramError::UnboundHeadVariable {
                                variable: name.to_string(),
                                predicate: head_name,
                            });
                        }
                    }
                    cargs.push(ct);
                }
                head.push(CHead::App(func.0 as usize, cargs));
            }
        }
    }

    // Build the delta variants: move each positive atom to the front,
    // greedily order the rest by join connectivity, and recompute the
    // index columns for the new order.
    let mut delta_variants = Vec::with_capacity(atom_positions.len());
    for &pos in &atom_positions {
        let CItem::Atom { pred, .. } = &body[pos] else {
            unreachable!("atom_positions only indexes atoms")
        };
        let pred = *pred;
        let mut permuted = order_for_delta(&body, pos);
        recompute_index_cols(&mut permuted, preds, index_requests);
        delta_variants.push((pred, permuted));
    }

    Ok(CRule {
        head_pred: raw.head.pred,
        head,
        body,
        num_vars: scope.names.len(),
        var_names: scope.names,
        delta_variants,
    })
}

/// Orders a rule body for delta evaluation: the delta atom first, then a
/// greedy join order — ready filters and negations as soon as their
/// variables are bound, then the atom sharing the most bound columns
/// (avoiding accidental cross products), then ready choice bindings, and
/// only as a last resort an unconnected atom.
fn order_for_delta(body: &[CItem], delta_idx: usize) -> Vec<CItem> {
    fn item_vars(item: &CItem, out: &mut Vec<usize>) {
        let terms = match item {
            CItem::Atom { terms, .. } | CItem::NegAtom { terms, .. } => terms,
            CItem::Filter { args, .. } | CItem::Choose { args, .. } => args,
        };
        for t in terms {
            if let CTerm::Var(slot) = t {
                out.push(*slot);
            }
        }
    }

    let mut out = Vec::with_capacity(body.len());
    let mut bound: HashSet<usize> = HashSet::new();
    let push = |item: &CItem, out: &mut Vec<CItem>, bound: &mut HashSet<usize>| {
        match item {
            CItem::Atom { terms, .. } => {
                for t in terms {
                    if let CTerm::Var(slot) = t {
                        bound.insert(*slot);
                    }
                }
            }
            CItem::Choose { binds, .. } => bound.extend(binds.iter().copied()),
            CItem::NegAtom { .. } | CItem::Filter { .. } => {}
        }
        out.push(item.clone());
    };
    push(&body[delta_idx], &mut out, &mut bound);

    let mut remaining: Vec<usize> = (0..body.len()).filter(|&i| i != delta_idx).collect();
    while !remaining.is_empty() {
        // 1. Pure tests whose variables are all bound.
        if let Some(k) = remaining.iter().position(|&i| {
            matches!(body[i], CItem::NegAtom { .. } | CItem::Filter { .. }) && {
                let mut vars = Vec::new();
                item_vars(&body[i], &mut vars);
                vars.iter().all(|v| bound.contains(v))
            }
        }) {
            push(&body[remaining.remove(k)], &mut out, &mut bound);
            continue;
        }
        // 2. The atom with the most bound columns (literals count).
        let best = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &i)| matches!(body[i], CItem::Atom { .. }))
            .map(|(k, &i)| {
                let CItem::Atom { terms, .. } = &body[i] else {
                    unreachable!("filtered to atoms")
                };
                let score = terms
                    .iter()
                    .filter(|t| match t {
                        CTerm::Lit(_) => true,
                        CTerm::Var(slot) => bound.contains(slot),
                        CTerm::Wild => false,
                    })
                    .count();
                (k, score)
            })
            .max_by_key(|&(k, score)| (score, std::cmp::Reverse(k)));
        if let Some((k, score)) = best {
            if score > 0 {
                push(&body[remaining.remove(k)], &mut out, &mut bound);
                continue;
            }
        }
        // 3. A choice binding whose arguments are bound.
        if let Some(k) = remaining.iter().position(|&i| {
            matches!(body[i], CItem::Choose { .. }) && {
                let mut vars = Vec::new();
                item_vars(&body[i], &mut vars);
                vars.iter().all(|v| bound.contains(v))
            }
        }) {
            push(&body[remaining.remove(k)], &mut out, &mut bound);
            continue;
        }
        // 4. Unconnected atom: unavoidable cross product; take the first.
        let k = remaining
            .iter()
            .position(|&i| matches!(body[i], CItem::Atom { .. }))
            .unwrap_or(0);
        push(&body[remaining.remove(k)], &mut out, &mut bound);
    }
    out
}

/// Recomputes the index columns of every atom in `items` for their
/// current order, registering the needed indexes.
fn recompute_index_cols(
    items: &mut [CItem],
    preds: &[PredDecl],
    index_requests: &mut HashMap<PredId, HashSet<Vec<usize>>>,
) {
    let mut bound: HashSet<usize> = HashSet::new();
    for item in items {
        match item {
            CItem::Atom {
                pred,
                terms,
                index_cols,
            } => {
                let decl = &preds[pred.0 as usize];
                let indexable = if decl.is_lattice() {
                    decl.arity - 1
                } else {
                    decl.arity
                };
                index_cols.clear();
                for (col, t) in terms.iter().enumerate().take(indexable) {
                    match t {
                        CTerm::Lit(_) => index_cols.push(col),
                        CTerm::Var(slot) if bound.contains(slot) => index_cols.push(col),
                        _ => {}
                    }
                }
                if !index_cols.is_empty() && index_cols.len() < indexable {
                    index_requests
                        .entry(*pred)
                        .or_default()
                        .insert(index_cols.clone());
                }
                for t in terms.iter() {
                    if let CTerm::Var(slot) = t {
                        bound.insert(*slot);
                    }
                }
            }
            CItem::Choose { binds, .. } => {
                bound.extend(binds.iter().copied());
            }
            CItem::NegAtom { .. } | CItem::Filter { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{BodyItem, Head, HeadTerm, ProgramBuilder, Term, Value};

    #[test]
    fn variables_are_interned_per_rule() {
        let mut b = ProgramBuilder::new();
        let e = b.relation("E", 2);
        let p = b.relation("P", 2);
        b.rule(
            Head::new(p, [HeadTerm::var("x"), HeadTerm::var("y")]),
            [BodyItem::atom(e, [Term::var("x"), Term::var("y")])],
        );
        b.rule(
            Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
            [
                BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
                BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
            ],
        );
        let prog = b.build().expect("valid");
        assert_eq!(prog.rules[0].num_vars, 2);
        assert_eq!(prog.rules[1].num_vars, 3);
    }

    #[test]
    fn index_requests_capture_bound_columns() {
        let mut b = ProgramBuilder::new();
        let e = b.relation("E", 2);
        let p = b.relation("P", 2);
        b.rule(
            Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
            [
                BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
                BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
            ],
        );
        let prog = b.build().expect("valid");
        // The second atom sees `y` bound, so E needs an index on column 0.
        let reqs = prog.index_requests.get(&e).expect("index for E");
        assert!(reqs.contains(&vec![0]));
    }

    #[test]
    fn filter_before_binding_atom_is_rescheduled() {
        // The §3.7 example writes `R(x) :- isMaybeZero(x), A(x).`; the
        // compiler must move the filter after the binding atom.
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 1);
        let q = b.relation("Q", 1);
        let f = b.function("f", |_| Value::Bool(true));
        b.rule(
            Head::new(q, [HeadTerm::var("x")]),
            [
                BodyItem::filter(f, [Term::var("x")]),
                BodyItem::atom(p, [Term::var("x")]),
            ],
        );
        let prog = b.build().expect("reordered into a valid rule");
        assert!(matches!(
            prog.rules[0].body[0],
            crate::program::CItem::Atom { .. }
        ));
        assert!(matches!(
            prog.rules[0].body[1],
            crate::program::CItem::Filter { .. }
        ));
    }

    #[test]
    fn filter_with_genuinely_unbound_variable_is_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 1);
        let q = b.relation("Q", 1);
        let f = b.function("f", |_| Value::Bool(true));
        b.rule(
            Head::new(q, [HeadTerm::var("x")]),
            [
                BodyItem::atom(p, [Term::var("x")]),
                BodyItem::filter(f, [Term::var("nowhere")]),
            ],
        );
        let err = b.build().expect_err("no atom ever binds `nowhere`");
        assert!(matches!(
            err,
            crate::ProgramError::UnboundBodyVariable { .. }
        ));
    }

    #[test]
    fn app_in_non_final_head_term_is_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 1);
        let q = b.relation("Q", 2);
        let f = b.function("f", |args| args[0].clone());
        b.rule(
            Head::new(q, [HeadTerm::app(f, [Term::var("x")]), HeadTerm::var("x")]),
            [BodyItem::atom(p, [Term::var("x")])],
        );
        let err = b.build().expect_err("app must be last");
        assert!(matches!(err, crate::ProgramError::AppNotLast { .. }));
    }

    #[test]
    fn choose_binds_variables_for_the_head() {
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 1);
        let q = b.relation("Q", 1);
        let f = b.function("f", |args| Value::set([args[0].clone()]));
        b.rule(
            Head::new(q, [HeadTerm::var("y")]),
            [
                BodyItem::atom(p, [Term::var("x")]),
                BodyItem::choose(f, [Term::var("x")], "y"),
            ],
        );
        b.build().expect("choose binding makes y bound");
    }

    #[test]
    fn predicate_lookup_by_name() {
        let mut b = ProgramBuilder::new();
        let p = b.relation("P", 1);
        let prog = b.build().expect("valid");
        assert_eq!(prog.predicate("P"), Some(p));
        assert_eq!(prog.predicate("Nope"), None);
        assert_eq!(prog.decl(p).name(), "P");
        assert_eq!(prog.decl(p).arity(), 1);
    }
}
