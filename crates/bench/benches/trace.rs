//! Tracer-overhead bench: the same semi-naïve shortest-paths solve with
//! tracing disabled, tracing enabled, and ascent telemetry enabled —
//! the "zero cost when disabled, low cost when enabled" claim of the
//! observability layer, measured.

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};
use flix_core::{AscentConfig, Solver, Strategy, TraceConfig};

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    let graph = graphs::generate(150, 500, 0x5907);
    let program = shortest_paths::build_single_source(&graph, 0);

    let plain = Solver::new();
    let traced = Solver::new().trace(TraceConfig::default());
    let ascent = Solver::new().ascent(AscentConfig::default());
    group.bench_with_input(BenchmarkId::new("sp_untraced", 150), &program, |b, p| {
        b.iter(|| plain.solve(p).expect("solves"))
    });
    group.bench_with_input(BenchmarkId::new("sp_traced", 150), &program, |b, p| {
        b.iter(|| plain_len(traced.solve(p).expect("solves")))
    });
    group.bench_with_input(BenchmarkId::new("sp_ascent", 150), &program, |b, p| {
        b.iter(|| ascent.solve(p).expect("solves"))
    });
    group.finish();

    // One instrumented solve per variant for `--metrics-json`, outside
    // the timing loops.
    for (name, solver) in [
        ("trace/sp_untraced/150", Solver::new()),
        (
            "trace/sp_traced/150",
            Solver::new().trace(TraceConfig::default()),
        ),
        (
            "trace/sp_ascent/150",
            Solver::new().ascent(AscentConfig::default()),
        ),
    ] {
        let solution = solver.solve(&program).expect("solves");
        flix_bench::metrics::record(name, Strategy::SemiNaive.name(), 1, solution.stats());
    }
}

/// Forces the recorded trace to stay alive through the timed region so
/// the enabled-path cost includes the final merge.
fn plain_len(solution: flix_core::Solution) -> usize {
    solution.trace().map_or(0, |t| t.events().len())
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
