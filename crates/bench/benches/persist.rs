//! Persistence bench: snapshot save/load and write-ahead-log
//! append/replay on the 400-node §4.4 shortest-paths model.
//!
//! Persistence should never dominate solving: a snapshot round trip of
//! the full model ought to cost a small fraction of the fixed point
//! that produced it, and one WAL append (a single fsynced frame) must
//! stay cheap enough to sit on every update path.

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::Criterion;
use flix_bench::{criterion_group, criterion_main};
use flix_core::persist::{load_snapshot, save_snapshot, DeltaLog};
use flix_core::{Delta, SolveStats, Solver, Strategy, Value};
use std::path::PathBuf;
use std::time::Instant;

const NODES: u32 = 400;
const EXTRA_EDGES: usize = 1_500;
const SEED: u64 = 0x5907;

/// Frames in the replayed log: enough that the scan dominates the
/// constant-cost header check.
const LOG_FRAMES: u32 = 64;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flix-bench-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn one_edge_delta(i: u32) -> Delta {
    // Fresh shortcut edges (cost 1) from the tail into the body, one
    // per frame, like an incremental pipeline would log.
    Delta::new().insert(
        "Edge",
        vec![
            Value::from((NODES - 1) as i64),
            Value::from((i % (NODES / 2)) as i64),
            Value::from(1i64),
        ],
    )
}

/// A named persistence operation timed for the `--metrics-json` record.
type Op<'a> = Box<dyn Fn() + 'a>;

fn bench_persist(c: &mut Criterion) {
    let dir = scratch_dir();
    let solver = Solver::new();
    let graph = graphs::generate(NODES, EXTRA_EDGES, SEED);
    let program = shortest_paths::build_single_source(&graph, 0);
    let solution = solver.solve(&program).expect("solves");

    let snap = dir.join("model.snap");
    let wal = dir.join("deltas.wal");

    // A populated log to replay: LOG_FRAMES one-edge deltas.
    {
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("open log");
        for i in 0..LOG_FRAMES {
            log.append(&one_edge_delta(i)).expect("append");
        }
    }

    let mut group = c.benchmark_group("persist");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("snapshot_save/400", |b| {
        b.iter(|| save_snapshot(&snap, &program, &solution).expect("save"))
    });
    group.bench_function("snapshot_load/400", |b| {
        b.iter(|| load_snapshot(&snap, &program).expect("load"))
    });
    group.bench_function("wal_append/400", |b| {
        // Appends accumulate past the 64 seeded frames; the per-frame
        // cost is flat, so the growing file does not skew samples.
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("open log");
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            log.append(&one_edge_delta(i)).expect("append")
        });
        // Reset to the seeded LOG_FRAMES frames for the replay bench.
        drop(log);
        std::fs::remove_file(&wal).expect("remove log");
        let (mut log, _) = DeltaLog::open(&wal, &program).expect("recreate log");
        for i in 0..LOG_FRAMES {
            log.append(&one_edge_delta(i)).expect("append");
        }
    });
    group.bench_function("wal_replay/400", |b| {
        // `open` is the replay: header check, frame scan, delta decode.
        b.iter(|| {
            let (_, recovery) = DeltaLog::open(&wal, &program).expect("open log");
            assert_eq!(recovery.deltas.len(), LOG_FRAMES as usize);
            recovery
        })
    });
    group.finish();

    // Instrumented runs for `--metrics-json`: persistence has no
    // SolveStats of its own, so record the averaged wall time of each
    // operation in an otherwise-empty stats record — exactly the field
    // the regression checker compares.
    const REPS: u32 = 10;
    let ops: [(&str, Op<'_>); 4] = [
        (
            "persist/snapshot_save/400",
            Box::new(|| {
                save_snapshot(&snap, &program, &solution)
                    .map(|_| ())
                    .expect("save")
            }),
        ),
        (
            "persist/snapshot_load/400",
            Box::new(|| {
                load_snapshot(&snap, &program).expect("load");
            }),
        ),
        (
            "persist/wal_append/400",
            Box::new(|| {
                let (mut log, _) = DeltaLog::open(&wal, &program).expect("open log");
                log.append(&one_edge_delta(7)).expect("append");
            }),
        ),
        (
            "persist/wal_replay/400",
            Box::new(|| {
                DeltaLog::open(&wal, &program).expect("open log");
            }),
        ),
    ];
    for (name, op) in &ops {
        let start = Instant::now();
        for _ in 0..REPS {
            op();
        }
        let stats = SolveStats {
            wall_ns: (start.elapsed().as_nanos() / REPS as u128) as u64,
            total_facts: solution.total_facts() as u64,
            ..SolveStats::default()
        };
        flix_bench::metrics::record(name.to_string(), Strategy::SemiNaive.name(), 1, &stats);
    }

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
