//! Retraction bench: withdrawing an edge from the §4.4 shortest-paths
//! fixed point via `Solver::resume` with a retracting delta vs solving
//! the shrunk program from scratch.
//!
//! The resume path over-deletes the cone of consequences reachable from
//! the retracted edge (walking the provenance event log), re-derives the
//! survivors semi-naïvely, and re-settles lattice cells at the lub of
//! their remaining justifications. It still pays to rebuild the
//! surviving database (O(model)), so the win over scratch is a constant
//! factor — the joins it skips — not an order of magnitude like the
//! monotone resume in `benches/incremental.rs`. The interesting number
//! is the ratio against the from-scratch reference on the 400-node
//! graph; at the 50-node scale the rebuild overhead can exceed the
//! solve it saves, and the pinned baseline records that honestly.
//!
//! Both sides run with provenance recording on: the retraction path
//! needs the justification log, and a fair scratch reference must also
//! produce a resumable (provenance-carrying) solution.

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};
use flix_core::{Delta, Solver, Strategy, Value};

/// The retracted edge: one of the generator's extra edges near the
/// middle of the graph, so some (but not all) distances degrade and the
/// re-derive phase has real work on both sides.
fn retraction_for(graph: &flix_analyses::workloads::graphs::WeightedGraph) -> (u32, u32, u64) {
    graph.edges[graph.edges.len() / 2]
}

fn delta_for(graph: &flix_analyses::workloads::graphs::WeightedGraph) -> Delta {
    let (x, y, c) = retraction_for(graph);
    Delta::new().retract(
        "Edge",
        vec![
            Value::from(x as i64),
            Value::from(y as i64),
            Value::from(c as i64),
        ],
    )
}

fn bench_retraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("retraction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    // Provenance must be on for the exact retraction path; without it the
    // resume degrades to a scratch solve and the comparison is vacuous.
    let solver = Solver::new().record_provenance(true);
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let base = shortest_paths::build_single_source(&graph, 0);
        let prior = solver.solve(&base).expect("base solves");
        // The from-scratch reference: the same graph with the edge
        // already removed, solved from nothing.
        let retracted = retraction_for(&graph);
        let mut shrunk_graph = graph.clone();
        shrunk_graph.edges.retain(|&e| e != retracted);
        let scratch_program = shortest_paths::build_single_source(&shrunk_graph, 0);
        let delta = delta_for(&graph);

        group.bench_with_input(
            BenchmarkId::new("from_scratch", nodes),
            &scratch_program,
            |b, program| b.iter(|| solver.solve(program).expect("solves")),
        );
        group.bench_with_input(
            BenchmarkId::new("resume_retract_edge", nodes),
            &(&base, &prior, &delta),
            |b, (base, prior, delta)| {
                b.iter(|| solver.resume(base, prior, delta).expect("resumes"))
            },
        );
    }
    group.finish();

    // Instrumented runs outside the timing loops so `--metrics-json`
    // carries comparable profiles (wall_ns of a scratch solve vs a
    // retract-then-resume of the same shrink on each graph).
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let base = shortest_paths::build_single_source(&graph, 0);
        let prior = solver.solve(&base).expect("base solves");
        let retracted = retraction_for(&graph);
        let mut shrunk_graph = graph.clone();
        shrunk_graph.edges.retain(|&e| e != retracted);
        let scratch_program = shortest_paths::build_single_source(&shrunk_graph, 0);
        let scratch = solver.solve(&scratch_program).expect("solves");
        flix_bench::metrics::record(
            format!("retraction/from_scratch/{nodes}"),
            Strategy::SemiNaive.name(),
            1,
            scratch.stats(),
        );
        let resumed = solver
            .resume(&base, &prior, &delta_for(&graph))
            .expect("resumes");
        flix_bench::metrics::record(
            format!("retraction/resume_retract_edge/{nodes}"),
            Strategy::SemiNaive.name(),
            1,
            resumed.stats(),
        );
    }
}

criterion_group!(benches, bench_retraction);
criterion_main!(benches);
