//! Service bench: the cost of asking a resident flixd for answers vs
//! paying a fresh fixed point per question, on the 400-node §4.4
//! shortest-paths model.
//!
//! The daemon's pitch is amortisation: solve once, then serve queries
//! at socket-round-trip cost and updates at `Solver::resume` cost. The
//! interesting ratios are `query_roundtrip` (wire framing + epoch pin +
//! index probe) against `solve_per_query` (what a CLI invocation pays
//! for the same answer), and `update_roundtrip` (WAL-less resume +
//! epoch publish + acknowledgement) against the same scratch solve.

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::Criterion;
use flix_bench::{criterion_group, criterion_main};
use flix_core::{Delta, DeltaOp, SolveStats, Solver, Strategy, Value};
use flixd::{Client, Hooks, ReplyBody, Request, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const NODES: u32 = 400;
const EXTRA_EDGES: usize = 1_500;
const SEED: u64 = 0x5907;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flix-bench-service-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Hooks speaking a minimal space-separated syntax: queries `Dist 7 _`,
/// updates one `+Edge x y c` / `-Edge x y c` per line. The bench talks
/// to the engine directly; the surface language is not what is timed.
fn bench_hooks() -> Hooks {
    let term = |p: &str| -> Result<Option<Value>, String> {
        if p == "_" {
            Ok(None)
        } else {
            p.parse::<i64>()
                .map(|v| Some(Value::from(v)))
                .map_err(|_| format!("bad term {p:?}"))
        }
    };
    Hooks {
        parse_query: Box::new(move |text| {
            let mut parts = text.split_whitespace();
            let pred = parts.next().ok_or("empty query")?.to_string();
            let pattern = parts.map(term).collect::<Result<Vec<_>, _>>()?;
            Ok((pred, pattern))
        }),
        parse_atom: Box::new(|text| {
            let mut parts = text.split_whitespace();
            let pred = parts.next().ok_or("empty atom")?.to_string();
            let values = parts
                .map(|p| p.parse::<i64>().map(Value::from).map_err(|e| e.to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok((pred, values))
        }),
        compile_update: Box::new(|text| {
            let mut delta = Delta::new();
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                let (op, rest) = line.trim().split_at(1);
                let mut parts = rest.split_whitespace();
                let predicate = parts.next().ok_or("missing predicate")?.to_string();
                let tuple = parts
                    .map(|p| p.parse::<i64>().map(Value::from).map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                match op {
                    "+" => delta.push(predicate, tuple),
                    "-" => delta.push_op(DeltaOp::Retract { predicate, tuple }),
                    other => return Err(format!("bad op {other:?}")),
                }
            }
            Ok(delta)
        }),
    }
}

fn bench_service(c: &mut Criterion) {
    let dir = scratch_dir();
    let graph = graphs::generate(NODES, EXTRA_EDGES, SEED);
    let program = Arc::new(shortest_paths::build_single_source(&graph, 0));

    let config = ServerConfig::new(dir.join("flixd.sock"));
    let server = Server::start(Arc::clone(&program), config, bench_hooks()).expect("server starts");
    let mut client = Client::connect(server.socket()).expect("connects");

    // The alternating update: a shortcut edge appears, then retracts,
    // so the model stays bounded no matter how many samples run.
    let insert = format!("+Edge {} 1 1\n", NODES - 1);
    let retract = format!("-Edge {} 1 1\n", NODES - 1);

    let solver = Solver::new();

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("query_roundtrip/400", |b| {
        b.iter(|| {
            let reply = client
                .request(&Request::Query {
                    atom: "Dist 7 _".into(),
                })
                .expect("query");
            assert!(matches!(reply.body, ReplyBody::Answers(_)));
            reply
        })
    });
    group.bench_function("update_roundtrip/400", |b| {
        let mut add = true;
        b.iter(|| {
            let text = if add { insert.clone() } else { retract.clone() };
            add = !add;
            let reply = client
                .request(&Request::Update {
                    text,
                    timeout_secs: None,
                })
                .expect("update");
            assert!(matches!(reply.body, ReplyBody::Updated { .. }), "{reply:?}");
            reply
        })
    });
    group.bench_function("solve_per_query/400", |b| {
        // The non-resident reference: what answering one question costs
        // when every invocation re-derives the fixed point.
        b.iter(|| solver.solve(&program).expect("solves"))
    });
    group.finish();

    // Instrumented runs for `--metrics-json`: the daemon's solve stats
    // live on its side of the socket, so record the client-observed
    // wall time of each round trip — the number a service caller sees —
    // in an otherwise-empty stats record, like the persist bench.
    let scratch = solver.solve(&program).expect("solves");
    let record_roundtrip = |name: &str, reps: u32, mut op: Box<dyn FnMut() + '_>| {
        let start = Instant::now();
        for _ in 0..reps {
            op();
        }
        let stats = SolveStats {
            wall_ns: (start.elapsed().as_nanos() / reps as u128) as u64,
            total_facts: scratch.total_facts() as u64,
            ..SolveStats::default()
        };
        flix_bench::metrics::record(name.to_string(), Strategy::SemiNaive.name(), 1, &stats);
    };
    {
        let client = &mut client;
        // Sub-millisecond round trips need many reps before scheduler
        // noise averages out under the regression tolerance.
        record_roundtrip(
            "service/query_roundtrip/400",
            500,
            Box::new(|| {
                client
                    .request(&Request::Query {
                        atom: "Dist 7 _".into(),
                    })
                    .expect("query");
            }),
        );
    }
    {
        let client = &mut client;
        let insert = &insert;
        let retract = &retract;
        let mut add = true;
        record_roundtrip(
            "service/update_roundtrip/400",
            10,
            Box::new(move || {
                let text = if add { insert.clone() } else { retract.clone() };
                add = !add;
                client
                    .request(&Request::Update {
                        text,
                        timeout_secs: None,
                    })
                    .expect("update");
            }),
        );
    }
    record_roundtrip(
        "service/solve_per_query/400",
        10,
        Box::new(|| {
            solver.solve(&program).expect("solves");
        }),
    );
    {
        // The telemetry round trip itself: rendering the full
        // `flixd-stats/1` document from a warm registry.
        let client = &mut client;
        record_roundtrip(
            "service/stats_roundtrip/400",
            100,
            Box::new(|| {
                let reply = client
                    .request(&Request::Stats { prometheus: false })
                    .expect("stats");
                assert!(matches!(reply.body, ReplyBody::Stats(_)));
            }),
        );
    }

    drop(client);
    server.shutdown();
    server.join();

    // The idle-overhead A/B: the same query round trip against a daemon
    // whose telemetry is compiled off (every record call returns after
    // one branch). CI gates `query_roundtrip` and
    // `query_roundtrip_notelem` against the same baseline tolerance, so
    // instrumentation drifting out of the noise floor fails the run.
    let mut config = ServerConfig::new(dir.join("flixd-notelem.sock"));
    config.telemetry = false;
    let server = Server::start(Arc::clone(&program), config, bench_hooks()).expect("server starts");
    let mut client = Client::connect(server.socket()).expect("connects");
    {
        let client = &mut client;
        record_roundtrip(
            "service/query_roundtrip_notelem/400",
            500,
            Box::new(|| {
                client
                    .request(&Request::Query {
                        atom: "Dist 7 _".into(),
                    })
                    .expect("query");
            }),
        );
    }
    drop(client);
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
