//! Demand-driven query bench: point queries on the §4.4 all-pairs
//! shortest-paths program via `Solver::solve_query` vs computing the
//! full minimal model.
//!
//! The interesting number is the ratio: a single-target query
//! `Dist(source, target, _)` makes the demand rewrite settle on the
//! source column (the recursive rule propagates the source key
//! unchanged), so only the ~n cells reachable from one source are
//! derived instead of all n² — on the 400-node graph the query-directed
//! solve should be well over 5× faster than the full solve, with
//! `SolveStats` confirming it derived a fraction of the facts.

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};
use flix_core::{Query, Solver, Strategy, Value};

/// The single-target query `Dist(source, target, _)` for a graph of
/// `nodes` nodes: first node to last node.
fn single_target(nodes: u32) -> Query {
    Query::new(
        "Dist",
        vec![
            Some(Value::from(0i64)),
            Some(Value::from((nodes - 1) as i64)),
            None,
        ],
    )
}

/// The single-source query `Dist(source, _, _)`.
fn single_source() -> Query {
    Query::new("Dist", vec![Some(Value::from(0i64)), None, None])
}

fn bench_demand(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let solver = Solver::new();
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let program = shortest_paths::build_all_pairs(&graph);

        group.bench_with_input(
            BenchmarkId::new("full_solve", nodes),
            &program,
            |b, program| b.iter(|| solver.solve(program).expect("solves")),
        );
        let target = [single_target(nodes)];
        group.bench_with_input(
            BenchmarkId::new("single_target", nodes),
            &(&program, &target),
            |b, (program, queries)| {
                b.iter(|| solver.solve_query(program, *queries).expect("queries"))
            },
        );
        let source = [single_source()];
        group.bench_with_input(
            BenchmarkId::new("single_source", nodes),
            &(&program, &source),
            |b, (program, queries)| {
                b.iter(|| solver.solve_query(program, *queries).expect("queries"))
            },
        );
    }
    group.finish();

    // Instrumented runs outside the timing loops so `--metrics-json`
    // carries comparable profiles: wall_ns and facts derived of a full
    // solve vs the query-directed runs on each graph. The demand rewrite
    // remaps its stats onto the original program's rules, so the per-rule
    // entries line up across the three runs.
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let program = shortest_paths::build_all_pairs(&graph);
        let full = solver.solve(&program).expect("solves");
        flix_bench::metrics::record(
            format!("demand/full_solve/{nodes}"),
            Strategy::SemiNaive.name(),
            1,
            full.stats(),
        );
        let target = solver
            .solve_query(&program, &[single_target(nodes)])
            .expect("queries");
        flix_bench::metrics::record(
            format!("demand/single_target/{nodes}"),
            Strategy::SemiNaive.name(),
            1,
            target.stats(),
        );
        let source = solver
            .solve_query(&program, &[single_source()])
            .expect("queries");
        flix_bench::metrics::record(
            format!("demand/single_source/{nodes}"),
            Strategy::SemiNaive.name(),
            1,
            source.stats(),
        );
    }
}

criterion_group!(benches, bench_demand);
criterion_main!(benches);
