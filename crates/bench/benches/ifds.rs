//! Table 2 bench: the IFDS analysis, hand-coded imperative tabulation
//! (the paper's Scala column) vs the declarative FLIX formulation of
//! Figure 5, over identical flow functions.
//!
//! The paper's shape to reproduce: the declarative version within a small
//! constant factor (~2.5–3.1×) of the imperative one, scaling together.

use flix_analyses::ifds;
use flix_analyses::ifds::problems::{Taint, UninitVars};
use flix_analyses::workloads::jvm_program::{self, GenParams};
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};
use std::sync::Arc;

fn bench_ifds(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_ifds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &(procs, nodes) in &[(4u32, 10u32), (8, 16), (16, 28)] {
        let size = procs * (nodes + 2);
        let model = Arc::new(jvm_program::generate(GenParams {
            num_procs: procs,
            nodes_per_proc: nodes,
            vars_per_proc: 6,
            call_percent: 15,
            seed: 0xDACA90,
        }));
        let taint = Arc::new(Taint::new(model.clone()));
        group.bench_with_input(
            BenchmarkId::new("imperative_scala_baseline", size),
            &(),
            |b, ()| b.iter(|| ifds::imperative::solve(&model.graph, taint.as_ref())),
        );
        group.bench_with_input(BenchmarkId::new("flix_declarative", size), &(), |b, ()| {
            b.iter(|| ifds::flix::solve(&model.graph, taint.clone()))
        });
        let uninit = Arc::new(UninitVars::new(model.clone()));
        group.bench_with_input(BenchmarkId::new("imperative_uninit", size), &(), |b, ()| {
            b.iter(|| ifds::imperative::solve(&model.graph, uninit.as_ref()))
        });
        group.bench_with_input(BenchmarkId::new("flix_uninit", size), &(), |b, ()| {
            b.iter(|| ifds::flix::solve(&model.graph, uninit.clone()))
        });
    }
    group.finish();

    // One instrumented Taint solve (mid-size workload), outside the
    // timing loops, recorded for `--metrics-json` reports.
    let model = Arc::new(jvm_program::generate(GenParams {
        num_procs: 8,
        nodes_per_proc: 16,
        vars_per_proc: 6,
        call_percent: 15,
        seed: 0xDACA90,
    }));
    let taint = Arc::new(Taint::new(model.clone()));
    let program = ifds::flix::build_program(&model.graph, taint);
    let solution = flix_core::Solver::new().solve(&program).expect("solves");
    flix_bench::metrics::record(
        "table2_ifds/flix_declarative/taint_8x16",
        flix_core::Strategy::SemiNaive.name(),
        1,
        solution.stats(),
    );
}

criterion_group!(benches, bench_ifds);
criterion_main!(benches);
