//! §4.4 bench: all-pairs/single-source shortest paths as a FLIX lattice
//! program vs the hand-written Dijkstra reference — the paper's example
//! that FLIX "is applicable to other types of fixed-point problems".

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};

fn bench_shortest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_paths");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        group.bench_with_input(
            BenchmarkId::new("flix_single_source", nodes),
            &graph,
            |b, graph| b.iter(|| shortest_paths::single_source(graph, 0)),
        );
        group.bench_with_input(
            BenchmarkId::new("dijkstra_reference", nodes),
            &graph,
            |b, graph| b.iter(|| graphs::dijkstra(graph, 0)),
        );
    }
    // All-pairs on a small graph: the map-lattice workload.
    let graph = graphs::generate(40, 120, 0x5907);
    group.bench_function("flix_all_pairs_40", |b| {
        b.iter(|| shortest_paths::all_pairs(&graph))
    });
    group.finish();

    // One instrumented solve per workload, outside the timing loops, so
    // `--metrics-json` reports a full per-rule/per-stratum profile
    // without perturbing the measurements above.
    let graph = graphs::generate(400, 1_500, 0x5907);
    let (_, stats) = shortest_paths::single_source_profiled(&graph, 0);
    flix_bench::metrics::record(
        "shortest_paths/flix_single_source/400",
        flix_core::Strategy::SemiNaive.name(),
        1,
        &stats,
    );
    let graph = graphs::generate(40, 120, 0x5907);
    let solution = flix_core::Solver::new()
        .solve(&shortest_paths::build_all_pairs(&graph))
        .expect("solves");
    flix_bench::metrics::record(
        "shortest_paths/flix_all_pairs_40",
        flix_core::Strategy::SemiNaive.name(),
        1,
        solution.stats(),
    );
}

criterion_group!(benches, bench_shortest_paths);
criterion_main!(benches);
