//! Ablation benches for the engine design choices called out in
//! DESIGN.md:
//!
//! * semi-naïve vs naïve evaluation (§3.7 of the paper);
//! * hash-index joins vs full scans (index selection);
//! * sequential vs parallel rule evaluation;
//! * native lattice vs §1's powerset embedding (measured on the Strong
//!   Update analysis in `strong_update.rs`; here on a pure engine
//!   workload).

use flix_analyses::strong_update;
use flix_analyses::workloads::c_program;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};
use flix_core::{BodyItem, Head, HeadTerm, Program, ProgramBuilder, Solver, Strategy, Term};

/// Transitive closure over a chain plus random edges: the canonical
/// engine micro-workload.
fn closure_program(nodes: i64, extra: usize, seed: u64) -> Program {
    use flix_lattice::rng::SmallRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let e = b.relation("Edge", 2);
    let p = b.relation("Path", 2);
    for n in 0..nodes - 1 {
        b.fact(e, vec![n.into(), (n + 1).into()]);
    }
    for _ in 0..extra {
        let x = rng.gen_range(0..nodes);
        let y = rng.gen_range(0..nodes);
        b.fact(e, vec![x.into(), y.into()]);
    }
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(e, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.build().expect("valid")
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_semi_naive_vs_naive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &nodes in &[30i64, 60] {
        let program = closure_program(nodes, nodes as usize, 7);
        group.bench_with_input(BenchmarkId::new("semi_naive", nodes), &(), |b, ()| {
            b.iter(|| Solver::new().solve(&program).expect("solves"))
        });
        group.bench_with_input(BenchmarkId::new("naive", nodes), &(), |b, ()| {
            b.iter(|| {
                Solver::new()
                    .strategy(Strategy::Naive)
                    .solve(&program)
                    .expect("solves")
            })
        });
    }
    group.finish();
}

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_indexes_vs_scans");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &nodes in &[40i64, 80] {
        let program = closure_program(nodes, nodes as usize * 2, 11);
        group.bench_with_input(BenchmarkId::new("indexed", nodes), &(), |b, ()| {
            b.iter(|| Solver::new().solve(&program).expect("solves"))
        });
        group.bench_with_input(BenchmarkId::new("full_scan", nodes), &(), |b, ()| {
            b.iter(|| {
                Solver::new()
                    .use_indexes(false)
                    .solve(&program)
                    .expect("solves")
            })
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let input = c_program::generate(800, 0xAB1A);
    let program = strong_update::flix::build_program(&input);
    group.bench_function("sequential", |b| {
        b.iter(|| Solver::new().solve(&program).expect("solves"))
    });
    group.bench_function("threads_4", |b| {
        b.iter(|| Solver::new().threads(4).solve(&program).expect("solves"))
    });
    group.finish();
}

fn bench_lattice_vs_powerset(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lattice_vs_powerset");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let input = c_program::generate(600, 0x90D);
    group.bench_function("native_lattice", |b| {
        b.iter(|| strong_update::flix::analyze(&input))
    });
    group.bench_function("powerset_embedding", |b| {
        b.iter(|| strong_update::datalog::analyze(&input))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_indexes,
    bench_parallel,
    bench_lattice_vs_powerset
);
criterion_main!(benches);
