//! Incremental re-solve bench: warm-starting the §4.4 shortest-paths
//! fixed point from a prior model via `Solver::resume` vs solving the
//! updated program from scratch, for a single-edge update.
//!
//! The interesting number is the ratio: a one-edge delta re-derives only
//! the cells the new edge improves, so the warm start should be at least
//! an order of magnitude faster than re-running the whole fixed point on
//! the largest graph.

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};
use flix_core::{Delta, Solver, Strategy, Value};

/// The single-edge update: a cheap shortcut from the last node into the
/// middle of the graph, so the delta actually propagates.
fn update_for(nodes: u32) -> (u32, u32, u64) {
    (nodes - 1, nodes / 2, 1)
}

fn delta_for(nodes: u32) -> Delta {
    let (x, y, c) = update_for(nodes);
    Delta::new().insert(
        "Edge",
        vec![
            Value::from(x as i64),
            Value::from(y as i64),
            Value::from(c as i64),
        ],
    )
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let solver = Solver::new();
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let base = shortest_paths::build_single_source(&graph, 0);
        let prior = solver.solve(&base).expect("base solves");
        // The from-scratch reference: the same graph with the update
        // already applied, solved from nothing.
        let mut updated_graph = graph.clone();
        updated_graph.edges.push(update_for(nodes));
        let scratch_program = shortest_paths::build_single_source(&updated_graph, 0);
        let delta = delta_for(nodes);

        group.bench_with_input(
            BenchmarkId::new("from_scratch", nodes),
            &scratch_program,
            |b, program| b.iter(|| solver.solve(program).expect("solves")),
        );
        group.bench_with_input(
            BenchmarkId::new("resume_single_edge", nodes),
            &(&base, &prior, &delta),
            |b, (base, prior, delta)| {
                b.iter(|| solver.resume(base, prior, delta).expect("resumes"))
            },
        );
    }
    group.finish();

    // Instrumented runs outside the timing loops so `--metrics-json`
    // carries comparable profiles (wall_ns of a scratch solve vs a warm
    // resume of the same update on the largest graph).
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let base = shortest_paths::build_single_source(&graph, 0);
        let prior = solver.solve(&base).expect("base solves");
        let mut updated_graph = graph.clone();
        updated_graph.edges.push(update_for(nodes));
        let scratch_program = shortest_paths::build_single_source(&updated_graph, 0);
        let scratch = solver.solve(&scratch_program).expect("solves");
        flix_bench::metrics::record(
            format!("incremental/from_scratch/{nodes}"),
            Strategy::SemiNaive.name(),
            1,
            scratch.stats(),
        );
        let resumed = solver
            .resume(&base, &prior, &delta_for(nodes))
            .expect("resumes");
        flix_bench::metrics::record(
            format!("incremental/resume_single_edge/{nodes}"),
            Strategy::SemiNaive.name(),
            1,
            resumed.stats(),
        );
    }
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
