//! Table 1 bench: the Strong Update analysis under its three
//! implementations — the pure-Datalog powerset embedding (the paper's DLV
//! column), the FLIX lattice engine, and the hand-written imperative
//! worklist (the C++ column).
//!
//! The paper's shape to reproduce: DLV ≫ FLIX ≫ C++, with the embedding's
//! gap growing with input size.

use flix_analyses::strong_update;
use flix_analyses::workloads::c_program;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};

fn bench_strong_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_strong_update");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &facts in &[200usize, 600, 1_800] {
        let input = c_program::generate(facts, 0xBEEF);
        group.bench_with_input(
            BenchmarkId::new("imperative_cxx_baseline", facts),
            &input,
            |b, input| b.iter(|| strong_update::imperative::analyze(input)),
        );
        group.bench_with_input(
            BenchmarkId::new("flix_lattice", facts),
            &input,
            |b, input| b.iter(|| strong_update::flix::analyze(input)),
        );
        // The powerset embedding blows up quickly; cap its size like the
        // paper's DLV column (which stops at 20k facts).
        if facts <= 600 {
            group.bench_with_input(
                BenchmarkId::new("datalog_powerset_dlv_baseline", facts),
                &input,
                |b, input| b.iter(|| strong_update::datalog::analyze(input)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strong_update);
criterion_main!(benches);
