//! Kernel ablation bench: the specialized join kernels (compiled plans
//! over encoded columns, emit-side suppression, encoded lattice inserts)
//! vs the generic tuple-at-a-time evaluator, on the two workload shapes
//! the kernels target:
//!
//! * a lattice-heavy fixpoint — single-source shortest paths, where
//!   almost all derivations are candidate cells for the `MinCost`
//!   lattice and the encoded-insert fast path carries the round trip;
//! * a relation-heavy fixpoint — transitive closure, where the win is
//!   single-word join keys and emit-side membership suppression.
//!
//! Both paths must produce identical statistics (the strategy-parity and
//! differential suites pin this), so the committed `BENCH_kernels.json`
//! profiles differ only in `wall_ns` — the speedup is the point.

use flix_analyses::shortest_paths;
use flix_analyses::workloads::graphs;
use flix_bench::harness::{BenchmarkId, Criterion};
use flix_bench::{criterion_group, criterion_main};
use flix_core::{BodyItem, Head, HeadTerm, Program, ProgramBuilder, Solver, Strategy, Term};

/// Transitive closure over a chain plus random extra edges (the same
/// shape as the `ablation` bench's engine micro-workload).
fn closure_program(nodes: i64, extra: usize, seed: u64) -> Program {
    use flix_lattice::rng::SmallRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let e = b.relation("Edge", 2);
    let p = b.relation("Path", 2);
    for n in 0..nodes - 1 {
        b.fact(e, vec![n.into(), (n + 1).into()]);
    }
    for _ in 0..extra {
        let x = rng.gen_range(0..nodes);
        let y = rng.gen_range(0..nodes);
        b.fact(e, vec![x.into(), y.into()]);
    }
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("y")]),
        [BodyItem::atom(e, [Term::var("x"), Term::var("y")])],
    );
    b.rule(
        Head::new(p, [HeadTerm::var("x"), HeadTerm::var("z")]),
        [
            BodyItem::atom(p, [Term::var("x"), Term::var("y")]),
            BodyItem::atom(e, [Term::var("y"), Term::var("z")]),
        ],
    );
    b.build().expect("valid")
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    let on = Solver::new().kernels(true);
    let off = Solver::new().kernels(false);

    for &(nodes, extra) in &[(200u32, 800usize), (600, 2_400)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let program = shortest_paths::build_single_source(&graph, 0);
        group.bench_with_input(
            BenchmarkId::new("shortest_paths_on", nodes),
            &program,
            |b, program| b.iter(|| on.solve(program).expect("solves")),
        );
        group.bench_with_input(
            BenchmarkId::new("shortest_paths_off", nodes),
            &program,
            |b, program| b.iter(|| off.solve(program).expect("solves")),
        );
    }

    for &nodes in &[120i64, 240] {
        let program = closure_program(nodes, nodes as usize * 2, 11);
        group.bench_with_input(
            BenchmarkId::new("closure_on", nodes),
            &program,
            |b, program| b.iter(|| on.solve(program).expect("solves")),
        );
        group.bench_with_input(
            BenchmarkId::new("closure_off", nodes),
            &program,
            |b, program| b.iter(|| off.solve(program).expect("solves")),
        );
    }
    group.finish();

    // Instrumented runs outside the timing loops so `--metrics-json`
    // carries comparable on/off profiles — every statistic except
    // `wall_ns` must coincide pairwise.
    for &(nodes, extra) in &[(200u32, 800usize), (600, 2_400)] {
        let graph = graphs::generate(nodes, extra, 0x5907);
        let program = shortest_paths::build_single_source(&graph, 0);
        for (label, solver) in [("on", &on), ("off", &off)] {
            let solution = solver.solve(&program).expect("solves");
            flix_bench::metrics::record(
                format!("kernels/shortest_paths_{label}/{nodes}"),
                Strategy::SemiNaive.name(),
                1,
                solution.stats(),
            );
        }
    }
    for &nodes in &[120i64, 240] {
        let program = closure_program(nodes, nodes as usize * 2, 11);
        for (label, solver) in [("on", &on), ("off", &off)] {
            let solution = solver.solve(&program).expect("solves");
            flix_bench::metrics::record(
                format!("kernels/closure_{label}/{nodes}"),
                Strategy::SemiNaive.name(),
                1,
                solution.stats(),
            );
        }
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
