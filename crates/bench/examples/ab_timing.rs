//! Min-of-many CPU-time A/B harness: one semi-naive single-source
//! shortest-paths solve per iteration, prints the best wall time in ns.

use flix_analyses::{shortest_paths, workloads::graphs};
use flix_core::Solver;
use std::time::Instant;

fn main() {
    let graph = graphs::generate(150, 500, 0x5907);
    let program = shortest_paths::build_single_source(&graph, 0);
    for _ in 0..30 {
        std::hint::black_box(Solver::new().solve(&program).expect("solves"));
    }
    let mut best = u128::MAX;
    for _ in 0..300 {
        let start = Instant::now();
        let solution = Solver::new().solve(&program).expect("solves");
        let ns = start.elapsed().as_nanos();
        std::hint::black_box(solution);
        best = best.min(ns);
    }
    println!("{best}");
}
