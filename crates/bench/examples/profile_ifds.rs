//! Profiles the Figure 5 IFDS encoding against the imperative tabulation
//! across three workload sizes, printing the solver's work counters and
//! the ranked per-rule profile of the largest run.
//!
//! Pass `--metrics-json PATH` (or set `FLIX_METRICS_JSON`) to write every
//! flix solve as one `flix-metrics/1` document — the same report
//! `flixr --metrics-json` and the bench harness produce.

use flix_analyses::ifds::{self, problems::Taint};
use flix_analyses::workloads::jvm_program::{self, GenParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut last_stats = None;
    for (procs, nodes) in [(8u32, 16u32), (16, 32), (31, 45)] {
        let model = Arc::new(jvm_program::generate(GenParams {
            num_procs: procs,
            nodes_per_proc: nodes,
            vars_per_proc: 8,
            call_percent: 15,
            seed: 42,
        }));
        let problem = Arc::new(Taint::new(model.clone()));
        let t0 = Instant::now();
        let imp = ifds::imperative::solve(&model.graph, problem.as_ref());
        let imp_t = t0.elapsed();
        let program = ifds::flix::build_program(&model.graph, problem.clone());
        let t0 = Instant::now();
        let sol = flix_core::Solver::new().solve(&program).unwrap();
        let flix_t = t0.elapsed();
        let s = sol.stats();
        println!("nodes={:5} pathedges={:6} imp={:8.4}s flix={:8.4}s ratio={:6.1} rounds={} derived={} inserted={} probes={} scans={}",
            model.graph.num_nodes, sol.len("PathEdge").unwrap(),
            imp_t.as_secs_f64(), flix_t.as_secs_f64(),
            flix_t.as_secs_f64()/imp_t.as_secs_f64(),
            s.rounds, s.facts_derived, s.facts_inserted, s.index_probes, s.scan_fallbacks);
        flix_bench::metrics::record(
            format!("profile_ifds/taint_{procs}x{nodes}"),
            flix_core::Strategy::SemiNaive.name(),
            1,
            s,
        );
        last_stats = Some(s.clone());
        let _ = imp;
    }
    if let Some(stats) = &last_stats {
        println!("\nper-rule profile of the largest run:");
        print!("{}", flix_core::render_profile_table(stats));
    }
    flix_bench::metrics::write_if_requested();
}
