//! A tiny, dependency-free stand-in for the Criterion benchmark API.
//!
//! The container building this workspace has no network access, so the
//! real `criterion` crate is unavailable. This module implements the
//! small slice of its API the benches use (`benchmark_group`,
//! `bench_with_input`, `bench_function`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) on top of
//! `std::time::Instant`.
//!
//! Two modes:
//!
//! * **Full** (`cargo bench`, i.e. argv contains `--bench`): each
//!   benchmark is warmed up and then timed for `sample_size` samples
//!   within the configured measurement window; mean / min / max are
//!   printed per benchmark.
//! * **Quick** (any other invocation, e.g. `cargo test` smoke-running
//!   the bench binaries, or an explicit `cargo bench ... -- --quick`):
//!   each benchmark body runs exactly once, as a correctness smoke test,
//!   with no timing loop.
//!
//! Either mode records instrumented solver runs in the
//! [`crate::metrics`] registry; pass `--metrics-json PATH` (after `--`)
//! to write them as a `flix-metrics/1` report — CI's bench-smoke step
//! runs `cargo bench ... -- --quick --metrics-json PATH` to land a
//! `BENCH_*.json` profile without paying for full sampling.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    full: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to harness-less bench binaries;
        // anything else (plain runs, `cargo test`) gets the quick mode.
        // An explicit `--quick` forces quick mode even under `cargo
        // bench`, so CI can smoke-run the benches (and still collect
        // metrics) without paying for warm-up and sampling.
        let mut full = false;
        for arg in std::env::args() {
            match arg.as_str() {
                "--bench" => full = true,
                "--quick" => return Criterion { full: false },
                _ => {}
            }
        }
        Criterion { full }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, warm_up, measurement) =
            (10, Duration::from_millis(500), Duration::from_secs(3));
        run_one(self.full, id, sample_size, warm_up, measurement, f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected in full mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration used in full mode.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window used in full mode.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark identified by `id` over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            self.criterion.full,
            &id.to_string(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(
            self.criterion.full,
            id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// A function-plus-parameter benchmark identifier, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Passed to each benchmark body; `iter` runs the measured routine.
pub struct Bencher {
    full: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`: once in quick mode, sampled in full mode.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        if !self.full {
            let _ = routine();
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let _ = routine();
        }
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let _ = routine();
            self.samples.push(start.elapsed());
            if run_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_one(
    full: bool,
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        full,
        sample_size,
        warm_up_time,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if !full {
        println!("  {id}: ok (quick mode; run `cargo bench` to measure)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("  {id}: no samples collected");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    println!(
        "  {id}: mean {:.3} ms, min {:.3} ms, max {:.3} ms ({n} samples)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
    );
}

/// Declares the list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`. After all groups run, any instrumented
/// solves recorded via [`crate::metrics::record`] are written out when
/// `--metrics-json PATH` was passed.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::metrics::write_if_requested();
        }
    };
}
