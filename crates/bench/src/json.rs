//! A minimal JSON reader for the bench tooling — just enough to load
//! `flix-metrics/1` documents (and Chrome trace exports) back in
//! without a serialisation dependency.
//!
//! The engine's observability layer *renders* JSON by hand
//! ([`flix_core::render_metrics_json`],
//! [`flix_core::ExecutionTrace::to_chrome_json`]); this module is the
//! matching reader used by the regression checker and the trace test
//! suite. It parses the full JSON grammar (RFC 8259) into an untyped
//! [`Json`] tree with positional errors; numbers are kept as `f64`,
//! which is exact for every counter the metrics schema emits (wall
//! times in nanoseconds stay below 2⁵³).

/// An untyped JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; exact for integers below 2⁵³.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` on non-arrays.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string; `None` on non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value; `None` on non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer; `None` on
    /// non-numbers, negatives, and non-integers.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth. The parser is recursive-descent, so
/// without a limit a pathological input like 100 000 `[`s would overflow
/// the stack — an *abort*, not a catchable panic. The metrics and trace
/// documents this reader exists for nest 4 levels deep.
const MAX_DEPTH: usize = 256;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn fail(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.fail(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.fail(format!("unexpected character '{}'", c as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    /// Guards every `{`/`[` against stack-overflowing recursion; errors
    /// propagate to the top, so the counter never needs unwinding on
    /// the failure path.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.fail(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.fail("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + low
                                            .checked_sub(0xDC00)
                                            .ok_or_else(|| self.fail("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.fail("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.fail(format!("invalid escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.fail("invalid utf-8 in string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.fail(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_metrics_document() {
        let doc = parse(
            r#"{"schema": "flix-metrics/1", "runs": [
                {"name": "a/b", "threads": 2, "wall_ns": 1234, "ok": true, "x": null}
            ]}"#,
        )
        .expect("valid");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("flix-metrics/1")
        );
        let runs = doc.get("runs").and_then(Json::as_array).expect("array");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("wall_ns").and_then(Json::as_u64), Some(1234));
        assert_eq!(runs[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(runs[0].get("x"), Some(&Json::Null));
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse(r#""a\n\"b\"A😀""#).expect("valid");
        assert_eq!(doc.as_str(), Some("a\n\"b\"A😀"));
    }

    #[test]
    fn numbers_roundtrip() {
        assert_eq!(parse("-3.5e2").expect("valid").as_f64(), Some(-350.0));
        assert_eq!(parse("0").expect("valid").as_u64(), Some(0));
        assert_eq!(parse("-1").expect("valid").as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
