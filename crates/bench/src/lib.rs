//! Benchmark harness for the FLIX reproduction.
//!
//! One Criterion bench per evaluation artifact of the paper:
//!
//! * `strong_update` — Table 1 (DLV powerset embedding vs FLIX vs
//!   hand-written imperative);
//! * `ifds` — Table 2 (imperative tabulation vs declarative FLIX);
//! * `shortest_paths` — §4.4 (FLIX lattice solve vs Dijkstra);
//! * `ablation` — the design-choice experiments of DESIGN.md (semi-naïve
//!   vs naïve, indexes vs scans, parallel vs sequential, native lattice vs
//!   powerset embedding).
//!
//! The `tables` binary regenerates the paper's tables as text:
//! `cargo run --release -p flix-bench --bin tables -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod json;
pub mod metrics;
pub mod regress;

use std::time::{Duration, Instant};

/// Times one invocation of `f`, returning its result and the elapsed time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in seconds with millisecond resolution, matching
/// the paper's "Time (s)" columns.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
