//! A process-wide registry of instrumented solver runs, written out as
//! one `flix-metrics/1` JSON document (the schema of DESIGN.md §10, the
//! same report `flixr --metrics-json` produces).
//!
//! Each bench registers one representative *instrumented* solve per
//! workload via [`record`] — separate from the timed iterations, so the
//! profile never perturbs the measurements. When the bench binary was
//! invoked with `--metrics-json PATH` (or with the `FLIX_METRICS_JSON`
//! environment variable set), `criterion_main!` ends by calling
//! [`write_if_requested`], which renders every recorded run to `PATH` —
//! the `BENCH_*.json` files tracking the perf trajectory.
//!
//! Rendering and file output go through
//! [`flix_core::write_metrics_json`] / [`OwnedMetricsReport`] — the
//! same code path `flixr --metrics-json` uses — so the two producers of
//! `flix-metrics/1` documents cannot drift apart.

use flix_core::{
    render_metrics_json, write_metrics_json, MetricsReport, OwnedMetricsReport, SolveStats,
};
use std::sync::Mutex;

static REGISTRY: Mutex<Vec<OwnedMetricsReport>> = Mutex::new(Vec::new());

/// Records one instrumented solve under `name` (convention:
/// `<group>/<benchmark-id>`), in registration order.
pub fn record(name: impl Into<String>, strategy: &'static str, threads: usize, stats: &SolveStats) {
    REGISTRY
        .lock()
        .expect("metrics registry")
        .push(OwnedMetricsReport {
            name: name.into(),
            strategy: strategy.to_string(),
            threads,
            stats: stats.clone(),
        });
}

/// Renders every recorded run as the `flix-metrics/1` JSON document.
pub fn render() -> String {
    let runs = REGISTRY.lock().expect("metrics registry");
    let reports: Vec<MetricsReport<'_>> = runs.iter().map(|r| r.as_report()).collect();
    render_metrics_json(&reports)
}

/// The output path requested via `--metrics-json PATH` on the command
/// line, or the `FLIX_METRICS_JSON` environment variable.
fn requested_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--metrics-json" {
            return args.next();
        }
        if let Some(path) = arg.strip_prefix("--metrics-json=") {
            return Some(path.to_string());
        }
    }
    std::env::var("FLIX_METRICS_JSON").ok()
}

/// Writes the recorded runs to the requested path, if any. Called by
/// `criterion_main!` after every benchmark group has run; a no-op when
/// no path was requested or nothing was recorded.
pub fn write_if_requested() {
    let Some(path) = requested_path() else {
        return;
    };
    let runs = REGISTRY.lock().expect("metrics registry");
    if runs.is_empty() {
        eprintln!("metrics: no instrumented runs recorded; not writing {path}");
        return;
    }
    match write_metrics_json(&path, &runs) {
        Ok(()) => println!("metrics: wrote {path}"),
        Err(e) => {
            eprintln!("metrics: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_renders_recorded_runs_in_order() {
        let stats = SolveStats::default();
        record("unit/first", "semi-naive", 1, &stats);
        record("unit/second", "naive", 4, &stats);
        let json = render();
        assert!(json.contains("\"schema\": \"flix-metrics/1\""), "{json}");
        let first = json.find("unit/first").expect("first run present");
        let second = json.find("unit/second").expect("second run present");
        assert!(first < second, "runs render in registration order");
    }
}
