//! `regression` — compare fresh bench metrics against committed
//! baselines and fail on wall-time regressions.
//!
//! ```text
//! regression [--tolerance FRACTION] BASELINE.json FRESH.json [BASELINE FRESH ...]
//! ```
//!
//! Each positional pair is a committed `BENCH_*.json` baseline and a
//! freshly produced metrics document (both `flix-metrics/1`). Every
//! baseline run is matched by name; a fresh wall time more than
//! `--tolerance` (default 0.30, i.e. ±30%) *slower* than its baseline
//! fails the check. Speed-ups beyond the tolerance and membership
//! changes are reported but never fail — CI noise only pushes one way.
//!
//! Exit codes: 0 all within tolerance, 1 usage/I/O/parse error,
//! 2 at least one regression.

use flix_bench::json;
use flix_bench::regress::{any_regression, compare, extract_runs, Comparison, RunTime, Verdict};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(message) => {
            eprintln!("regression: {message}");
            ExitCode::from(1)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut tolerance = 0.30f64;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let f = it.next().ok_or("--tolerance requires a fraction")?;
                tolerance = f.parse().map_err(|_| format!("invalid tolerance {f:?}"))?;
                if !tolerance.is_finite() || tolerance <= 0.0 {
                    return Err(format!("tolerance must be a positive fraction, got {f}"));
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: regression [--tolerance FRACTION] \
                     BASELINE.json FRESH.json [BASELINE FRESH ...]"
                );
                return Ok(true);
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() || !paths.len().is_multiple_of(2) {
        return Err("expected BASELINE FRESH file pairs; see --help".into());
    }

    let mut all: Vec<Comparison> = Vec::new();
    for pair in paths.chunks(2) {
        let baseline = load(&pair[0])?;
        let fresh = load(&pair[1])?;
        all.extend(compare(&baseline, &fresh, tolerance));
    }

    for c in &all {
        let base_ms = c.baseline_ns as f64 / 1e6;
        let fresh_ms = c.fresh_ns as f64 / 1e6;
        match &c.verdict {
            Verdict::Within { ratio } => {
                println!(
                    "ok       {:<45} {base_ms:>10.3}ms -> {fresh_ms:>10.3}ms ({:+.1}%)",
                    c.name,
                    (ratio - 1.0) * 100.0
                );
            }
            Verdict::Faster { ratio } => {
                println!(
                    "faster   {:<45} {base_ms:>10.3}ms -> {fresh_ms:>10.3}ms ({:+.1}%)",
                    c.name,
                    (ratio - 1.0) * 100.0
                );
            }
            Verdict::Slower { ratio } => {
                println!(
                    "SLOWER   {:<45} {base_ms:>10.3}ms -> {fresh_ms:>10.3}ms ({:+.1}%)",
                    c.name,
                    (ratio - 1.0) * 100.0
                );
            }
            Verdict::Missing => {
                println!(
                    "missing  {:<45} {base_ms:>10.3}ms -> (not measured)",
                    c.name
                );
            }
        }
    }

    let regressions: Vec<&Comparison> = all
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::Slower { .. }))
        .collect();
    if any_regression(&all) {
        eprintln!(
            "regression: {} of {} runs regressed beyond {:.0}% tolerance",
            regressions.len(),
            all.len(),
            tolerance * 100.0
        );
        return Ok(false);
    }
    println!(
        "regression: all {} runs within {:.0}% tolerance",
        all.len(),
        tolerance * 100.0
    );
    Ok(true)
}

fn load(path: &str) -> Result<Vec<RunTime>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    extract_runs(&doc).map_err(|e| format!("{path}: {e}"))
}
