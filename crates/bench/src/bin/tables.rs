//! `tables` — regenerate the evaluation tables of the FLIX paper.
//!
//! ```text
//! tables table1 [--scale F] [--timeout SECS] [--seed N]
//! tables table2 [--scale F] [--seed N]
//! tables shortest-paths
//! tables all [--scale F]
//! ```
//!
//! Workloads are the DESIGN.md substitutions (synthetic programs scaled to
//! the paper's per-benchmark sizes); absolute times are not expected to
//! match the paper's 2016 hardware, but the *shape* should: Table 1's
//! DLV ≫ FLIX ≫ C++ with DLV failing to scale, and Table 2's declarative
//! IFDS within a small constant factor of the imperative solver.
//!
//! An engine that exceeds the timeout budget — by measurement, or by
//! extrapolation from its previous row (quadratic in the fact-count
//! ratio) — is skipped for that and all larger rows, mirroring the
//! paper's 15-minute-timeout dashes without burning hours.

use flix_analyses::ide::linear_constant::LinearConstant;
use flix_analyses::ifds::problems::Taint;
use flix_analyses::workloads::{c_program, graphs, jvm_program};
use flix_analyses::{ide, ifds, shortest_paths, strong_update};
use flix_bench::{secs, timed};
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut scale = 0.02f64;
    let mut timeout = Duration::from_secs(60);
    let mut seed = 0xF11Cu64;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale requires a number");
            }
            "--timeout" => {
                timeout = Duration::from_secs(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout requires seconds"),
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed requires a number");
            }
            "table1" | "table2" | "shortest-paths" | "all" => command = Some(arg),
            other => {
                eprintln!("unknown argument {other}; see the module docs");
                return std::process::ExitCode::FAILURE;
            }
        }
    }

    match command.as_deref() {
        Some("table1") => table1(scale, timeout, seed),
        Some("table2") => table2(scale, seed),
        Some("shortest-paths") => table_shortest_paths(seed),
        Some("all") | None => {
            table1(scale, timeout, seed);
            println!();
            table2(scale, seed);
            println!();
            table_shortest_paths(seed);
        }
        Some(_) => unreachable!("validated above"),
    }
    std::process::ExitCode::SUCCESS
}

/// Table 1: Strong Update — DLV (powerset Datalog) vs FLIX vs C++
/// (imperative), per SPEC benchmark row.
fn table1(scale: f64, timeout: Duration, seed: u64) {
    println!(
        "Table 1 — Strong Update analysis (workload scale {scale}, timeout {}s)",
        timeout.as_secs()
    );
    println!(
        "paper columns are the published 2016 numbers; measured columns are this reproduction\n"
    );
    println!(
        "{:<16} {:>6} {:>8} | {:>10} {:>10} {:>10} | {:>9} {:>9} | {:>10} {:>10}",
        "Benchmark",
        "kSLOC",
        "Facts",
        "DLV (s)",
        "Flix (s)",
        "C++ (s)",
        "paperDLV",
        "paperFlix",
        "DLV facts",
        "Flix facts"
    );

    let mut dlv_dead = false;
    let mut flix_dead = false;
    let mut last_dlv: Option<(usize, Duration)> = None;
    let mut last_flix: Option<(usize, Duration)> = None;

    for row in c_program::TABLE_1 {
        let input = c_program::generate_row(row, scale, seed);
        let facts = input.fact_count();

        let (_, cxx_time) = timed(|| strong_update::imperative::analyze(&input));

        let flix_cell: String;
        let mut flix_facts_cell = "-".to_string();
        if !flix_dead && !exceeds_budget(&last_flix, facts, timeout) {
            let (result, time) = timed(|| strong_update::flix::analyze(&input));
            if time > timeout {
                flix_dead = true;
                flix_cell = "timeout".into();
            } else {
                flix_cell = secs(time);
                flix_facts_cell = result.derived_facts.to_string();
                last_flix = Some((facts, time));
            }
        } else if flix_dead {
            flix_cell = "-".into();
        } else {
            flix_dead = true;
            flix_cell = "timeout*".into();
        }

        let dlv_cell: String;
        let mut dlv_facts_cell = "-".to_string();
        if !dlv_dead && !exceeds_budget(&last_dlv, facts, timeout) {
            let (result, time) = timed(|| strong_update::datalog::analyze(&input));
            if time > timeout {
                dlv_dead = true;
                dlv_cell = "timeout".into();
            } else {
                dlv_cell = secs(time);
                dlv_facts_cell = result.derived_facts.to_string();
                last_dlv = Some((facts, time));
            }
        } else if dlv_dead {
            dlv_cell = "-".into();
        } else {
            dlv_dead = true;
            dlv_cell = "timeout*".into();
        }

        let paper_dlv = if row.dlv_finished { "ok" } else { "t/o" };
        let paper_flix = if row.flix_finished { "ok" } else { "t/o" };
        println!(
            "{:<16} {:>6.1} {:>8} | {:>10} {:>10} {:>10} | {:>9} {:>9} | {:>10} {:>10}",
            row.name,
            row.ksloc_x10 as f64 / 10.0,
            facts,
            dlv_cell,
            flix_cell,
            secs(cxx_time),
            paper_dlv,
            paper_flix,
            dlv_facts_cell,
            flix_facts_cell,
        );
    }
    println!("\n(timeout* = skipped: extrapolated past the budget from the previous row)");
}

/// Quadratic extrapolation from the engine's previous row: skip when the
/// predicted time exceeds the budget.
fn exceeds_budget(last: &Option<(usize, Duration)>, facts: usize, timeout: Duration) -> bool {
    match last {
        None => false,
        Some((prev_facts, prev_time)) => {
            let ratio = facts as f64 / (*prev_facts).max(1) as f64;
            prev_time.as_secs_f64() * ratio * ratio > timeout.as_secs_f64()
        }
    }
}

/// Table 2: IFDS — imperative tabulation vs declarative FLIX.
fn table2(scale: f64, seed: u64) {
    println!("Table 2 — IFDS analysis (workload scale {scale})");
    println!("paper slowdown is the published Scala-vs-Flix ratio\n");
    println!(
        "{:<10} {:>7} | {:>12} {:>10} {:>9} | {:>11}",
        "Program", "Nodes", "Imperative(s)", "Flix (s)", "Slowdown", "paperSlow"
    );
    for row in jvm_program::TABLE_2 {
        let model = Arc::new(jvm_program::generate(jvm_program::params_for_row(
            row, scale, seed,
        )));
        let problem = Arc::new(Taint::new(model.clone()));
        let (imp_result, imp_time) =
            timed(|| ifds::imperative::solve(&model.graph, problem.as_ref()));
        let (flix_result, flix_time) = timed(|| ifds::flix::solve(&model.graph, problem.clone()));
        assert_eq!(imp_result, flix_result, "solvers disagree on {}", row.name);
        let slowdown = flix_time.as_secs_f64() / imp_time.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>7} | {:>12} {:>10} {:>8.1}x | {:>10.1}x",
            row.name,
            model.graph.num_nodes,
            secs(imp_time),
            secs(flix_time),
            slowdown,
            row.slowdown_x10 as f64 / 10.0,
        );
    }

    // A bonus row: the IDE generalisation on the largest workload the
    // paper discusses conceptually (§4.3).
    let model = Arc::new(jvm_program::generate(jvm_program::params_for_row(
        &jvm_program::TABLE_2[0],
        scale,
        seed,
    )));
    let problem = Arc::new(LinearConstant::new(model.clone()));
    let (imp, imp_time) = timed(|| ide::imperative::solve(&model.graph, problem.as_ref()));
    let (flix, flix_time) = timed(|| ide::flix::solve(&model.graph, problem.clone()));
    assert_eq!(imp.values, flix.values, "IDE solvers disagree");
    println!(
        "{:<10} {:>7} | {:>12} {:>10} {:>8.1}x | {:>11}",
        "ide-lcp",
        model.graph.num_nodes,
        secs(imp_time),
        secs(flix_time),
        flix_time.as_secs_f64() / imp_time.as_secs_f64().max(1e-9),
        "(§4.3)",
    );
}

/// §4.4: shortest paths, FLIX vs Dijkstra.
fn table_shortest_paths(seed: u64) {
    println!("§4.4 — all-pairs shortest paths on the (N ∪ ∞, min) lattice\n");
    println!(
        "{:<8} {:>7} | {:>10} {:>12}",
        "Nodes", "Edges", "Flix (s)", "Dijkstra (s)"
    );
    for &(nodes, extra) in &[(50u32, 150usize), (150, 500), (400, 1_500)] {
        let graph = graphs::generate(nodes, extra, seed);
        let (flix_dist, flix_time) = timed(|| shortest_paths::single_source(&graph, 0));
        let (ref_dist, ref_time) = timed(|| graphs::dijkstra(&graph, 0));
        assert_eq!(flix_dist, ref_dist, "solvers disagree at {nodes} nodes");
        println!(
            "{:<8} {:>7} | {:>10} {:>12}",
            nodes,
            graph.edges.len(),
            secs(flix_time),
            secs(ref_time)
        );
    }
}
