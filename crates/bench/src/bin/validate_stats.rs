//! Schema validator for `flixd-stats/1` telemetry documents.
//!
//! ```text
//! validate_stats [--require-nonzero OP[,OP...]] [FILE]
//! ```
//!
//! Reads the document from `FILE` (or stdin when omitted), checks every
//! field the schema promises (DESIGN.md §17.6) is present with the
//! right shape, and — with `--require-nonzero` — that the named request
//! ops recorded at least one request and one latency sample. CI pipes
//! `flixr --connect SOCKET --stats` through this after its smoke
//! workload, so a telemetry regression that silently stops counting
//! fails the build.

use flix_bench::json::{parse, Json};
use std::io::Read;
use std::process::ExitCode;

/// Every op slot the `requests` object must carry, in schema order.
const OPS: &[&str] = &[
    "query", "facts", "explain", "metrics", "trace", "status", "stats", "update", "compact",
    "shutdown",
];

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("validate_stats: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut require_nonzero: Vec<String> = Vec::new();
    let mut file: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-nonzero" => match it.next() {
                Some(ops) => require_nonzero.extend(ops.split(',').map(str::to_string)),
                None => return fail("--require-nonzero requires a comma-separated op list"),
            },
            "--help" | "-h" => {
                println!("usage: validate_stats [--require-nonzero OP[,OP...]] [FILE]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return fail(format!("unknown option {other}")),
            path => file = Some(path.to_string()),
        }
    }
    for op in &require_nonzero {
        if !OPS.contains(&op.as_str()) {
            return fail(format!("--require-nonzero: unknown op {op:?}"));
        }
    }

    let text = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => return fail(format!("cannot read {path}: {e}")),
        },
        None => {
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                return fail(format!("cannot read stdin: {e}"));
            }
            text
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => return fail(format!("document is not JSON: {e}")),
    };
    match validate(&doc, &require_nonzero) {
        Ok(summary) => {
            println!("validate_stats: ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn validate(doc: &Json, require_nonzero: &[String]) -> Result<String, String> {
    let field = |parent: &Json, path: &str, key: &str| -> Result<Json, String> {
        parent
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing field {path}{key}"))
    };
    let counter = |parent: &Json, path: &str, key: &str| -> Result<u64, String> {
        field(parent, path, key)?
            .as_u64()
            .ok_or_else(|| format!("{path}{key} is not a non-negative integer"))
    };
    let number = |parent: &Json, path: &str, key: &str| -> Result<f64, String> {
        field(parent, path, key)?
            .as_f64()
            .ok_or_else(|| format!("{path}{key} is not a number"))
    };
    let boolean = |parent: &Json, path: &str, key: &str| -> Result<(), String> {
        match field(parent, path, key)? {
            Json::Bool(_) => Ok(()),
            _ => Err(format!("{path}{key} is not a boolean")),
        }
    };
    let histogram = |parent: &Json, path: &str, key: &str| -> Result<u64, String> {
        let hist = field(parent, path, key)?;
        let prefix = format!("{path}{key}.");
        let count = counter(&hist, &prefix, "count")?;
        counter(&hist, &prefix, "sum")?;
        counter(&hist, &prefix, "max")?;
        let buckets = field(&hist, &prefix, "buckets")?;
        let buckets = buckets
            .as_array()
            .ok_or_else(|| format!("{prefix}buckets is not an array"))?;
        if buckets.len() != 40 {
            return Err(format!(
                "{prefix}buckets has {} buckets, want 40",
                buckets.len()
            ));
        }
        let bucketed: u64 = buckets
            .iter()
            .map(|b| {
                b.as_u64()
                    .ok_or_else(|| format!("{prefix}buckets entry is not a count"))
            })
            .sum::<Result<u64, _>>()?;
        // A render racing a recorder may see a bucketed-but-uncounted
        // sample; the reverse would mean the ordering invariant broke.
        if bucketed < count {
            return Err(format!(
                "{prefix}count is {count} but the buckets hold only {bucketed} samples"
            ));
        }
        Ok(count)
    };

    match doc.get("schema").and_then(Json::as_str) {
        Some("flixd-stats/1") => {}
        Some(other) => return Err(format!("schema is {other:?}, want \"flixd-stats/1\"")),
        None => return Err("missing field schema".into()),
    }
    let epoch = counter(doc, "", "epoch")?;
    number(doc, "", "uptime_secs")?;
    counter(doc, "", "facts")?;

    let connections = field(doc, "", "connections")?;
    for key in ["opened", "closed", "active"] {
        counter(&connections, "connections.", key)?;
    }

    let requests = field(doc, "", "requests")?;
    let mut total_requests = 0u64;
    for op in OPS {
        let slot = field(&requests, "requests.", op)?;
        let prefix = format!("requests.{op}.");
        let count = counter(&slot, &prefix, "count")?;
        counter(&slot, &prefix, "bytes_in")?;
        counter(&slot, &prefix, "bytes_out")?;
        let errors = field(&slot, &prefix, "errors")?;
        if !matches!(errors, Json::Obj(_)) {
            return Err(format!("{prefix}errors is not an object"));
        }
        let samples = histogram(&slot, &prefix, "latency_ns")?;
        // The request counter bumps before the latency sample lands, so
        // a racing render may briefly see one more request than sample.
        if samples > count {
            return Err(format!(
                "{prefix}count is {count} but latency_ns recorded {samples} samples"
            ));
        }
        total_requests += count;
        if require_nonzero.iter().any(|want| want == op) && (count == 0 || samples == 0) {
            return Err(format!(
                "requests.{op} recorded {count} requests / {samples} latency samples \
                 but was required non-zero"
            ));
        }
    }

    counter(doc, "", "proto_errors")?;
    counter(doc, "", "slow_queries")?;
    counter(doc, "", "metrics_cache_hits")?;

    let writer = field(doc, "", "writer")?;
    for key in [
        "batches_applied",
        "batches_failed",
        "updates_applied",
        "pending_updates",
        "unapplied_durable",
    ] {
        counter(&writer, "writer.", key)?;
    }
    number(&writer, "writer.", "carryover_age_secs")?;
    for key in [
        "entries_per_batch",
        "riders_per_batch",
        "resume_ns",
        "wal_append_ns",
        "publish_gap_ns",
    ] {
        histogram(&writer, "writer.", key)?;
    }

    let compaction = field(doc, "", "compaction")?;
    counter(&compaction, "compaction.", "count")?;
    counter(&compaction, "compaction.", "failed")?;

    let recovery = field(doc, "", "recovery")?;
    for key in ["performed", "snapshot_loaded", "scratch_solve"] {
        boolean(&recovery, "recovery.", key)?;
    }
    for key in [
        "wal_frames_replayed",
        "wal_entries_replayed",
        "wal_bytes_dropped",
    ] {
        counter(&recovery, "recovery.", key)?;
    }

    let events = field(doc, "", "events")?;
    counter(&events, "events.", "logged")?;
    counter(&events, "events.", "dropped")?;

    Ok(format!("epoch {epoch}, {total_requests} requests recorded"))
}
