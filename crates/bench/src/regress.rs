//! Bench-regression comparison: pair the runs of a freshly produced
//! `flix-metrics/1` document against a committed baseline and flag
//! wall-time regressions beyond a tolerance.
//!
//! The committed `BENCH_*.json` files track the perf trajectory of the
//! reproduction; the `regression` binary re-runs the benches in CI and
//! uses this module to fail the job when a workload got more than
//! `tolerance` slower than its committed baseline. Speed-ups and
//! membership changes (runs added or removed) are reported but never
//! fail — wall-clock noise on shared CI runners only ever pushes one
//! way, so only the slow direction is load-bearing.

use crate::json::Json;

/// One run's identity and wall time, extracted from a metrics document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTime {
    /// The run's registered name (`<group>/<benchmark-id>`).
    pub name: String,
    /// Wall time of the instrumented solve, in nanoseconds.
    pub wall_ns: u64,
}

/// Extracts the named wall times from a parsed `flix-metrics/1`
/// document, validating the schema marker.
pub fn extract_runs(doc: &Json) -> Result<Vec<RunTime>, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("flix-metrics/1") => {}
        Some(other) => return Err(format!("unsupported schema {other:?}")),
        None => return Err("missing \"schema\" field".into()),
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("missing \"runs\" array")?;
    runs.iter()
        .enumerate()
        .map(|(i, run)| {
            let name = run
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("run #{i}: missing \"name\""))?
                .to_string();
            let wall_ns = run
                .get("wall_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("run {name:?}: missing \"wall_ns\""))?;
            Ok(RunTime { name, wall_ns })
        })
        .collect()
}

/// The outcome of comparing one baseline run against the fresh metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Within {
        /// fresh / baseline wall-time ratio.
        ratio: f64,
    },
    /// More than `tolerance` faster — informational.
    Faster {
        /// fresh / baseline wall-time ratio (below `1 - tolerance`).
        ratio: f64,
    },
    /// More than `tolerance` slower — this fails the check.
    Slower {
        /// fresh / baseline wall-time ratio (above `1 + tolerance`).
        ratio: f64,
    },
    /// Present in the baseline but absent from the fresh run.
    Missing,
}

/// One compared run.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The run's name.
    pub name: String,
    /// Baseline wall time, nanoseconds.
    pub baseline_ns: u64,
    /// Fresh wall time, nanoseconds (0 when [`Verdict::Missing`]).
    pub fresh_ns: u64,
    /// How the fresh time relates to the baseline.
    pub verdict: Verdict,
}

/// Compares every baseline run against the fresh measurements.
/// `tolerance` is a fraction: `0.30` allows ±30%. Runs only present in
/// the fresh document are ignored (new benches land before their
/// baseline is committed).
pub fn compare(baseline: &[RunTime], fresh: &[RunTime], tolerance: f64) -> Vec<Comparison> {
    baseline
        .iter()
        .map(|base| {
            let found = fresh.iter().find(|f| f.name == base.name);
            let (fresh_ns, verdict) = match found {
                None => (0, Verdict::Missing),
                Some(f) => {
                    // max(1) guards a degenerate zero-time baseline.
                    let ratio = f.wall_ns as f64 / base.wall_ns.max(1) as f64;
                    let verdict = if ratio > 1.0 + tolerance {
                        Verdict::Slower { ratio }
                    } else if ratio < 1.0 - tolerance {
                        Verdict::Faster { ratio }
                    } else {
                        Verdict::Within { ratio }
                    };
                    (f.wall_ns, verdict)
                }
            };
            Comparison {
                name: base.name.clone(),
                baseline_ns: base.wall_ns,
                fresh_ns,
                verdict,
            }
        })
        .collect()
}

/// True when any comparison is a hard failure ([`Verdict::Slower`]).
pub fn any_regression(comparisons: &[Comparison]) -> bool {
    comparisons
        .iter()
        .any(|c| matches!(c.verdict, Verdict::Slower { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn run(name: &str, wall_ns: u64) -> RunTime {
        RunTime {
            name: name.into(),
            wall_ns,
        }
    }

    #[test]
    fn extracts_runs_and_validates_schema() {
        let doc = parse(
            r#"{"schema": "flix-metrics/1", "runs": [
                {"name": "g/a", "wall_ns": 100, "rounds": 3},
                {"name": "g/b", "wall_ns": 200}
            ]}"#,
        )
        .expect("valid json");
        let runs = extract_runs(&doc).expect("valid metrics");
        assert_eq!(runs, vec![run("g/a", 100), run("g/b", 200)]);

        let wrong = parse(r#"{"schema": "flix-metrics/2", "runs": []}"#).expect("valid json");
        assert!(extract_runs(&wrong).is_err());
    }

    #[test]
    fn compare_classifies_all_directions() {
        let baseline = [
            run("a", 1000),
            run("b", 1000),
            run("c", 1000),
            run("d", 1000),
        ];
        let fresh = [run("a", 1100), run("b", 1500), run("c", 500)];
        let cmp = compare(&baseline, &fresh, 0.30);
        assert!(matches!(cmp[0].verdict, Verdict::Within { .. }), "{cmp:?}");
        assert!(matches!(cmp[1].verdict, Verdict::Slower { .. }), "{cmp:?}");
        assert!(matches!(cmp[2].verdict, Verdict::Faster { .. }), "{cmp:?}");
        assert!(matches!(cmp[3].verdict, Verdict::Missing), "{cmp:?}");
        assert!(any_regression(&cmp));
    }

    #[test]
    fn fresh_only_runs_are_ignored() {
        let cmp = compare(&[run("a", 100)], &[run("a", 100), run("new", 1)], 0.30);
        assert_eq!(cmp.len(), 1);
        assert!(!any_regression(&cmp));
    }
}
