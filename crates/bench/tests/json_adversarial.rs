//! Adversarial inputs for the hand-rolled `flix_bench::json` reader.
//!
//! The reader consumes files the bench tooling itself wrote, but it
//! also gets pointed at whatever path a CI step or a human passes to
//! the regression checker — so garbage must come back as a positioned
//! [`JsonError`], never a panic and never a stack-overflow abort.

use flix_bench::json::{parse, Json};

/// A representative valid document of each shape the tooling emits.
const DOCS: &[&str] = &[
    r#"{"schema": "flix-metrics/1", "runs": [{"name": "a", "wall_ns": 12345, "ok": true}]}"#,
    r#"{"traceEvents": [{"name": "solve", "cat": "solve", "ph": "X", "ts": 0.1, "dur": 2.5}]}"#,
    r#"[null, true, false, 0, -1, 3.5e-2, "str", {"k": []}]"#,
    "\"a\\u0041\\ud83d\\ude00\\n\"",
];

#[test]
fn every_truncation_of_a_valid_document_errors_cleanly() {
    for doc in DOCS {
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            // A prefix may still be valid JSON (e.g. "[1, 2" is not,
            // but "-1" truncated to "-1" is); what it must never do is
            // panic. Call through catch_unwind-free code: a panic here
            // fails the test on its own.
            let _ = parse(prefix);
        }
        assert!(parse(doc).is_ok(), "the untruncated document parses: {doc}");
    }
}

#[test]
fn deep_nesting_is_rejected_not_a_stack_overflow() {
    // Without a depth limit each of these would abort the process
    // (recursion-induced stack overflow is not a catchable panic).
    for bomb in [
        "[".repeat(100_000),
        "{\"k\":".repeat(100_000),
        format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000)),
    ] {
        let err = parse(&bomb).expect_err("nesting bomb is rejected");
        assert!(err.message.contains("nesting"), "{err}");
    }
}

#[test]
fn moderate_nesting_still_parses() {
    let depth = 200; // below the 256-level limit
    let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
    assert!(parse(&doc).is_ok());
}

#[test]
fn invalid_escapes_and_unicode_sequences_error_cleanly() {
    for bad in [
        r#""\x""#,           // unknown escape
        r#""\"#,             // escape at end of input
        r#""\u12""#,         // truncated \u
        r#""\uZZZZ""#,       // non-hex \u
        r#""\ud800""#,       // lone high surrogate
        r#""\ud800A""#,      // high surrogate + non-surrogate
        r#""\udc00""#,       // lone low surrogate
        r#""\ud83d\ud83d""#, // high surrogate twice
    ] {
        let err = parse(bad).expect_err(bad);
        assert!(err.at <= bad.len(), "offset stays in bounds: {err}");
    }
    // The well-formed pair still decodes.
    assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
}

#[test]
fn duplicate_keys_are_kept_in_order_and_get_returns_the_first() {
    let doc = parse(r#"{"k": 1, "k": 2, "j": 3}"#).expect("valid");
    assert_eq!(doc.get("k").and_then(Json::as_u64), Some(1));
    match &doc {
        Json::Obj(fields) => {
            assert_eq!(fields.len(), 3, "duplicates are kept, not collapsed");
        }
        other => panic!("expected an object, got {other:?}"),
    }
}

#[test]
fn malformed_numbers_and_literals_error_cleanly() {
    for bad in [
        "-", "+1", ".5", "1.", "1e", "1e+", "01x", "tru", "falsey", "nul", "nan", "Infinity",
        "--1", "1.2.3",
    ] {
        // "1." and "1e" are lenient-parse candidates in some readers;
        // here anything f64::from_str rejects is an error, and nothing
        // panics. ("falsey" fails on the trailing 'y', "01x" on 'x'.)
        let _ = parse(bad);
    }
    assert!(parse("-").is_err());
    assert!(parse("+1").is_err());
    assert!(parse("tru").is_err());
    assert!(parse("nan").is_err());
}

/// A tiny deterministic xorshift so the fuzz sweep needs no external
/// crate and reproduces bit-for-bit across runs.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn seeded_garbage_and_mutation_fuzz_never_panics() {
    let mut rng = XorShift(0x5907_2026);

    // Pure garbage: random bytes forced into a lossy string.
    for _ in 0..500 {
        let len = (rng.next() % 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
        let _ = parse(&String::from_utf8_lossy(&bytes));
    }

    // Structured garbage: valid documents with random single-char
    // mutations (delete, duplicate, replace) — the classic way to hit
    // parser states a human never writes.
    for doc in DOCS {
        for _ in 0..500 {
            let chars: Vec<char> = doc.chars().collect();
            let i = (rng.next() as usize) % chars.len();
            let mut mutated: String = chars[..i].iter().collect();
            match rng.next() % 3 {
                0 => {} // delete chars[i]
                1 => {
                    mutated.push(chars[i]);
                    mutated.push(chars[i]);
                }
                _ => mutated.push((b' ' + (rng.next() % 95) as u8) as char),
            }
            mutated.extend(&chars[i + 1..]);
            let _ = parse(&mutated);
        }
    }
}
