//! flix — a Rust reproduction of *From Datalog to FLIX: A Declarative
//! Language for Fixed Points on Lattices* (Madsen, Yee & Lhoták,
//! PLDI 2016).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`lattice`] — lattice traits, standard abstract domains, combinators,
//!   and law checkers ([`flix_lattice`]);
//! * [`core`] — the fixed-point engine: Datalog extended with lattices,
//!   monotone transfer functions, filter functions, choice bindings, and
//!   stratified negation, solved naïvely or semi-naïvely
//!   ([`flix_core`]);
//! * [`lang`] — the FLIX surface language: lexer, parser, type checker,
//!   interpreter, and lowering ([`flix_lang`]);
//! * [`analyses`] — the paper's case studies: points-to (Fig. 1), combined
//!   dataflow (Fig. 2), Strong Update (Fig. 4, three implementations),
//!   IFDS (Fig. 5), IDE (Figs. 6–7), shortest paths (§4.4), and the
//!   workload generators behind Tables 1 and 2 ([`flix_analyses`]).
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Example
//!
//! ```
//! use flix::{Solver, compile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile(
//!     "rel Edge(x: Int, y: Int);
//!      rel Path(x: Int, y: Int);
//!      Edge(1, 2). Edge(2, 3).
//!      Path(x, y) :- Edge(x, y).
//!      Path(x, z) :- Path(x, y), Edge(y, z).",
//! )?;
//! let solution = Solver::new().solve(&program)?;
//! assert!(solution.contains("Path", &[1.into(), 3.into()]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flix_analyses as analyses;
pub use flix_core as core;
pub use flix_lang as lang;
pub use flix_lattice as lattice;

pub use flix_core::{
    load_snapshot, program_fingerprint, save_snapshot, AscentConfig, AscentReport, AscentWarning,
    BodyItem, Budget, BudgetKind, CancelToken, ConfigError, Delta, DeltaError, DeltaLog, DeltaOp,
    DemandError, ExecutionTrace, Fact, FactsIter, Head, HeadTerm, LatticeIter, LatticeOps,
    Observer, PersistError, Program, ProgramBuilder, Query, QueryResult, RecoveryReport,
    RelationIter, Snapshot, Solution, SolveError, SolveFailure, Solver, SolverConfig, SpanKind,
    Strategy, Term, TraceConfig, Value, ValueLattice, WalRecovery,
};
pub use flix_lang::compile;
pub use flix_lattice::{HasTop, Lattice};
