//! Integration tests of the engine's declarative semantics through the
//! facade crate: the worked examples of §3.2, compositionality (§3.4),
//! and the direct product of analyses.

use flix::core::model;
use flix::core::ValueLattice;
use flix::lattice::{MinCost, Pair, Parity, Sign};
use flix::{
    BodyItem, Head, HeadTerm, Lattice, LatticeOps, ProgramBuilder, Solver, Strategy, Term, Value,
};

fn parity(p: Parity) -> Value {
    p.to_value()
}

/// §3.2, first worked example: A(Even). A(Odd). B(Odd). The minimal
/// compact model is I6 = {A(⊤), B(Odd)} — the paper walks I1..I6.
#[test]
fn section_3_2_parity_example_reaches_interpretation_i6() {
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 1, LatticeOps::of::<Parity>());
    let bb = b.lattice("B", 1, LatticeOps::of::<Parity>());
    b.fact(a, vec![parity(Parity::Even)]);
    b.fact(a, vec![parity(Parity::Odd)]);
    b.fact(bb, vec![parity(Parity::Odd)]);
    let program = b.build().expect("valid");
    let solution = Solver::new().solve(&program).expect("solves");

    assert_eq!(solution.lattice_value("A", &[]), Some(parity(Parity::Top)));
    assert_eq!(solution.lattice_value("B", &[]), Some(parity(Parity::Odd)));
    assert!(model::is_model(&program, &solution));
    assert!(model::is_locally_minimal(&program, &solution));
}

/// §3.2, second worked example, on the sign lattice: the minimal model is
/// I4 = {A(1, Pos), A(2, ⊤)}.
#[test]
fn section_3_2_sign_example_reaches_interpretation_i4() {
    let mut b = ProgramBuilder::new();
    let a = b.lattice("A", 2, LatticeOps::of::<Sign>());
    b.fact(a, vec![1.into(), Sign::Pos.to_value()]);
    b.fact(a, vec![2.into(), Sign::Pos.to_value()]);
    b.fact(a, vec![2.into(), Sign::Neg.to_value()]);
    let program = b.build().expect("valid");
    let solution = Solver::new().solve(&program).expect("solves");
    assert_eq!(
        solution.lattice_value("A", &[1.into()]),
        Some(Sign::Pos.to_value())
    );
    assert_eq!(
        solution.lattice_value("A", &[2.into()]),
        Some(Sign::Top.to_value())
    );
    assert!(model::is_locally_minimal(&program, &solution));
}

/// §3.4 compositionality: the model of the union of two programs sharing
/// predicates is computed by replaying both rule sets into one builder —
/// here the paper's conditional-constant-propagation sketch, miniaturised:
/// a reachability analysis and a parity analysis share `IsReachable`.
#[test]
fn section_3_4_composed_analyses_share_predicates() {
    let build = |include_parity: bool, include_reach: bool| {
        let mut b = ProgramBuilder::new();
        let edge = b.relation("Edge", 2);
        let reachable = b.relation("IsReachable", 1);
        let parity_of = b.lattice("ParityOf", 2, LatticeOps::of::<Parity>());
        b.fact(edge, vec![1.into(), 2.into()]);
        b.fact(edge, vec![2.into(), 3.into()]);
        b.fact(reachable, vec![1.into()]);
        b.fact(parity_of, vec![1.into(), Parity::Odd.to_value()]);
        if include_reach {
            // IsReachable(y) :- IsReachable(x), Edge(x, y).
            b.rule(
                Head::new(reachable, [HeadTerm::var("y")]),
                [
                    BodyItem::atom(reachable, [Term::var("x")]),
                    BodyItem::atom(edge, [Term::var("x"), Term::var("y")]),
                ],
            );
        }
        if include_parity {
            // ParityOf(y, p) :- Edge(x, y), IsReachable(y), ParityOf(x, p).
            b.rule(
                Head::new(parity_of, [HeadTerm::var("y"), HeadTerm::var("p")]),
                [
                    BodyItem::atom(edge, [Term::var("x"), Term::var("y")]),
                    BodyItem::atom(reachable, [Term::var("y")]),
                    BodyItem::atom(parity_of, [Term::var("x"), Term::var("p")]),
                ],
            );
        }
        Solver::new()
            .solve(&b.build().expect("valid"))
            .expect("solves")
    };

    // Alone, the parity analysis cannot flow past unproven reachability.
    let parity_alone = build(true, false);
    assert_eq!(
        parity_alone.lattice_value("ParityOf", &[3.into()]),
        Some(Parity::Bot.to_value())
    );
    // Composed, reachability feeds the parity rules.
    let composed = build(true, true);
    assert_eq!(
        composed.lattice_value("ParityOf", &[3.into()]),
        Some(Parity::Odd.to_value())
    );
}

/// §3.4: the direct product of two abstract domains as a single lattice
/// predicate over `Pair<Sign, Parity>`.
#[test]
fn direct_product_of_sign_and_parity() {
    type Sp = Pair<Sign, Parity>;

    fn to_value(p: &Sp) -> Value {
        Value::tuple([p.0.to_value(), p.1.to_value()])
    }
    fn from_value(v: &Value) -> Sp {
        let items = v.as_tuple().expect("pair");
        Pair(Sign::expect_from(&items[0]), Parity::expect_from(&items[1]))
    }
    let ops = LatticeOps::from_fns(
        "Sign×Parity",
        to_value(&Sp::bottom()),
        None,
        |a, b| from_value(a).leq(&from_value(b)),
        |a, b| to_value(&from_value(a).lub(&from_value(b))),
        |a, b| to_value(&from_value(a).glb(&from_value(b))),
    );

    let mut b = ProgramBuilder::new();
    let d = b.lattice("D", 2, ops);
    b.fact(d, vec![1.into(), to_value(&Pair(Sign::Pos, Parity::Even))]);
    b.fact(d, vec![1.into(), to_value(&Pair(Sign::Pos, Parity::Odd))]);
    let solution = Solver::new()
        .solve(&b.build().expect("valid"))
        .expect("solves");
    assert_eq!(
        solution.lattice_value("D", &[1.into()]),
        Some(to_value(&Pair(Sign::Pos, Parity::Top))),
        "componentwise join: signs agree, parities disagree"
    );
}

/// Strategies and configurations all land on the same minimal model.
#[test]
fn solver_configuration_matrix_agrees() {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        d.add_weight(args[1].as_int().expect("w") as u64).to_value()
    });
    b.fact(dist, vec![0.into(), MinCost::finite(0).to_value()]);
    for (x, y, w) in [(0, 1, 2), (1, 2, 2), (0, 2, 5), (2, 0, 1)] {
        b.fact(edge, vec![x.into(), y.into(), w.into()]);
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    let program = b.build().expect("valid");
    let reference = Solver::new().solve(&program).expect("solves");
    for solver in [
        Solver::new().strategy(Strategy::Naive),
        Solver::new().threads(4),
        Solver::new().use_indexes(false),
        Solver::new()
            .threads(2)
            .use_indexes(false)
            .strategy(Strategy::Naive),
    ] {
        let solution = solver.solve(&program).expect("solves");
        assert_eq!(solution.total_facts(), reference.total_facts());
        assert_eq!(
            solution.lattice_value("Dist", &[2.into()]),
            reference.lattice_value("Dist", &[2.into()])
        );
    }
}
