//! End-to-end tests of the FLIX surface language through the facade: the
//! programs of Figure 2 (points-to + parity dataflow) and Figure 4
//! (Strong Update), written in concrete FLIX syntax, compiled, solved,
//! and cross-checked against the Rust-API implementations.

use flix::core::ValueLattice;
use flix::lattice::SuLattice;
use flix::{Solver, Value};

fn v(s: &str) -> Value {
    Value::from(s)
}

/// Figure 4 of the paper, in the surface language. The `SULattice` enum,
/// the `filter` function, and the rules are transcribed from the figure;
/// `Preserve` is expressed as `!Kill` (see DESIGN.md), and the head term
/// `SULattice.Single(b)` becomes the transfer function `single(b)` (the
/// engine's heads take one function application, not constructor terms
/// with free variables).
const STRONG_UPDATE_FLIX: &str = r#"
    enum SULattice {
      case Top,
      case Single(Str),
      case Bottom
    }

    def leq(e1: SULattice, e2: SULattice): Bool =
      match (e1, e2) with {
        case (SULattice.Bottom, _) => true
        case (_, SULattice.Top) => true
        case (SULattice.Single(a), SULattice.Single(b)) => a == b
        case _ => false
      }

    def lub(e1: SULattice, e2: SULattice): SULattice =
      match (e1, e2) with {
        case (SULattice.Bottom, x) => x
        case (x, SULattice.Bottom) => x
        case (SULattice.Single(a), SULattice.Single(b)) =>
          if (a == b) SULattice.Single(a) else SULattice.Top
        case _ => SULattice.Top
      }

    def glb(e1: SULattice, e2: SULattice): SULattice =
      match (e1, e2) with {
        case (SULattice.Top, x) => x
        case (x, SULattice.Top) => x
        case (SULattice.Single(a), SULattice.Single(b)) =>
          if (a == b) SULattice.Single(a) else SULattice.Bottom
        case _ => SULattice.Bottom
      }

    let SULattice<> = (SULattice.Bottom, SULattice.Top, leq, lub, glb);

    def filter(t: SULattice, b: Str): Bool =
      match t with {
        case SULattice.Bottom => false
        case SULattice.Single(p) => b == p
        case SULattice.Top => true
      }

    def single(b: Str): SULattice = SULattice.Single(b)

    rel AddrOf(p: Str, a: Str);
    rel Copy(p: Str, q: Str);
    rel Load(l: Int, p: Str, q: Str);
    rel Store(l: Int, p: Str, q: Str);
    rel CFG(l1: Int, l2: Int);
    rel Kill(l: Int, a: Str);

    rel Pt(p: Str, a: Str);
    rel PtH(a: Str, b: Str);
    rel PtSU(l: Int, a: Str, b: Str);
    lat SUBefore(l: Int, a: Str, SULattice<>);
    lat SUAfter(l: Int, a: Str, SULattice<>);

    Pt(p, a) :- AddrOf(p, a).
    Pt(p, a) :- Copy(p, q), Pt(q, a).
    Pt(p, b) :- Load(l, p, q), Pt(q, a), PtSU(l, a, b).
    PtH(a, b) :- Store(l, p, q), Pt(p, a), Pt(q, b).

    SUBefore(l2, a, t) :- CFG(l1, l2), SUAfter(l1, a, t).
    SUAfter(l, a, t) :- SUBefore(l, a, t), !Kill(l, a).
    SUAfter(l, a, single(b)) :- Store(l, p, q), Pt(p, a), Pt(q, b).

    PtSU(l, a, b) :- PtH(a, b), SUBefore(l, a, t), filter(t, b).

    // The example program of strong_update::example_program():
    //   p = &o0; q = &o1; r = &o2;
    //   l1: *p = r   (strong: pt(p) = {o0})
    //   l2: s = *p
    AddrOf("p", "o0").
    AddrOf("q", "o1").
    AddrOf("r", "o2").
    Store(1, "p", "r").
    Load(2, "s", "p").
    CFG(0, 1).
    CFG(1, 2).
    Kill(1, "o0").
"#;

#[test]
fn figure_4_strong_update_in_surface_syntax() {
    let program = flix::compile(STRONG_UPDATE_FLIX).expect("Figure 4 compiles");
    let solution = Solver::new().solve(&program).expect("solves");

    // The strong update means s reads exactly {o2}.
    assert!(solution.contains("Pt", &[v("s"), v("o2")]));
    assert!(!solution.contains("Pt", &[v("s"), v("o0")]));
    assert!(solution.contains("PtH", &[v("o0"), v("o2")]));
    // SUAfter(1, o0) = Single("o2").
    assert_eq!(
        solution.lattice_value("SUAfter", &[1.into(), v("o0")]),
        Some(Value::tag("Single", v("o2")))
    );
    // And it propagates along CFG to SUBefore(2, o0).
    assert_eq!(
        solution.lattice_value("SUBefore", &[2.into(), v("o0")]),
        Some(Value::tag("Single", v("o2")))
    );
}

#[test]
fn surface_figure_4_agrees_with_rust_api_figure_4() {
    use flix::analyses::strong_update::{self, example_program};

    let program = flix::compile(STRONG_UPDATE_FLIX).expect("compiles");
    let surface = Solver::new().solve(&program).expect("solves");
    let api = strong_update::flix::analyze(&example_program());

    // Compare the SUAfter cells modulo the value encoding.
    let mut surface_cells = std::collections::BTreeMap::new();
    for (key, value) in surface.lattice("SUAfter").expect("declared") {
        let l = key[0].as_int().expect("label") as u32;
        let a = strong_update::parse_obj(key[1].as_str().expect("obj"));
        surface_cells.insert((l, a), SuLattice::expect_from(value));
    }
    assert_eq!(surface_cells, api.su_after);

    // Compare Pt relations ("p","q","r","s" map to ids 0..3).
    let var_id = |name: &str| match name {
        "p" => 0u32,
        "q" => 1,
        "r" => 2,
        "s" => 3,
        other => panic!("unexpected variable {other}"),
    };
    let surface_pt: std::collections::BTreeSet<(u32, u32)> = surface
        .relation("Pt")
        .expect("declared")
        .map(|row| {
            (
                var_id(row[0].as_str().expect("var")),
                strong_update::parse_obj(row[1].as_str().expect("obj")),
            )
        })
        .collect();
    assert_eq!(surface_pt, api.pt);
}

/// The full Figure 2 program (parity lattice, transfer + filter
/// functions) in surface syntax — compiled and checked against the
/// Rust-API `dataflow` analysis on the same input.
#[test]
fn figure_2_surface_agrees_with_rust_api() {
    let source = r#"
        enum Parity { case Top, case Even, case Odd, case Bot }
        def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
          case (Parity.Bot, _) => true
          case (Parity.Even, Parity.Even) => true
          case (Parity.Odd, Parity.Odd) => true
          case (_, Parity.Top) => true
          case _ => false
        }
        def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
          case (Parity.Bot, x) => x
          case (x, Parity.Bot) => x
          case (Parity.Even, Parity.Even) => Parity.Even
          case (Parity.Odd, Parity.Odd) => Parity.Odd
          case _ => Parity.Top
        }
        def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
          case (Parity.Top, x) => x
          case (x, Parity.Top) => x
          case (Parity.Even, Parity.Even) => Parity.Even
          case (Parity.Odd, Parity.Odd) => Parity.Odd
          case _ => Parity.Bot
        }
        let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);

        def isMaybeZero(e: Parity): Bool = match e with {
          case Parity.Even => true
          case Parity.Top => true
          case _ => false
        }
        def sum(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
          case (Parity.Bot, _) => Parity.Bot
          case (_, Parity.Bot) => Parity.Bot
          case (Parity.Top, _) => Parity.Top
          case (_, Parity.Top) => Parity.Top
          case (Parity.Even, Parity.Even) => Parity.Even
          case (Parity.Odd, Parity.Odd) => Parity.Even
          case _ => Parity.Odd
        }
        def alpha(n: Int): Parity = if (n % 2 == 0) Parity.Even else Parity.Odd

        rel New(v: Str, o: Str);
        rel Assign(l: Str, r: Str);
        rel Load(v: Str, b: Str, f: Str);
        rel Store(b: Str, f: Str, r: Str);
        rel VarPointsTo(v: Str, o: Str);
        rel HeapPointsTo(o: Str, f: Str, t: Str);
        rel Int(v: Str, n: Int);
        rel AddExp(r: Str, v1: Str, v2: Str);
        rel DivExp(r: Str, v1: Str, v2: Str);
        rel ArithmeticError(r: Str);
        lat IntVar(v: Str, Parity<>);
        lat IntField(o: Str, f: Str, Parity<>);

        VarPointsTo(v1, h1) :- New(v1, h1).
        VarPointsTo(v1, h2) :- Assign(v1, v2), VarPointsTo(v2, h2).
        VarPointsTo(v1, h2) :- Load(v1, v2, f), VarPointsTo(v2, h1),
                               HeapPointsTo(h1, f, h2).
        HeapPointsTo(h1, f, h2) :- Store(v1, f, v2), VarPointsTo(v1, h1),
                                   VarPointsTo(v2, h2).

        IntVar(v, alpha(n)) :- Int(v, n).
        IntVar(v, i) :- Assign(v, v2), IntVar(v2, i).
        IntVar(v, i) :- Load(v, v2, f), VarPointsTo(v2, h), IntField(h, f, i).
        IntField(h, f, i) :- Store(v1, f, v2), VarPointsTo(v1, h), IntVar(v2, i).
        IntVar(r, sum(i1, i2)) :- AddExp(r, v1, v2), IntVar(v1, i1), IntVar(v2, i2).
        ArithmeticError(r) :- DivExp(r, v1, v2), IntVar(v2, i2), isMaybeZero(i2).

        New("o", "H").
        Int("a", 3). Int("x", 10).
        Store("o", "f", "a").
        Load("b", "o", "f").
        AddExp("c", "b", "b").
        DivExp("d", "x", "c").
        DivExp("e", "x", "b").
    "#;
    let program = flix::compile(source).expect("Figure 2 compiles");
    let surface = Solver::new().solve(&program).expect("solves");

    let api = flix::analyses::dataflow::analyze(&flix::analyses::dataflow::example_input());

    for (var, parity) in &api.int_var {
        assert_eq!(
            surface.lattice_value("IntVar", &[v(var)]),
            Some(parity.to_value()),
            "IntVar({var})"
        );
    }
    let surface_errors: std::collections::BTreeSet<String> = surface
        .relation("ArithmeticError")
        .expect("declared")
        .map(|row| row[0].as_str().expect("var").to_string())
        .collect();
    assert_eq!(surface_errors, api.arithmetic_errors);
}
