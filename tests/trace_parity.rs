//! Trace parity and export-schema tests over the paper's workloads:
//! the §4.4 shortest-paths lattice program and the Figure 5 IFDS
//! analysis, each solved naïvely, semi-naïvely, and on four threads
//! with tracing enabled. The Chrome trace-event export is parsed back
//! with the bench crate's JSON reader and schema-validated — valid
//! `ph:"X"` events, per-track metadata, rule-evals nested inside
//! rounds inside strata — and span counts must agree with the solver's
//! own statistics in every configuration.

use flix::analyses::ifds::{self, problems};
use flix::analyses::shortest_paths;
use flix::analyses::workloads::{graphs, jvm_program};
use flix::{Program, Solver, Strategy, TraceConfig};
use flix_bench::json::{self, Json};
use std::sync::Arc;

fn shortest_paths_program() -> Program {
    let graph = graphs::generate(50, 150, 0x5907);
    shortest_paths::build_single_source(&graph, 0)
}

fn figure5_ifds_program() -> Program {
    let model = Arc::new(jvm_program::generate(jvm_program::GenParams {
        num_procs: 4,
        nodes_per_proc: 10,
        vars_per_proc: 4,
        call_percent: 20,
        seed: 0xF165,
    }));
    let problem = Arc::new(problems::Taint::new(model.clone()));
    ifds::flix::build_program(&model.graph, problem)
}

/// One traced solve; returns `(round spans, rule-eval spans, stats
/// rounds, stats rule evaluations, chrome JSON)`.
fn traced_solve(program: &Program, solver: Solver) -> (u64, u64, u64, u64, String) {
    let solution = solver
        .trace(TraceConfig::default())
        .solve(program)
        .expect("solves");
    let stats = solution.stats();
    let trace = solution.trace().expect("trace was recorded");
    let rounds = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, flix::SpanKind::Round { .. }))
        .count() as u64;
    let evals = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, flix::SpanKind::RuleEval { .. }))
        .count() as u64;
    (
        rounds,
        evals,
        stats.rounds,
        stats.rule_evaluations,
        trace.to_chrome_json(),
    )
}

/// Schema-validates a Chrome trace-event document: every event is a
/// well-formed `ph:"X"` complete event or `ph:"M"` metadata record,
/// tracks are contiguous and named, and the span hierarchy nests by
/// time window (rule inside round inside stratum inside solve).
fn validate_chrome_export(text: &str) {
    let doc = json::parse(text).expect("chrome export is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    assert!(doc.get("droppedEvents").and_then(Json::as_u64).is_some());
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // (ts, dur) windows per category, for the nesting checks below.
    let mut spans: Vec<(String, f64, f64, u64)> = Vec::new(); // cat, ts, end, tid
    let mut tracks: Vec<u64> = Vec::new();
    let mut named_tracks = 0u64;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph field");
        assert_eq!(event.get("pid").and_then(Json::as_u64), Some(1));
        let tid = event.get("tid").and_then(Json::as_u64).expect("tid field");
        let name = event.get("name").and_then(Json::as_str).expect("name");
        assert!(!name.is_empty());
        match ph {
            "M" => {
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata record {name}"
                );
                if name == "thread_name" {
                    named_tracks += 1;
                    tracks.push(tid);
                }
            }
            "X" => {
                let ts = event.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = event.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                let cat = event
                    .get("cat")
                    .and_then(Json::as_str)
                    .expect("cat")
                    .to_string();
                spans.push((cat, ts, ts + dur, tid));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // Every span's track carries a thread_name record.
    for (_, _, _, tid) in &spans {
        assert!(tracks.contains(tid), "unnamed track {tid}");
    }
    assert_eq!(named_tracks as usize, tracks.len(), "one name per track");

    // Timestamps are microseconds rounded to 3 decimals; containment
    // checks tolerate one rounding step on each side.
    const EPS: f64 = 0.002;
    let contained = |inner: &(String, f64, f64, u64), cat: &str| {
        spans
            .iter()
            .any(|outer| outer.0 == cat && outer.1 <= inner.1 + EPS && inner.2 <= outer.2 + EPS)
    };
    for span in &spans {
        match span.0.as_str() {
            "rule" => assert!(contained(span, "round"), "rule span outside any round"),
            "round" => assert!(contained(span, "stratum"), "round span outside any stratum"),
            "stratum" | "phase" => {
                assert!(contained(span, "solve"), "{} span outside solve", span.0)
            }
            "solve" => {}
            other => panic!("unexpected span category {other:?}"),
        }
    }
}

#[test]
fn shortest_paths_trace_parity_across_configurations() {
    let program = shortest_paths_program();
    let semi = traced_solve(&program, Solver::new());
    let naive = traced_solve(&program, Solver::new().strategy(Strategy::Naive));
    let parallel = traced_solve(&program, Solver::new().threads(4));

    for (label, run) in [("semi", &semi), ("naive", &naive), ("parallel", &parallel)] {
        assert_eq!(run.0, run.2, "{label}: one round span per round");
        assert_eq!(run.1, run.3, "{label}: one span per rule evaluation");
        validate_chrome_export(&run.4);
    }
    // Thread count must not change what was evaluated, only where.
    assert_eq!(semi.0, parallel.0, "same rounds sequential vs 4-thread");
    assert_eq!(
        semi.1, parallel.1,
        "same evaluations sequential vs 4-thread"
    );
}

#[test]
fn figure5_ifds_trace_parity_across_configurations() {
    let program = figure5_ifds_program();
    let semi = traced_solve(&program, Solver::new());
    let naive = traced_solve(&program, Solver::new().strategy(Strategy::Naive));
    let parallel = traced_solve(&program, Solver::new().threads(4));

    for (label, run) in [("semi", &semi), ("naive", &naive), ("parallel", &parallel)] {
        assert_eq!(run.0, run.2, "{label}: one round span per round");
        assert_eq!(run.1, run.3, "{label}: one span per rule evaluation");
        validate_chrome_export(&run.4);
    }
    assert_eq!(semi.0, parallel.0, "same rounds sequential vs 4-thread");
    assert_eq!(
        semi.1, parallel.1,
        "same evaluations sequential vs 4-thread"
    );
}

#[test]
fn parallel_ifds_trace_uses_worker_tracks() {
    let program = figure5_ifds_program();
    let solution = Solver::new()
        .threads(4)
        .trace(TraceConfig::default())
        .solve(&program)
        .expect("solves");
    let trace = solution.trace().expect("trace was recorded");
    assert!(
        trace.workers() >= 1,
        "a 4-thread solve of a 6-rule program records worker tracks"
    );
    let worker_evals = trace
        .events()
        .iter()
        .filter(|e| e.tid > 0 && matches!(e.kind, flix::SpanKind::RuleEval { .. }))
        .count();
    assert!(
        worker_evals > 0,
        "rule evaluations land on the worker tracks that ran them"
    );
}
