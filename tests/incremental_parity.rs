//! Incremental parity: `Solver::resume` must agree **cell-for-cell** with
//! a from-scratch solve after every update in a randomized sequence of
//! monotone deltas, under every evaluation strategy.
//!
//! The workloads are the paper's case studies: single-source shortest
//! paths (§4.4, with both edge insertions and direct `Dist` lattice
//! raises), the Figure 2 combined dataflow analysis (randomized fact
//! splits across all nine input relations), and the Figure 5 IFDS
//! encoding (CFG edges withheld from a generated JVM-shaped supergraph
//! and re-added incrementally).
//!
//! Sequence count: 15 shortest-paths seeds + 12 dataflow seeds + 8 IFDS
//! seeds = 35 seeded update sequences, each run under 3 configurations
//! (naive, semi-naive, semi-naive x4) = 105 sequences total, each with
//! 2–3 chained resume steps compared against a scratch solve.

use flix::analyses::dataflow::{self, DataflowInput};
use flix::analyses::ifds::{self, problems::Taint};
use flix::analyses::points_to::PointsToInput;
use flix::analyses::workloads::jvm_program::{self, GenParams};
use flix::lattice::MinCost;
use flix::{
    BodyItem, Delta, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solution, Solver,
    SolverConfig, Strategy, Term, Value, ValueLattice,
};
use std::sync::Arc;

/// The three configurations under comparison; the parallel one is built
/// through the `SolverConfig` constructor to exercise both API surfaces.
fn configurations() -> Vec<(&'static str, Solver)> {
    vec![
        ("naive", Solver::new().strategy(Strategy::Naive)),
        ("semi-naive", Solver::new()),
        (
            "semi-naive x4",
            Solver::with_config(SolverConfig {
                threads: 4,
                ..SolverConfig::default()
            })
            .expect("valid config"),
        ),
    ]
}

/// Canonical sorted dump of the whole model through the unified fact
/// view, so two solutions can be compared for cell-for-cell equality.
fn dump(program: &Program, solution: &Solution) -> Vec<String> {
    let mut lines = Vec::new();
    for (_, decl) in program.predicates() {
        let name = decl.name();
        for fact in solution.facts(name).expect("declared predicate") {
            lines.push(format!("{name}({fact})"));
        }
    }
    lines.sort();
    lines
}

/// Runs one update sequence under every configuration: solve the base
/// program, then apply each delta with `resume` and assert the result is
/// identical to solving the matching scratch program from nothing.
fn assert_incremental_parity(label: &str, base: &Program, steps: &[(Delta, Program)]) {
    for (config, solver) in configurations() {
        let mut current = solver.solve(base).expect("base solves");
        for (i, (delta, scratch_program)) in steps.iter().enumerate() {
            current = solver
                .resume(base, &current, delta)
                .unwrap_or_else(|f| panic!("{label}/{config} step {i}: {}", f.error));
            let scratch = solver.solve(scratch_program).expect("scratch solves");
            assert_eq!(
                dump(base, &current),
                dump(scratch_program, &scratch),
                "{label}/{config}: resume diverged from scratch at step {i}"
            );
        }
    }
}

/// Tiny deterministic xorshift generator so sequences are seeded and
/// reproducible without external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------
// Workload 1: single-source shortest paths (§4.4).
// ---------------------------------------------------------------------

/// The §4.4 program over explicit edges plus extra `Dist` seeds — the
/// scratch mirror of a delta that both inserts edges and lub-raises
/// cells.
fn sp_program(edges: &[(u32, u32, u64)], dist_seeds: &[(u32, u64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let dist = b.lattice("Dist", 2, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    for &(x, y, c) in edges {
        b.fact(
            edge,
            vec![(x as i64).into(), (y as i64).into(), (c as i64).into()],
        );
    }
    b.fact(dist, vec![0i64.into(), MinCost::finite(0).to_value()]);
    for &(n, c) in dist_seeds {
        b.fact(dist, vec![(n as i64).into(), MinCost::finite(c).to_value()]);
    }
    b.rule(
        Head::new(
            dist,
            [
                HeadTerm::var("y"),
                HeadTerm::app(extend, [Term::var("d"), Term::var("c")]),
            ],
        ),
        [
            BodyItem::atom(dist, [Term::var("x"), Term::var("d")]),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );
    b.build().expect("valid program")
}

#[test]
fn shortest_paths_update_sequences_match_scratch() {
    const NODES: u64 = 30;
    for seed in 0..15u64 {
        let mut rng = Rng::new(seed + 1);
        // A random base graph plus a pool of withheld edges.
        let mut all_edges: Vec<(u32, u32, u64)> = Vec::new();
        for _ in 0..70 {
            let x = rng.below(NODES) as u32;
            let y = rng.below(NODES) as u32;
            let c = rng.below(9) + 1;
            if x != y {
                all_edges.push((x, y, c));
            }
        }
        let split = all_edges.len() - 9;
        let base_edges = &all_edges[..split];
        let base = sp_program(base_edges, &[]);

        let mut steps = Vec::new();
        let mut edges_so_far = base_edges.to_vec();
        let mut raises_so_far: Vec<(u32, u64)> = Vec::new();
        for step in 0..3 {
            let chunk = &all_edges[split + step * 3..split + (step + 1) * 3];
            let mut delta = Delta::new();
            for &(x, y, c) in chunk {
                edges_so_far.push((x, y, c));
                delta.push(
                    "Edge",
                    vec![(x as i64).into(), (y as i64).into(), (c as i64).into()],
                );
            }
            // Every other step also lub-raises a Dist cell directly, as
            // if a better path to that node appeared out of band.
            if step % 2 == 1 {
                let node = rng.below(NODES) as u32;
                let cost = rng.below(4) + 1;
                raises_so_far.push((node, cost));
                delta = delta.raise(
                    "Dist",
                    vec![(node as i64).into()],
                    MinCost::finite(cost).to_value(),
                );
            }
            steps.push((delta, sp_program(&edges_so_far, &raises_so_far)));
        }
        assert_incremental_parity(&format!("shortest-paths seed {seed}"), &base, &steps);
    }
}

// ---------------------------------------------------------------------
// Workload 2: Figure 2 combined dataflow.
// ---------------------------------------------------------------------

/// One input fact of the Figure 2 analysis, tagged by relation.
#[derive(Clone)]
enum DfFact {
    New(String, String),
    Assign(String, String),
    Load(String, String, String),
    Store(String, String, String),
    Int(String, i64),
    Add(String, String, String),
    Div(String, String, String),
}

fn df_input(facts: &[DfFact]) -> DataflowInput {
    let mut input = DataflowInput {
        points_to: PointsToInput::default(),
        ..DataflowInput::default()
    };
    for fact in facts {
        match fact.clone() {
            DfFact::New(a, b) => input.points_to.new.push((a, b)),
            DfFact::Assign(a, b) => input.points_to.assign.push((a, b)),
            DfFact::Load(a, b, c) => input.points_to.load.push((a, b, c)),
            DfFact::Store(a, b, c) => input.points_to.store.push((a, b, c)),
            DfFact::Int(a, n) => input.int_const.push((a, n)),
            DfFact::Add(a, b, c) => input.add_exp.push((a, b, c)),
            DfFact::Div(a, b, c) => input.div_exp.push((a, b, c)),
        }
    }
    input
}

fn df_delta(facts: &[DfFact]) -> Delta {
    let s = |x: &String| Value::from(x.as_str());
    let mut delta = Delta::new();
    for fact in facts {
        match fact {
            DfFact::New(a, b) => delta.push("New", vec![s(a), s(b)]),
            DfFact::Assign(a, b) => delta.push("Assign", vec![s(a), s(b)]),
            DfFact::Load(a, b, c) => delta.push("Load", vec![s(a), s(b), s(c)]),
            DfFact::Store(a, b, c) => delta.push("Store", vec![s(a), s(b), s(c)]),
            DfFact::Int(a, n) => delta.push("Int", vec![s(a), Value::Int(*n)]),
            DfFact::Add(a, b, c) => delta.push("AddExp", vec![s(a), s(b), s(c)]),
            DfFact::Div(a, b, c) => delta.push("DivExp", vec![s(a), s(b), s(c)]),
        }
    }
    delta
}

#[test]
fn dataflow_update_sequences_match_scratch() {
    for seed in 0..12u64 {
        let mut rng = Rng::new(seed + 101);
        let var = |rng: &mut Rng| format!("v{}", rng.below(8));
        let obj = |rng: &mut Rng| format!("h{}", rng.below(4));
        let field = |rng: &mut Rng| format!("f{}", rng.below(3));
        // A randomized program over a small universe of variables,
        // objects, and fields, touching every input relation.
        let mut all: Vec<DfFact> = Vec::new();
        for _ in 0..5 {
            all.push(DfFact::New(var(&mut rng), obj(&mut rng)));
        }
        for _ in 0..5 {
            all.push(DfFact::Assign(var(&mut rng), var(&mut rng)));
        }
        for _ in 0..3 {
            all.push(DfFact::Store(var(&mut rng), field(&mut rng), var(&mut rng)));
        }
        for _ in 0..3 {
            all.push(DfFact::Load(var(&mut rng), var(&mut rng), field(&mut rng)));
        }
        for _ in 0..4 {
            all.push(DfFact::Int(var(&mut rng), rng.below(20) as i64));
        }
        for _ in 0..3 {
            all.push(DfFact::Add(var(&mut rng), var(&mut rng), var(&mut rng)));
        }
        for _ in 0..2 {
            all.push(DfFact::Div(var(&mut rng), var(&mut rng), var(&mut rng)));
        }
        // Shuffle so each category is split across base and deltas.
        for i in (1..all.len()).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            all.swap(i, j);
        }
        let split = all.len() * 3 / 5;
        let base = dataflow::build_program(&df_input(&all[..split]));
        let rest = &all[split..];
        let per_step = rest.len() / 3;
        let mut steps = Vec::new();
        let mut upto = split;
        for step in 0..3 {
            let end = if step == 2 {
                all.len()
            } else {
                upto + per_step
            };
            let delta = df_delta(&all[upto..end]);
            upto = end;
            steps.push((delta, dataflow::build_program(&df_input(&all[..upto]))));
        }
        assert_incremental_parity(&format!("dataflow seed {seed}"), &base, &steps);
    }
}

// ---------------------------------------------------------------------
// Workload 3: Figure 5 IFDS on a generated JVM-shaped supergraph.
// ---------------------------------------------------------------------

#[test]
fn ifds_update_sequences_match_scratch() {
    for seed in 0..8u64 {
        let model = Arc::new(jvm_program::generate(GenParams {
            num_procs: 4,
            nodes_per_proc: 8,
            vars_per_proc: 4,
            call_percent: 15,
            seed: seed + 31,
        }));
        let problem = Arc::new(Taint::new(model.clone()));
        // Withhold the last six CFG edges and re-add them in two chunks;
        // the flow functions are per-node closures over the full model,
        // so a CFG-edge subset is a valid smaller supergraph.
        let full_cfg = model.graph.cfg.clone();
        assert!(full_cfg.len() > 8, "generated graph too small");
        let withheld = 6;
        let split = full_cfg.len() - withheld;
        let mut base_graph = model.graph.clone();
        base_graph.cfg.truncate(split);
        let base = ifds::flix::build_program(&base_graph, problem.clone());

        let mut steps = Vec::new();
        for step in 0..2 {
            let upto = split + (step + 1) * (withheld / 2);
            let mut delta = Delta::new();
            for &(n, m) in &full_cfg[split + step * (withheld / 2)..upto] {
                delta.push("CFG", vec![(n as i64).into(), (m as i64).into()]);
            }
            let mut scratch_graph = model.graph.clone();
            scratch_graph.cfg.truncate(upto);
            steps.push((
                delta,
                ifds::flix::build_program(&scratch_graph, problem.clone()),
            ));
        }
        assert_incremental_parity(&format!("IFDS seed {seed}"), &base, &steps);
    }
}

// ---------------------------------------------------------------------
// Workload 4: mixed insert/retract/raise/lower sequences.
// ---------------------------------------------------------------------

/// The three configurations again, plus provenance-recording variants of
/// each — with an event log the retracting steps take the exact
/// over-delete/re-derive path; without one they fall back to a scratch
/// solve. Parity must hold either way.
fn mixed_configurations() -> Vec<(String, Solver)> {
    let mut all = Vec::new();
    for (name, solver) in configurations() {
        all.push((name.to_string(), solver));
    }
    for (name, solver) in configurations() {
        all.push((
            format!("{name} +provenance"),
            solver.record_provenance(true),
        ));
    }
    all
}

#[test]
fn mixed_update_sequences_match_scratch() {
    const NODES: u64 = 20;
    for seed in 0..10u64 {
        let mut rng = Rng::new(seed + 977);
        // A random base graph; every edge is a candidate for retraction.
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for _ in 0..45 {
            let x = rng.below(NODES) as u32;
            let y = rng.below(NODES) as u32;
            let c = rng.below(9) + 1;
            if x != y && !edges.iter().any(|&(a, b, _)| (a, b) == (x, y)) {
                edges.push((x, y, c));
            }
        }
        let withheld = 6.min(edges.len() / 3);
        let split = edges.len() - withheld;
        let base_edges: Vec<(u32, u32, u64)> = edges[..split].to_vec();
        let base = sp_program(&base_edges, &[]);

        // Chain four steps: each inserts a withheld edge, retracts a
        // present one, and on alternating steps raises or lowers a Dist
        // cell out of band. Each step's scratch mirror is rebuilt from
        // the tracked current state.
        let mut current_edges = base_edges.clone();
        let mut pool: Vec<(u32, u32, u64)> = edges[split..].to_vec();
        let mut raises: Vec<(u32, u64)> = Vec::new();
        let mut steps = Vec::new();
        for step in 0..4 {
            let mut delta = Delta::new();
            if let Some(edge) = pool.pop() {
                current_edges.push(edge);
                delta.push(
                    "Edge",
                    vec![
                        (edge.0 as i64).into(),
                        (edge.1 as i64).into(),
                        (edge.2 as i64).into(),
                    ],
                );
            }
            if !current_edges.is_empty() {
                let victim = rng.below(current_edges.len() as u64) as usize;
                let (x, y, c) = current_edges.remove(victim);
                delta = delta.retract(
                    "Edge",
                    vec![(x as i64).into(), (y as i64).into(), (c as i64).into()],
                );
            }
            if step % 2 == 0 {
                let node = rng.below(NODES) as u32;
                let cost = rng.below(4) + 1;
                raises.push((node, cost));
                delta = delta.raise(
                    "Dist",
                    vec![(node as i64).into()],
                    MinCost::finite(cost).to_value(),
                );
            } else if let Some((node, cost)) = raises.pop() {
                // Withdraw the most recent out-of-band raise; the cell
                // re-settles at the lub of its remaining justifications.
                delta = delta.lower(
                    "Dist",
                    vec![(node as i64).into()],
                    MinCost::finite(cost).to_value(),
                );
            }
            // Every step also carries cancelled pairs — an insertion
            // retracted and a raise lowered within the same delta. They
            // have no net effect on the store, so they must not leak
            // into the resumed model (the scratch mirror ignores them).
            // Weights ≥ 100 and costs ≥ 50 cannot collide with real
            // edges (1..=9) or tracked raises (1..=4), so the pairs
            // cancel exactly instead of retracting live assertions.
            let px = rng.below(NODES) as i64;
            let py = rng.below(NODES) as i64;
            let phantom = vec![px.into(), py.into(), (100 + step as i64).into()];
            delta = delta
                .insert("Edge", phantom.clone())
                .retract("Edge", phantom);
            let pnode = rng.below(NODES) as i64;
            let pcost = MinCost::finite(50 + step as u64).to_value();
            delta = delta
                .raise("Dist", vec![pnode.into()], pcost.clone())
                .lower("Dist", vec![pnode.into()], pcost);
            steps.push((delta, sp_program(&current_edges, &raises)));
        }

        for (config, solver) in mixed_configurations() {
            let label = format!("mixed seed {seed}/{config}");
            let mut current = solver.solve(&base).expect("base solves");
            for (i, (delta, scratch_program)) in steps.iter().enumerate() {
                current = solver
                    .resume(&base, &current, delta)
                    .unwrap_or_else(|f| panic!("{label} step {i}: {}", f.error));
                let scratch = solver.solve(scratch_program).expect("scratch solves");
                assert_eq!(
                    dump(&base, &current),
                    dump(scratch_program, &scratch),
                    "{label}: resume diverged from scratch at step {i}"
                );
            }
        }
    }
}
