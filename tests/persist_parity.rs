//! Persistence parity through the facade: the paper's own models —
//! the Figure 2 worked example and the Figure 5 IFDS encoding — must
//! survive a save → load → save round trip byte-identically, and
//! on-disk corruption (inflicted with plain `std::fs`, no internal
//! fault hooks) must recover to exactly what a scratch solve produces.

use flix::analyses::dataflow;
use flix::analyses::ifds::{self, problems};
use flix::analyses::workloads::jvm_program::{self, GenParams};
use flix::{load_snapshot, save_snapshot, Delta, DeltaLog, Program, Solution, Solver};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A fresh per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("flix-persist-parity-{}-{test}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Canonical rendering of a model: every fact of every predicate,
/// sorted — the equality used by all parity assertions below.
fn dump(program: &Program, solution: &Solution) -> Vec<String> {
    let mut lines = Vec::new();
    for (_, decl) in program.predicates() {
        let name = decl.name();
        for fact in solution.facts(name).expect("declared predicate") {
            lines.push(format!("{name}({fact})"));
        }
    }
    lines.sort();
    lines
}

/// save → load → save; asserts the two files are byte-identical and
/// returns the loaded model for content checks.
fn round_trip(dir: &Scratch, program: &Program, solution: &Solution) -> Solution {
    let first = dir.path("first.snap");
    let second = dir.path("second.snap");
    save_snapshot(&first, program, solution).expect("save");
    let loaded = load_snapshot(&first, program).expect("load");
    save_snapshot(&second, program, &loaded).expect("re-save");
    let a = std::fs::read(&first).expect("first bytes");
    let b = std::fs::read(&second).expect("second bytes");
    assert_eq!(a, b, "save -> load -> save is byte-identical");
    loaded
}

#[test]
fn figure_2_worked_example_round_trips_byte_identically() {
    let dir = Scratch::new("figure2");
    let input = dataflow::example_input();
    let program = dataflow::build_program(&input);
    let solution = Solver::new().solve(&program).expect("Figure 2 solves");
    let loaded = round_trip(&dir, &program, &solution);
    assert_eq!(dump(&program, &solution), dump(&program, &loaded));
    // The division-by-zero client found its bug in the loaded model too.
    assert!(dump(&program, &loaded)
        .iter()
        .any(|l| l.starts_with("ArithmeticError(")));
}

#[test]
fn figure_5_ifds_model_round_trips_byte_identically() {
    let dir = Scratch::new("ifds");
    let model = Arc::new(jvm_program::generate(GenParams {
        num_procs: 4,
        nodes_per_proc: 10,
        vars_per_proc: 4,
        call_percent: 20,
        seed: 0x5907,
    }));
    let problem = Arc::new(problems::Taint::new(model.clone()));
    let program = ifds::flix::build_program(&model.graph, problem);
    let solution = Solver::new().solve(&program).expect("IFDS solves");
    let loaded = round_trip(&dir, &program, &solution);
    assert_eq!(dump(&program, &solution), dump(&program, &loaded));
    assert!(solution.total_facts() > 0);
}

fn paths_program() -> Program {
    flix::compile(
        "rel Edge(x: Int, y: Int);
         rel Path(x: Int, y: Int);
         Edge(1, 2). Edge(2, 3).
         Path(x, y) :- Edge(x, y).
         Path(x, z) :- Path(x, y), Edge(y, z).",
    )
    .expect("compiles")
}

fn edge_delta(x: i64, y: i64) -> Delta {
    let mut delta = Delta::new();
    delta.push("Edge", vec![x.into(), y.into()]);
    delta
}

/// Flip one mid-file bit with nothing but `std::fs` — the kind of
/// damage a real disk or an interrupted copy inflicts.
fn flip_a_bit(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(path, &bytes).expect("write corrupted");
}

#[test]
fn corrupt_snapshot_recovery_matches_a_scratch_solve() {
    let dir = Scratch::new("corrupt-snap");
    let snap = dir.path("model.snap");
    let wal = dir.path("model.wal");
    let program = paths_program();
    let solver = Solver::new();

    let solution = solver.solve(&program).expect("solves");
    save_snapshot(&snap, &program, &solution).expect("save");
    flip_a_bit(&snap);

    let (recovered, report) = solver.recover(&program, &snap, &wal).expect("recovers");
    assert!(report.scratch_solve, "the snapshot was rejected");
    assert!(report.snapshot_error.is_some());
    assert_eq!(dump(&program, &recovered), dump(&program, &solution));
}

#[test]
fn truncated_wal_recovery_replays_the_surviving_prefix() {
    let dir = Scratch::new("truncated-wal");
    let snap = dir.path("model.snap");
    let wal = dir.path("model.wal");
    let program = paths_program();
    let solver = Solver::new();

    // Base model on disk, two deltas in the log.
    let base = solver.solve(&program).expect("solves");
    save_snapshot(&snap, &program, &base).expect("save");
    let (mut log, _) = DeltaLog::open(&wal, &program).expect("open log");
    log.append(&edge_delta(3, 4)).expect("append");
    let intact_len = std::fs::metadata(&wal).expect("metadata").len();
    log.append(&edge_delta(4, 5)).expect("append");
    drop(log);

    // Chop the second frame in half: a torn final append.
    let bytes = std::fs::read(&wal).expect("read log");
    let cut = (intact_len as usize + bytes.len()) / 2;
    std::fs::write(&wal, &bytes[..cut]).expect("tear log");

    let (recovered, report) = solver.recover(&program, &snap, &wal).expect("recovers");
    assert_eq!(report.wal_frames_replayed, 1, "only the intact frame");
    assert!(report.wal_bytes_dropped > 0);

    // Parity: base + the surviving delta, solved from scratch.
    let expected_program = program.with_delta(&edge_delta(3, 4)).expect("with delta");
    let expected = solver.solve(&expected_program).expect("solves");
    assert_eq!(dump(&program, &recovered), dump(&program, &expected));
    let lines = dump(&program, &recovered);
    assert!(lines.contains(&"Path(1, 4)".to_string()), "{lines:?}");
    assert!(!lines.contains(&"Path(1, 5)".to_string()), "{lines:?}");
}
