//! End-to-end integration of the §2 analyses and §4.4 shortest paths
//! through the facade crate, plus the engine statistics the benchmark
//! tables report.

use flix::analyses::points_to::{self, PointsToInput};
use flix::analyses::workloads::graphs;
use flix::analyses::{dataflow, shortest_paths};
use flix::lattice::Parity;

#[test]
fn section_2_1_points_to_question() {
    let result = points_to::analyze(&PointsToInput::section_2_1_example());
    assert!(result.may_point_to("r", "A"), "the paper's Q/A");
    assert!(!result.may_point_to("r", "B"));
}

#[test]
fn figure_2_division_by_zero_client() {
    let result = dataflow::analyze(&dataflow::example_input());
    assert_eq!(result.int_var["c"], Parity::Even);
    assert!(result.arithmetic_errors.contains("d"));
    assert!(!result.arithmetic_errors.contains("e"));
}

#[test]
fn shortest_paths_match_dijkstra_on_larger_graphs() {
    for seed in [1u64, 2] {
        let graph = graphs::generate(60, 200, seed);
        assert_eq!(
            shortest_paths::single_source(&graph, 0),
            graphs::dijkstra(&graph, 0),
            "seed {seed}"
        );
    }
}

#[test]
fn all_pairs_is_consistent_with_single_source() {
    let graph = graphs::generate(15, 30, 5);
    let apsp = shortest_paths::all_pairs(&graph);
    for s in 0..graph.num_nodes {
        let single = shortest_paths::single_source(&graph, s);
        for (n, d) in single.iter().enumerate() {
            assert_eq!(apsp.get(&(s, n as u32)), d.as_ref());
        }
    }
}

#[test]
fn solver_statistics_are_populated() {
    let program = points_to::build_program(&PointsToInput::section_2_1_example());
    let solution = flix::Solver::new().solve(&program).expect("solves");
    let stats = solution.stats();
    assert!(stats.rounds >= 2, "at least seed + one delta round");
    assert!(stats.rule_evaluations > 0);
    assert!(stats.facts_derived > 0);
    assert!(stats.facts_inserted >= stats.total_facts);
    assert_eq!(stats.strata, 1, "Figure 1 has no negation");
}

#[test]
fn semi_naive_does_less_work_than_naive() {
    // The §3.7 efficiency claim, measured via the engine's own counters
    // on a workload big enough to show it.
    let graph = graphs::generate(40, 120, 9);
    let program = shortest_paths::build_single_source(&graph, 0);
    let semi = flix::Solver::new().solve(&program).expect("solves");
    let naive = flix::Solver::new()
        .strategy(flix::Strategy::Naive)
        .solve(&program)
        .expect("solves");
    assert!(
        semi.stats().facts_derived < naive.stats().facts_derived,
        "semi-naive derived {} facts, naive {}",
        semi.stats().facts_derived,
        naive.stats().facts_derived
    );
    assert_eq!(semi.total_facts(), naive.total_facts());
}
