//! Integration tests of the IFDS (Figure 5) and IDE (Figures 6–7)
//! formulations through the facade, including the paper's structural
//! claim — "IDE is a generalization of IFDS" — as executable assertions.

use flix::analyses::ide::{self, linear_constant::LinearConstant, IdentityIde};
use flix::analyses::ifds::{self, problems};
use flix::analyses::workloads::jvm_program::{self, GenParams};
use flix::lattice::{Constant, Flat, Transformer};
use flix::Strategy;
use std::sync::Arc;

fn medium_model() -> Arc<jvm_program::ProgramModel> {
    Arc::new(jvm_program::generate(GenParams {
        num_procs: 6,
        nodes_per_proc: 12,
        vars_per_proc: 5,
        call_percent: 20,
        seed: 0x1DE5,
    }))
}

#[test]
fn declarative_ifds_equals_imperative_at_medium_scale() {
    let model = medium_model();
    let problem = Arc::new(problems::Taint::new(model.clone()));
    let imperative = ifds::imperative::solve(&model.graph, problem.as_ref());
    let declarative = ifds::flix::solve(&model.graph, problem);
    assert_eq!(imperative, declarative);
    assert!(!imperative.is_empty());
}

#[test]
fn declarative_ifds_strategies_agree() {
    let model = medium_model();
    let problem = Arc::new(problems::UninitVars::new(model.clone()));
    let semi = ifds::flix::solve(&model.graph, problem.clone());
    let naive = ifds::flix::solve_with(
        &model.graph,
        problem.clone(),
        &flix::Solver::new().strategy(Strategy::Naive),
    );
    let parallel = ifds::flix::solve_with(&model.graph, problem, &flix::Solver::new().threads(4));
    assert_eq!(semi, naive);
    assert_eq!(semi, parallel);
}

#[test]
fn declarative_ide_equals_imperative_at_medium_scale() {
    let model = medium_model();
    let problem = Arc::new(LinearConstant::new(model.clone()));
    let imperative = ide::imperative::solve(&model.graph, problem.as_ref());
    let declarative = ide::flix::solve(&model.graph, problem);
    assert_eq!(imperative.values, declarative.values);
    assert!(!imperative.values.is_empty());
}

/// §4.3's claim as a theorem over random programs: IDE with identity
/// micro-functions computes exactly the IFDS solution, for both problems.
#[test]
fn ide_generalises_ifds() {
    for seed in [1u64, 2, 3, 4] {
        let model = Arc::new(jvm_program::generate(GenParams {
            num_procs: 4,
            nodes_per_proc: 9,
            vars_per_proc: 4,
            call_percent: 25,
            seed,
        }));
        let ifds_result =
            ifds::imperative::solve(&model.graph, &problems::Taint::new(model.clone()));
        let ide_result = ide::imperative::solve(
            &model.graph,
            &IdentityIde(problems::Taint::new(model.clone())),
        );
        assert_eq!(ide_result.reachable(), ifds_result, "seed {seed}");
    }
}

/// The micro-function algebra of Figure 7 drives real constant values
/// through calls: a callee computing `2x + 1` applied to the constant 3.
#[test]
fn ide_tracks_linear_constants_through_calls() {
    use flix::analyses::ifds::{CallSite, ProcInfo, Supergraph};
    use jvm_program::{ProgramModel, Stmt};
    // main: n0 | n1 a=3 | n2 r=f(a) | n3 end     f: n4 | n5 ret=2*p+1 | n6 end
    // vars: a=0, r=1 (main); p=2, ret=3 (f)
    let model = Arc::new(ProgramModel {
        graph: Supergraph {
            num_nodes: 7,
            procs: vec![ProcInfo { start: 0, end: 3 }, ProcInfo { start: 4, end: 6 }],
            cfg: vec![(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)],
            calls: vec![CallSite { call: 2, target: 1 }],
            proc_of: vec![0, 0, 0, 0, 1, 1, 1],
        },
        stmts: vec![
            Stmt::Nop,
            Stmt::Const { dst: 0, k: 3 },
            Stmt::Call {
                args: vec![(0, 2)],
                ret_dst: Some(1),
            },
            Stmt::Nop,
            Stmt::Nop,
            Stmt::Linear {
                dst: 3,
                src: 2,
                a: 2,
                b: 1,
            },
            Stmt::Nop,
        ],
        proc_vars: vec![vec![0, 1], vec![2, 3]],
        proc_params: vec![vec![], vec![2]],
        proc_ret: vec![1, 3],
        main: 0,
        num_vars: 4,
    });
    let problem = Arc::new(LinearConstant::new(model.clone()));
    let declarative = ide::flix::solve(&model.graph, problem.clone());
    let imperative = ide::imperative::solve(&model.graph, problem.as_ref());
    assert_eq!(declarative.values, imperative.values);
    // r = 2*3 + 1 = 7 at main's end node (fact id = var + 1).
    assert_eq!(declarative.value(3, 2), Constant::cst(7));
    // Inside f, the parameter holds 3 and ret holds 7.
    assert_eq!(declarative.value(6, 3), Constant::cst(3));
    assert_eq!(declarative.value(6, 4), Constant::cst(7));
}

/// Figure 7's composition, sanity-checked at the API level the rules use.
#[test]
fn figure_7_composition_algebra() {
    // comp(λl.2l+1, λl.3l) = λl.6l+3.
    let f = Transformer::linear(2, 1);
    let g = Transformer::linear(3, 0);
    let h = Transformer::comp(&f, &g);
    assert_eq!(h.apply(&Constant::cst(5)), Constant::cst(33));
    // Composing with the bottom transformer annihilates.
    assert_eq!(Transformer::comp(&f, &Transformer::Bot), Transformer::Bot);
    // comp(Bot, t) is the constant function λl.t(⊥); for
    // t = λl.(2l+1) ⊔ Cst(9) that is λl.(⊥ ⊔ 9) = λl.9.
    let t = Transformer::non_bot(2, 1, Flat::Val(9));
    let k = Transformer::comp(&Transformer::Bot, &t);
    for l in [Flat::Bot, Constant::cst(4), Flat::Top] {
        assert_eq!(k.apply(&l), Constant::cst(9));
    }
}

/// The declarative IDE rules genuinely mirror the IFDS rules: running
/// both declarative programs on the same model yields matching reachable
/// sets when the IDE problem is the identity embedding.
#[test]
fn declarative_ide_identity_matches_declarative_ifds() {
    let model = Arc::new(jvm_program::generate(GenParams {
        num_procs: 3,
        nodes_per_proc: 6,
        vars_per_proc: 3,
        call_percent: 20,
        seed: 0xF165,
    }));
    let ifds_result = ifds::flix::solve(
        &model.graph,
        Arc::new(problems::UninitVars::new(model.clone())),
    );
    let ide_result = ide::flix::solve(
        &model.graph,
        Arc::new(IdentityIde(problems::UninitVars::new(model.clone()))),
    );
    assert_eq!(ide_result.reachable(), ifds_result);
}
