//! Strategy parity: naïve, semi-naïve, and parallel semi-naïve
//! evaluation must agree — not only on the minimal model (§3.7 proves
//! the strategies compute the same fixed point) but also on the
//! *strategy-invariant* statistics documented on `SolveStats`: net
//! insertions, per-rule insertion credit, and per-stratum convergence
//! profiles. Gross work (`rule_evaluations`, `facts_derived`, probes,
//! scans, timings) legitimately differs and is not compared.
//!
//! The workloads are the paper's case studies: shortest paths (§4.4),
//! the Figure 2 combined dataflow analysis, and the Figure 5 IFDS
//! encoding on a generated JVM-shaped supergraph.

use flix::analyses::ifds::{self, problems::Taint};
use flix::analyses::workloads::graphs;
use flix::analyses::workloads::jvm_program::{self, GenParams};
use flix::analyses::{dataflow, shortest_paths};
use flix::{
    BodyItem, Head, HeadTerm, LatticeOps, Program, ProgramBuilder, Solution, Solver, Strategy,
    Term, Value,
};
use std::sync::Arc;

/// The three configurations under comparison.
fn configurations() -> Vec<(&'static str, Solver)> {
    vec![
        ("naive", Solver::new().strategy(Strategy::Naive)),
        ("semi-naive", Solver::new().strategy(Strategy::SemiNaive)),
        (
            "semi-naive x4",
            Solver::new().strategy(Strategy::SemiNaive).threads(4),
        ),
    ]
}

/// Canonical dump of every relation tuple and lattice cell, sorted, so
/// two solutions can be compared for semantic equality.
fn dump(program: &Program, solution: &Solution) -> Vec<String> {
    let mut lines = Vec::new();
    for (_, decl) in program.predicates() {
        let name = decl.name();
        if let Some(rows) = solution.relation(name) {
            for row in rows {
                lines.push(format!(
                    "{name}({})",
                    row.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        if let Some(cells) = solution.lattice(name) {
            for (key, value) in cells {
                let mut parts: Vec<String> = key.iter().map(ToString::to_string).collect();
                parts.push(value.to_string());
                lines.push(format!("{name}({})", parts.join(", ")));
            }
        }
    }
    lines.sort();
    lines
}

/// Solves `program` under every configuration and asserts that the
/// model and all strategy-invariant statistics coincide.
fn assert_strategy_parity(label: &str, program: &Program) {
    let runs: Vec<(&str, Solution)> = configurations()
        .into_iter()
        .map(|(name, solver)| (name, solver.solve(program).expect("solves")))
        .collect();
    let (base_name, base) = &runs[0];
    let base_dump = dump(program, base);
    let base_inserted: Vec<(usize, u64)> = base
        .stats()
        .per_rule
        .iter()
        .map(|r| (r.rule, r.inserted))
        .collect();
    assert!(
        base.stats().per_rule.iter().any(|r| r.inserted > 0),
        "{label}: the baseline run credits at least one rule"
    );
    for (name, solution) in &runs[1..] {
        assert_eq!(
            dump(program, solution),
            base_dump,
            "{label}: {name} and {base_name} disagree on the minimal model"
        );
        let stats = solution.stats();
        assert_eq!(
            stats.facts_inserted,
            base.stats().facts_inserted,
            "{label}: {name} net insertions"
        );
        assert_eq!(
            stats.total_facts,
            base.stats().total_facts,
            "{label}: {name} total facts"
        );
        let inserted: Vec<(usize, u64)> = stats
            .per_rule
            .iter()
            .map(|r| (r.rule, r.inserted))
            .collect();
        assert_eq!(
            inserted, base_inserted,
            "{label}: {name} and {base_name} credit rules differently"
        );
        // Convergence profile: same rounds per stratum and the same net
        // delta fed into each round.
        assert_eq!(
            stats.per_stratum,
            base.stats().per_stratum,
            "{label}: {name} and {base_name} converge differently"
        );
    }
}

#[test]
fn shortest_paths_single_source_parity() {
    let graph = graphs::generate(40, 120, 7);
    let program = shortest_paths::build_single_source(&graph, 0);
    assert_strategy_parity("single-source shortest paths", &program);
}

#[test]
fn shortest_paths_all_pairs_parity() {
    let graph = graphs::generate(12, 25, 3);
    let program = shortest_paths::build_all_pairs(&graph);
    assert_strategy_parity("all-pairs shortest paths", &program);
}

#[test]
fn figure_2_dataflow_parity() {
    let program = dataflow::build_program(&dataflow::example_input());
    assert_strategy_parity("Figure 2 dataflow", &program);
}

// ---------------------------------------------------------------------------
// Differential property suite: seeded random programs, every strategy ×
// kernel combination.
//
// The specialized join kernels promise *observational equivalence* with
// the generic evaluator: same minimal model, same statistics (including
// gross counters — `facts_derived`, probes, scans — within a strategy),
// same convergence profile. Structured-random programs exercise the
// corners the hand-written workloads miss: lattice heads at several key
// widths (including past the kernels' inline-key width, which forces the
// wide-key fallback), relational heads, filters, multiple seeds, and
// disconnected graphs.
// ---------------------------------------------------------------------------

use flix::lattice::rng::SmallRng;
use flix::lattice::MinCost;
use flix::ValueLattice;

/// One random weighted digraph plus derived-predicate program. The shape
/// is drawn from the seed: node/edge counts, weights, the lattice key
/// width, an optional weight filter, and an optional second seed fact.
fn random_program(seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes = rng.gen_range(4i64..11);
    let num_edges = rng.gen_range(nodes..3 * nodes);
    let key_width = *[1usize, 1, 2, 2, 5]
        .get(rng.gen_range(0usize..5))
        .expect("in range");
    let with_filter = rng.gen_bool(0.5);
    let two_sources = rng.gen_bool(0.4);

    let mut b = ProgramBuilder::new();
    let edge = b.relation("Edge", 3);
    let reach = b.relation("Reach", 1);
    let dist = b.lattice("Dist", key_width + 1, LatticeOps::of::<MinCost>());
    let extend = b.function("extend", |args| {
        let d = MinCost::expect_from(&args[0]);
        let c = args[1].as_int().expect("weight") as u64;
        d.add_weight(c).to_value()
    });
    let cheap = b.function("cheap", |args| {
        (args[0].as_int().expect("weight") <= 7).into()
    });

    for _ in 0..num_edges {
        let x = rng.gen_range(0i64..nodes);
        let y = rng.gen_range(0i64..nodes);
        let c = rng.gen_range(1i64..10);
        b.fact(edge, vec![x.into(), y.into(), c.into()]);
    }
    let mut sources = vec![rng.gen_range(0i64..nodes)];
    if two_sources {
        sources.push(rng.gen_range(0i64..nodes));
    }
    for &s in &sources {
        b.fact(reach, vec![s.into()]);
        let mut key: Vec<Value> = vec![Value::from(s); key_width];
        key.push(MinCost::finite(0).to_value());
        b.fact(dist, key);
    }

    // Reach(y) :- Reach(x), Edge(x, y, c) [, cheap(c)].
    let mut body = vec![
        BodyItem::atom(reach, [Term::var("x")]),
        BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
    ];
    if with_filter {
        body.push(BodyItem::filter(cheap, [Term::var("c")]));
    }
    b.rule(Head::new(reach, [HeadTerm::var("y")]), body);

    // Dist(y…, d + c) :- Dist(x…, d), Edge(x, y, c) — the key repeats
    // one node variable `key_width` times, so width 5 exercises the
    // kernels' wide-key fallback while staying a shortest-path fixpoint.
    let mut head_terms: Vec<HeadTerm> = (0..key_width).map(|_| HeadTerm::var("y")).collect();
    head_terms.push(HeadTerm::app(extend, [Term::var("d"), Term::var("c")]));
    let mut dist_atom: Vec<Term> = vec![Term::var("x")];
    dist_atom.extend((1..key_width).map(|i| Term::var(format!("k{i}"))));
    dist_atom.push(Term::var("d"));
    b.rule(
        Head::new(dist, head_terms),
        [
            BodyItem::atom(dist, dist_atom),
            BodyItem::atom(edge, [Term::var("x"), Term::var("y"), Term::var("c")]),
        ],
    );

    b.build().expect("the generated program is well-formed")
}

/// Solves one random program under every strategy × kernels combination
/// and asserts cell-for-cell model equality plus statistics parity:
/// strategy-invariant statistics across all runs, and *gross* counters
/// (`facts_derived`, probes, scans) between the kernel and generic paths
/// of the same strategy.
fn assert_differential_parity(seed: u64) {
    let program = random_program(seed);
    let configs: Vec<(&str, Solver)> = vec![
        (
            "naive/generic",
            Solver::new().strategy(Strategy::Naive).kernels(false),
        ),
        (
            "naive/kernels",
            Solver::new().strategy(Strategy::Naive).kernels(true),
        ),
        (
            "semi-naive/generic",
            Solver::new().strategy(Strategy::SemiNaive).kernels(false),
        ),
        (
            "semi-naive/kernels",
            Solver::new().strategy(Strategy::SemiNaive).kernels(true),
        ),
        (
            "semi-naive x4/kernels",
            Solver::new()
                .strategy(Strategy::SemiNaive)
                .threads(4)
                .kernels(true),
        ),
    ];
    let runs: Vec<(&str, Solution)> = configs
        .into_iter()
        .map(|(name, solver)| (name, solver.solve(&program).expect("solves")))
        .collect();
    let (base_name, base) = &runs[0];
    let base_dump = dump(&program, base);
    for (name, solution) in &runs[1..] {
        assert_eq!(
            dump(&program, solution),
            base_dump,
            "seed {seed}: {name} and {base_name} disagree on the minimal model"
        );
        let stats = solution.stats();
        assert_eq!(
            stats.facts_inserted,
            base.stats().facts_inserted,
            "seed {seed}: {name} net insertions"
        );
        assert_eq!(
            stats.total_facts,
            base.stats().total_facts,
            "seed {seed}: {name} total facts"
        );
        assert_eq!(
            stats.per_stratum,
            base.stats().per_stratum,
            "seed {seed}: {name} convergence profile"
        );
    }
    // Gross-counter parity within a strategy: the kernel interpreter must
    // derive, probe, and scan exactly like the generic evaluator.
    for pair in [(0usize, 1usize), (2, 3)] {
        let (gen_name, generic) = &runs[pair.0];
        let (ker_name, kernels) = &runs[pair.1];
        let (g, k) = (generic.stats(), kernels.stats());
        assert_eq!(
            g.facts_derived, k.facts_derived,
            "seed {seed}: {ker_name} vs {gen_name} facts_derived"
        );
        assert_eq!(
            g.index_probes, k.index_probes,
            "seed {seed}: {ker_name} vs {gen_name} index_probes"
        );
        assert_eq!(
            g.scan_fallbacks, k.scan_fallbacks,
            "seed {seed}: {ker_name} vs {gen_name} scan_fallbacks"
        );
        assert_eq!(
            g.rule_evaluations, k.rule_evaluations,
            "seed {seed}: {ker_name} vs {gen_name} rule_evaluations"
        );
    }
}

#[test]
fn differential_random_programs_agree() {
    for seed in 0..40 {
        assert_differential_parity(seed);
    }
}

#[test]
fn figure_5_ifds_parity() {
    let model = Arc::new(jvm_program::generate(GenParams {
        num_procs: 6,
        nodes_per_proc: 12,
        vars_per_proc: 6,
        call_percent: 15,
        seed: 11,
    }));
    let problem = Arc::new(Taint::new(model.clone()));
    let program = ifds::flix::build_program(&model.graph, problem);
    assert_strategy_parity("Figure 5 IFDS", &program);
}
