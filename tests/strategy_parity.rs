//! Strategy parity: naïve, semi-naïve, and parallel semi-naïve
//! evaluation must agree — not only on the minimal model (§3.7 proves
//! the strategies compute the same fixed point) but also on the
//! *strategy-invariant* statistics documented on `SolveStats`: net
//! insertions, per-rule insertion credit, and per-stratum convergence
//! profiles. Gross work (`rule_evaluations`, `facts_derived`, probes,
//! scans, timings) legitimately differs and is not compared.
//!
//! The workloads are the paper's case studies: shortest paths (§4.4),
//! the Figure 2 combined dataflow analysis, and the Figure 5 IFDS
//! encoding on a generated JVM-shaped supergraph.

use flix::analyses::ifds::{self, problems::Taint};
use flix::analyses::workloads::graphs;
use flix::analyses::workloads::jvm_program::{self, GenParams};
use flix::analyses::{dataflow, shortest_paths};
use flix::{Program, Solution, Solver, Strategy};
use std::sync::Arc;

/// The three configurations under comparison.
fn configurations() -> Vec<(&'static str, Solver)> {
    vec![
        ("naive", Solver::new().strategy(Strategy::Naive)),
        ("semi-naive", Solver::new().strategy(Strategy::SemiNaive)),
        (
            "semi-naive x4",
            Solver::new().strategy(Strategy::SemiNaive).threads(4),
        ),
    ]
}

/// Canonical dump of every relation tuple and lattice cell, sorted, so
/// two solutions can be compared for semantic equality.
fn dump(program: &Program, solution: &Solution) -> Vec<String> {
    let mut lines = Vec::new();
    for (_, decl) in program.predicates() {
        let name = decl.name();
        if let Some(rows) = solution.relation(name) {
            for row in rows {
                lines.push(format!(
                    "{name}({})",
                    row.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        if let Some(cells) = solution.lattice(name) {
            for (key, value) in cells {
                let mut parts: Vec<String> = key.iter().map(ToString::to_string).collect();
                parts.push(value.to_string());
                lines.push(format!("{name}({})", parts.join(", ")));
            }
        }
    }
    lines.sort();
    lines
}

/// Solves `program` under every configuration and asserts that the
/// model and all strategy-invariant statistics coincide.
fn assert_strategy_parity(label: &str, program: &Program) {
    let runs: Vec<(&str, Solution)> = configurations()
        .into_iter()
        .map(|(name, solver)| (name, solver.solve(program).expect("solves")))
        .collect();
    let (base_name, base) = &runs[0];
    let base_dump = dump(program, base);
    let base_inserted: Vec<(usize, u64)> = base
        .stats()
        .per_rule
        .iter()
        .map(|r| (r.rule, r.inserted))
        .collect();
    assert!(
        base.stats().per_rule.iter().any(|r| r.inserted > 0),
        "{label}: the baseline run credits at least one rule"
    );
    for (name, solution) in &runs[1..] {
        assert_eq!(
            dump(program, solution),
            base_dump,
            "{label}: {name} and {base_name} disagree on the minimal model"
        );
        let stats = solution.stats();
        assert_eq!(
            stats.facts_inserted,
            base.stats().facts_inserted,
            "{label}: {name} net insertions"
        );
        assert_eq!(
            stats.total_facts,
            base.stats().total_facts,
            "{label}: {name} total facts"
        );
        let inserted: Vec<(usize, u64)> = stats
            .per_rule
            .iter()
            .map(|r| (r.rule, r.inserted))
            .collect();
        assert_eq!(
            inserted, base_inserted,
            "{label}: {name} and {base_name} credit rules differently"
        );
        // Convergence profile: same rounds per stratum and the same net
        // delta fed into each round.
        assert_eq!(
            stats.per_stratum,
            base.stats().per_stratum,
            "{label}: {name} and {base_name} converge differently"
        );
    }
}

#[test]
fn shortest_paths_single_source_parity() {
    let graph = graphs::generate(40, 120, 7);
    let program = shortest_paths::build_single_source(&graph, 0);
    assert_strategy_parity("single-source shortest paths", &program);
}

#[test]
fn shortest_paths_all_pairs_parity() {
    let graph = graphs::generate(12, 25, 3);
    let program = shortest_paths::build_all_pairs(&graph);
    assert_strategy_parity("all-pairs shortest paths", &program);
}

#[test]
fn figure_2_dataflow_parity() {
    let program = dataflow::build_program(&dataflow::example_input());
    assert_strategy_parity("Figure 2 dataflow", &program);
}

#[test]
fn figure_5_ifds_parity() {
    let model = Arc::new(jvm_program::generate(GenParams {
        num_procs: 6,
        nodes_per_proc: 12,
        vars_per_proc: 6,
        call_percent: 15,
        seed: 11,
    }));
    let problem = Arc::new(Taint::new(model.clone()));
    let program = ifds::flix::build_program(&model.graph, problem);
    assert_strategy_parity("Figure 5 IFDS", &program);
}
