//! Integration tests of the Strong Update analysis (§4.1, Table 1)
//! through the facade: implementation agreement at benchmark scale and
//! the qualitative claims of the evaluation (precision and the powerset
//! embedding's database blow-up).

use flix::analyses::strong_update::{self, SuInput};
use flix::analyses::workloads::c_program;
use flix::Strategy;

/// All three implementations on a Table-1-row-shaped workload (scaled
/// down); exact agreement of all shared relations.
#[test]
fn three_way_agreement_at_row_scale() {
    let input = c_program::generate_row(&c_program::TABLE_1[0], 0.4, 7);
    let flix = strong_update::flix::analyze(&input);
    let imperative = strong_update::imperative::analyze(&input);
    let datalog = strong_update::datalog::analyze(&input);
    strong_update::assert_pt_agree(&flix, &imperative);
    strong_update::assert_pt_agree(&flix, &datalog);
    assert_eq!(flix.su_after, imperative.su_after);
    assert_eq!(flix.su_after, datalog.su_after);
}

/// The §1 "worst of both worlds" claim: same precision (checked above),
/// strictly more derived facts in the powerset embedding.
#[test]
fn powerset_embedding_blows_up_database() {
    let input = c_program::generate(600, 3);
    let flix = strong_update::flix::analyze(&input);
    let datalog = strong_update::datalog::analyze(&input);
    strong_update::assert_pt_agree(&flix, &datalog);
    assert!(
        datalog.derived_facts as f64 > flix.derived_facts as f64 * 1.2,
        "embedding stored {} facts, lattice version {}",
        datalog.derived_facts,
        flix.derived_facts
    );
}

/// Strong updates are *observable*: removing the Kill facts (weak updates
/// only) must not shrink the points-to sets, and on a program built to
/// need them it strictly grows them.
#[test]
fn strong_updates_improve_precision() {
    // l0: *p = a1-val; l1: *p = a2-val; l2: s = *p
    // pt(p) = {h}; with kill, the read at l2 sees only the second store.
    let mut input = SuInput {
        num_vars: 4, // p=0, v1=1, v2=2, s=3
        num_objs: 3, // h=0, a1=1, a2=2
        num_labels: 3,
        addr_of: vec![(0, 0), (1, 1), (2, 2)],
        copy: vec![],
        load: vec![(2, 3, 0)],
        store: vec![(0, 0, 1), (1, 0, 2)],
        cfg: vec![(0, 1), (1, 2)],
        kill: vec![],
    };
    input.compute_kill();
    assert_eq!(input.kill.len(), 2, "both stores strongly update h");

    let strong = strong_update::flix::analyze(&input);
    // s reads only the killed-and-rewritten value a2.
    assert!(strong.pt.contains(&(3, 2)));
    assert!(!strong.pt.contains(&(3, 1)), "a1 was strongly overwritten");

    let mut weak_input = input.clone();
    weak_input.kill.clear();
    let weak = strong_update::flix::analyze(&weak_input);
    assert!(weak.pt.contains(&(3, 1)), "weak updates keep both");
    assert!(weak.pt.contains(&(3, 2)));
    assert!(
        strong.pt.len() < weak.pt.len(),
        "strong updates must be strictly more precise here"
    );
}

/// Naïve and semi-naïve evaluation agree on the full Figure 4 rule set
/// (with stratified negation) at moderate scale.
#[test]
fn figure_4_naive_agrees_with_semi_naive() {
    let input = c_program::generate(400, 21);
    let semi = strong_update::flix::analyze(&input);
    let naive =
        strong_update::flix::analyze_with(&input, &flix::Solver::new().strategy(Strategy::Naive));
    assert_eq!(semi, naive);
}

/// The parallel solver computes the same Figure 4 model.
#[test]
fn figure_4_parallel_agrees_with_sequential() {
    let input = c_program::generate(400, 22);
    let seq = strong_update::flix::analyze(&input);
    let par = strong_update::flix::analyze_with(&input, &flix::Solver::new().threads(4));
    assert_eq!(seq, par);
}
