//! Demand parity: `Solver::solve_query` must agree with the full
//! minimal model on every demanded cell — cell-for-cell, under every
//! evaluation strategy — while never materializing an undemanded
//! intensional predicate.
//!
//! The suite sweeps seeded (query, program) pairs across the paper's
//! three case studies: §4.4 shortest paths on generated weighted graphs,
//! the Figure 2 combined points-to/parity dataflow analysis on generated
//! straight-line programs, and the Figure 5 IFDS encoding on generated
//! JVM-shaped supergraphs. Every pair is checked under naïve,
//! semi-naïve, and 4-thread semi-naïve evaluation; the final test
//! asserts the sweep covers at least 100 pairs.

use flix::analyses::dataflow::{self, DataflowInput};
use flix::analyses::ifds::{self, problems::Taint};
use flix::analyses::shortest_paths;
use flix::analyses::workloads::graphs;
use flix::analyses::workloads::jvm_program::{self, GenParams};
use flix::{Program, Query, Solution, Solver, Strategy, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One seeded (program, queries) case; each query is a separate
/// (query, program) pair in the sweep's accounting.
struct Case {
    label: String,
    program: Program,
    queries: Vec<Query>,
}

/// The three configurations every pair is checked under.
fn configurations() -> Vec<(&'static str, Solver)> {
    vec![
        ("naive", Solver::new().strategy(Strategy::Naive)),
        ("semi-naive", Solver::new().strategy(Strategy::SemiNaive)),
        (
            "semi-naive x4",
            Solver::new().strategy(Strategy::SemiNaive).threads(4),
        ),
    ]
}

/// Renders the full model's facts matching `query`, sorted.
fn reference_answers(full: &Solution, query: &Query) -> Vec<String> {
    let mut lines: Vec<String> = full
        .facts(query.predicate())
        .expect("query predicate is declared")
        .filter(|f| query.matches(f))
        .map(|f| f.to_string())
        .collect();
    lines.sort();
    lines
}

/// Checks one case under every configuration; returns the number of
/// (query, config) pairs verified.
fn check_case(case: &Case) -> usize {
    let full = Solver::new()
        .solve(&case.program)
        .expect("the full model exists");
    // The intensional predicates are exactly the rule heads.
    let idb: BTreeSet<&str> = full
        .stats()
        .per_rule
        .iter()
        .map(|r| r.head.as_str())
        .collect();
    let mut pairs = 0;
    for (config, solver) in configurations() {
        let result = solver
            .solve_query(&case.program, &case.queries)
            .expect("the query-directed solve succeeds");

        // 1. Answer parity: each query returns exactly the full model's
        //    matching facts.
        for (idx, query) in case.queries.iter().enumerate() {
            let mut answers: Vec<String> = result.answers(idx).map(|f| f.to_string()).collect();
            answers.sort();
            assert_eq!(
                answers,
                reference_answers(&full, query),
                "{} [{config}]: answers to `{query}` diverge from the full model",
                case.label
            );
            pairs += 1;
        }

        // 2. Cell-for-cell soundness: everything the demanded model
        //    materialized is *exactly* the full model's value — relation
        //    rows are full-model rows, lattice cells carry the final
        //    (not an intermediate) element.
        for (_, decl) in case.program.predicates() {
            let name = decl.name();
            if let Some(rows) = result.solution().relation(name) {
                for row in rows {
                    assert!(
                        full.contains(name, row),
                        "{} [{config}]: spurious {name}({row:?})",
                        case.label
                    );
                }
            }
            if let Some(cells) = result.solution().lattice(name) {
                for (key, value) in cells {
                    assert_eq!(
                        full.lattice_value(name, key).as_ref(),
                        Some(value),
                        "{} [{config}]: cell {name}({key:?}) is not the fixed point",
                        case.label
                    );
                }
            }
        }

        // 3. Demand restriction: an intensional predicate the rewrite
        //    classified as neither demanded nor fallback-full stayed
        //    empty, and SolveStats confirm its rules never ran.
        if !result.used_fallback() {
            let touched: BTreeSet<&str> = result
                .demanded_predicates()
                .chain(result.full_predicates())
                .collect();
            for pred in &idb {
                if touched.contains(pred) {
                    continue;
                }
                assert_eq!(
                    result.solution().len(pred),
                    Some(0),
                    "{} [{config}]: undemanded {pred} materialized",
                    case.label
                );
                for rs in &result.stats().per_rule {
                    if rs.head == *pred {
                        assert_eq!(
                            rs.evaluations, 0,
                            "{} [{config}]: undemanded rule {} (head {pred}) ran",
                            case.label, rs.rule
                        );
                    }
                }
            }
        }
    }
    pairs
}

// ---------------------------------------------------------------------
// §4.4 shortest paths.
// ---------------------------------------------------------------------

/// Six seeded weighted graphs; per graph: three single-target queries,
/// one single-source query, and one source with a bound (likely
/// non-final) value column — 30 (query, program) pairs.
fn shortest_paths_cases() -> Vec<Case> {
    let shapes = [
        (10u32, 15usize, 0xA1u64),
        (14, 30, 0xA2),
        (18, 40, 0xA3),
        (22, 55, 0xA4),
        (26, 70, 0xA5),
        (30, 90, 0xA6),
    ];
    shapes
        .iter()
        .map(|&(nodes, extra, seed)| {
            let graph = graphs::generate(nodes, extra, seed);
            let program = shortest_paths::build_all_pairs(&graph);
            let n = nodes as i64;
            let dist = |s: i64, t: Option<i64>| {
                Query::new("Dist", vec![Some(Value::from(s)), t.map(Value::from), None])
            };
            Case {
                label: format!("shortest-paths n={nodes} seed={seed:#x}"),
                program,
                queries: vec![
                    dist(0, Some(n - 1)),
                    dist(1, Some(n / 2)),
                    dist(n - 1, Some(0)),
                    dist(n / 2, None),
                    Query::new("Dist", vec![Some(Value::from(0i64)), None, None]),
                ],
            }
        })
        .collect()
}

#[test]
fn shortest_paths_demand_parity() {
    let pairs: usize = shortest_paths_cases().iter().map(check_case).sum();
    assert!(pairs >= 90, "only {pairs} pairs checked");
}

// ---------------------------------------------------------------------
// Figure 2 dataflow.
// ---------------------------------------------------------------------

/// Deterministic xorshift, for seeding inputs without a rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A seeded Figure 2 input: straight-line code over `nv` integer
/// variables and two heap objects, with stores, loads, additions, and
/// divisions wired at random.
fn generate_dataflow_input(seed: u64, nv: usize) -> DataflowInput {
    let mut rng = Rng(seed | 1);
    let var = |i: usize| format!("v{i}");
    let mut input = DataflowInput::default();
    input.points_to.new = vec![("p0".into(), "H0".into()), ("p1".into(), "H1".into())];
    for i in 0..nv {
        input.int_const.push((var(i), rng.below(20) as i64));
    }
    // A few copies join parities through VarPointsTo-independent rules.
    for _ in 0..nv / 2 {
        let (a, b) = (rng.below(nv), rng.below(nv));
        input.points_to.assign.push((var(a), var(b)));
    }
    // Store each of a few variables into a field, load them back into
    // fresh variables, so IntField cells appear.
    for i in 0..2 {
        let src = var(rng.below(nv));
        let ptr = format!("p{i}");
        input.points_to.store.push((ptr.clone(), "f".into(), src));
        input
            .points_to
            .load
            .push((format!("l{i}"), ptr, "f".into()));
    }
    for i in 0..nv {
        let (a, b) = (rng.below(nv), rng.below(nv));
        input.add_exp.push((format!("s{i}"), var(a), var(b)));
    }
    for i in 0..3 {
        let num = var(rng.below(nv));
        let den = format!("s{}", rng.below(nv));
        input.div_exp.push((format!("q{i}"), num, den));
    }
    input
}

/// Eight seeded inputs; per input: two parity point queries, one heap
/// cell query, one error query with a bound result variable, and one
/// all-free error query (exercising the full-evaluation fallback) —
/// 40 (query, program) pairs.
fn dataflow_cases() -> Vec<Case> {
    (0..8u64)
        .map(|i| {
            let seed = 0xB000 + i;
            let nv = 4 + (i as usize % 3) * 2;
            let input = generate_dataflow_input(seed, nv);
            let program = dataflow::build_program(&input);
            Case {
                label: format!("figure-2 dataflow seed={seed:#x}"),
                program,
                queries: vec![
                    Query::new("IntVar", vec![Some(Value::from("v0")), None]),
                    Query::new("IntVar", vec![Some(Value::from("s0")), None]),
                    Query::new(
                        "IntField",
                        vec![Some(Value::from("H0")), Some(Value::from("f")), None],
                    ),
                    Query::new("ArithmeticError", vec![Some(Value::from("q0"))]),
                    Query::new("ArithmeticError", vec![None]),
                ],
            }
        })
        .collect()
}

#[test]
fn figure_2_dataflow_demand_parity() {
    let pairs: usize = dataflow_cases().iter().map(check_case).sum();
    assert!(pairs >= 120, "only {pairs} pairs checked");
}

/// The paper's own worked example, point-queried.
#[test]
fn figure_2_worked_example_demand_parity() {
    let case = Case {
        label: "figure-2 worked example".into(),
        program: dataflow::build_program(&dataflow::example_input()),
        queries: vec![
            Query::new("IntVar", vec![Some(Value::from("c")), None]),
            Query::new("ArithmeticError", vec![Some(Value::from("d"))]),
            Query::new("ArithmeticError", vec![Some(Value::from("e"))]),
        ],
    };
    check_case(&case);
}

// ---------------------------------------------------------------------
// Figure 5 IFDS.
// ---------------------------------------------------------------------

/// Four seeded JVM-shaped supergraphs with a taint problem; per model:
/// three `Result(node, _)` point queries and one three-column
/// `PathEdge(_, node, _)`-style query via a bound middle node on
/// Result — 16 (query, program) pairs.
fn ifds_cases() -> Vec<Case> {
    [13u64, 14, 15, 16]
        .iter()
        .map(|&seed| {
            let model = Arc::new(jvm_program::generate(GenParams {
                num_procs: 4,
                nodes_per_proc: 8,
                vars_per_proc: 4,
                call_percent: 20,
                seed,
            }));
            let problem = Arc::new(Taint::new(model.clone()));
            let program = ifds::flix::build_program(&model.graph, problem);
            let total_nodes = model.graph.cfg.len().max(4) as i64;
            let node = |k: i64| Query::new("Result", vec![Some(Value::from(k)), None]);
            Case {
                label: format!("figure-5 ifds seed={seed}"),
                program,
                queries: vec![
                    node(0),
                    node(total_nodes / 3),
                    node(2 * total_nodes / 3),
                    Query::new("SummaryEdge", vec![None, None, None]),
                ],
            }
        })
        .collect()
}

#[test]
fn figure_5_ifds_demand_parity() {
    let pairs: usize = ifds_cases().iter().map(check_case).sum();
    assert!(pairs >= 48, "only {pairs} pairs checked");
}

// ---------------------------------------------------------------------
// Coverage accounting.
// ---------------------------------------------------------------------

/// The sweep's (query, program) pair count, per configuration and in
/// total, without re-running the solves: ≥100 pairs are exercised by the
/// tests above even before multiplying by the three configurations.
#[test]
fn sweep_covers_at_least_100_pairs() {
    let per_config: usize = shortest_paths_cases()
        .iter()
        .chain(dataflow_cases().iter())
        .chain(ifds_cases().iter())
        .map(|c| c.queries.len())
        .sum();
    let configs = configurations().len();
    assert!(
        per_config * configs >= 100,
        "{per_config} pairs x {configs} configs"
    );
    // And each pair is checked under all three strategies.
    assert_eq!(configs, 3);
}

// ---------------------------------------------------------------------
// The analysis-level query helpers agree with their full counterparts.
// ---------------------------------------------------------------------

#[test]
fn query_distance_agrees_with_dijkstra() {
    let graph = graphs::generate(25, 60, 0xC1);
    let reference = graphs::dijkstra(&graph, 3);
    for target in [0u32, 7, 24] {
        assert_eq!(
            shortest_paths::query_distance(&graph, 3, target),
            reference[target as usize],
            "distance 3 -> {target}"
        );
    }
    assert_eq!(shortest_paths::query_single_source(&graph, 3), reference);
}

#[test]
fn query_node_agrees_with_full_ifds_solve() {
    let model = Arc::new(jvm_program::generate(GenParams {
        num_procs: 4,
        nodes_per_proc: 8,
        vars_per_proc: 4,
        call_percent: 20,
        seed: 21,
    }));
    let problem = Arc::new(Taint::new(model.clone()));
    let full = ifds::flix::solve(&model.graph, problem.clone());
    for node in [0u32, 5, 11] {
        let expected: BTreeSet<_> = full
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, d)| *d)
            .collect();
        assert_eq!(
            ifds::flix::query_node(&model.graph, problem.clone(), node),
            expected,
            "facts at node {node}"
        );
    }
}
